//! Concurrent, intelligent logging (§3): many writer processes append to
//! one log file, and the sentinel — not the writers — owns the locking
//! protocol. "The processes generating the logs do not need to know about
//! log file locking."
//!
//! Run with: `cargo run --example team_log`

use std::sync::Arc;

use activefiles::prelude::*;

const WRITERS: usize = 6;
const RECORDS_PER_WRITER: usize = 40;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = Arc::new(AfsWorld::new());
    register_standard_sentinels(&world);

    world.install_active_file(
        "/var/team.log.af",
        &SentinelSpec::new("shared-log", Strategy::DllThread).backing(Backing::Disk),
    )?;

    // Six "processes" hammer the log concurrently. Each open gets its own
    // sentinel; the sentinels serialise appends through a named mutex.
    let mut handles = Vec::new();
    for id in 0..WRITERS {
        let world = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let api = world.api();
            let h = api
                .create_file(
                    "/var/team.log.af",
                    Access::write_only(),
                    Disposition::OpenExisting,
                )
                .expect("open log");
            for seq in 0..RECORDS_PER_WRITER {
                let record = format!("[worker-{id} event-{seq:03}]\n");
                api.write_file(h, record.as_bytes()).expect("append");
            }
            api.close_handle(h).expect("close");
        }));
    }
    for t in handles {
        t.join().expect("writer thread");
    }

    // Read the log back through the same active file.
    let api = world.api();
    let h = api.create_file(
        "/var/team.log.af",
        Access::read_only(),
        Disposition::OpenExisting,
    )?;
    let mut log = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        log.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;

    let text = String::from_utf8(log)?;
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), WRITERS * RECORDS_PER_WRITER);
    for line in &lines {
        assert!(
            line.starts_with("[worker-") && line.ends_with(']'),
            "torn record: {line:?}"
        );
    }
    println!(
        "{} writers x {} records = {} intact log lines, zero torn records",
        WRITERS,
        RECORDS_PER_WRITER,
        lines.len()
    );
    println!("first: {}", lines.first().expect("nonempty"));
    println!("last : {}", lines.last().expect("nonempty"));
    Ok(())
}
