//! The stock-quote file of §3: "an active file that reflects the latest
//! stock quotes (downloaded by the sentinel from a server) every time the
//! file is opened".
//!
//! Run with: `cargo run --example stock_ticker`

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{QuoteServer, Service};

fn read_whole(api: &dyn FileApi, path: &str) -> Result<String, Win32Error> {
    let h = api.create_file(path, Access::read_only(), Disposition::OpenExisting)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 64];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;
    Ok(String::from_utf8_lossy(&out).into_owned())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);

    let market = QuoteServer::new(2026, &["ACME", "GLOBEX", "INITECH"]);
    world
        .net()
        .register("nyse", Arc::clone(&market) as Arc<dyn Service>);

    world.install_active_file(
        "/ticker.af",
        &SentinelSpec::new("stock-ticker", Strategy::DllThread)
            .backing(Backing::Memory)
            .with("service", "nyse")
            .with("symbols", "ACME, GLOBEX, INITECH"),
    )?;

    let api = world.api();
    for session in 1..=3 {
        println!("--- trading session {session} ---");
        print!("{}", read_whole(&api, "/ticker.af")?);
        // The market moves between opens.
        for _ in 0..5 {
            market.advance();
        }
    }
    println!("(each open downloaded fresh quotes — no stale intermediary file)");
    Ok(())
}
