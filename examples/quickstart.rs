//! Quickstart: create an active file and watch a "legacy" application use
//! it like any other file.
//!
//! Run with: `cargo run --example quickstart`

use activefiles::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A world = local VFS + network + sentinel registry + intercepted API.
    let world = AfsWorld::new();
    register_standard_sentinels(&world);

    // Install an active file: to any application it is "/notes.af", but a
    // ROT13 sentinel sits between the application and the stored bytes.
    world.install_active_file(
        "/notes.af",
        &SentinelSpec::new("rot13", Strategy::DllThread).backing(Backing::Disk),
    )?;

    // The "legacy application": it only knows the ordinary file API.
    let api = world.api();
    let h = api.create_file("/notes.af", Access::read_write(), Disposition::OpenExisting)?;
    api.write_file(h, b"Meet me at the old mill.")?;
    api.set_file_pointer(h, 0, SeekMethod::Begin)?;
    let mut buf = [0u8; 24];
    let n = api.read_file(h, &mut buf)?;
    println!("application reads : {}", String::from_utf8_lossy(&buf[..n]));
    api.close_handle(h)?;

    // What actually hit the disk is obfuscated.
    let stored = world.vfs().read_stream_to_end(&"/notes.af".parse()?)?;
    println!("stored on disk    : {}", String::from_utf8_lossy(&stored));

    // The application could not tell the difference — and it cannot
    // uninstall the interception either (it was installed securely).
    assert!(world.connector().uninstall("active-files").is_err());
    println!("interception is secure: the application cannot undo it");
    Ok(())
}
