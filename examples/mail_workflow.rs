//! The e-mail scenario of §3, end to end.
//!
//! Writing a message into `outbox.af` sends it (the sentinel parses the
//! `To:` header and relays via SMTP); reading `inbox.af` retrieves
//! waiting messages from two POP servers. The "mail client" below is a
//! legacy program that only reads and writes files.
//!
//! Run with: `cargo run --example mail_workflow`

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{MailStore, PopServer, Service, SmtpServer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = AfsWorld::builder().user("alice@wonder.land").build();
    register_standard_sentinels(&world);

    // Two independent mail providers plus one relay.
    let provider_a = MailStore::new();
    let provider_b = MailStore::new();
    world.net().register(
        "pop-a",
        PopServer::new(provider_a.clone()) as Arc<dyn Service>,
    );
    world.net().register(
        "pop-b",
        PopServer::new(provider_b.clone()) as Arc<dyn Service>,
    );
    // The relay delivers into provider A (where bob's mailbox lives).
    world.net().register(
        "smtp",
        SmtpServer::new(provider_a.clone()) as Arc<dyn Service>,
    );

    // Seed some incoming mail on both providers.
    provider_a.deliver("bob@a", "alice@wonder.land", "lunch?", "noon at the cafe");
    provider_b.deliver(
        "carol@b",
        "alice@wonder.land",
        "review",
        "please look at PR 7",
    );

    world.install_active_file(
        "/mail/outbox.af",
        &SentinelSpec::new("outbox", Strategy::ProcessControl).with("service", "smtp"),
    )?;
    world.install_active_file(
        "/mail/inbox.af",
        &SentinelSpec::new("inbox", Strategy::ProcessControl)
            .backing(Backing::Memory)
            .with("servers", "pop-a, pop-b")
            .with("user", "alice@wonder.land"),
    )?;

    let api = world.api();

    // Send: write a plain text message to the outbox and close it.
    let h = api.create_file(
        "/mail/outbox.af",
        Access::write_only(),
        Disposition::OpenExisting,
    )?;
    api.write_file(
        h,
        b"To: bob@a\nSubject: re: lunch?\n\nnoon works. see you there.",
    )?;
    api.close_handle(h)?; // closing flushes: the message is on its way
    println!("sent 1 message via /mail/outbox.af");

    // Receive: read the inbox like a file.
    let h = api.create_file(
        "/mail/inbox.af",
        Access::read_only(),
        Disposition::OpenExisting,
    )?;
    let mut inbox = Vec::new();
    let mut buf = [0u8; 128];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        inbox.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;
    let text = String::from_utf8_lossy(&inbox);
    println!("--- /mail/inbox.af ---\n{text}");
    assert!(text.contains("Subject: lunch?"));
    assert!(
        text.contains("Subject: review"),
        "aggregated from the second POP server"
    );

    // Bob's POP mailbox received alice's reply.
    assert_eq!(provider_a.count("bob@a"), 1);
    println!("bob has {} message(s) waiting", provider_a.count("bob@a"));
    Ok(())
}
