//! A legacy word-count utility running over distributed sources.
//!
//! The paper's motivating scenario: "most of the end applications that
//! view and manipulate data from these sources … assume a traditional
//! file-based interface" (§1). `wc` here is written purely against the
//! file API — it has no idea the "file" it counts is three documents
//! merged from a remote file server on every open.
//!
//! Run with: `cargo run --example legacy_wordcount`

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{FileServer, Handle, Service};

/// The legacy application: counts lines, words, and bytes of a file it is
/// given by name. Nothing in here mentions active files.
fn wc(api: &dyn FileApi, path: &str) -> Result<(usize, usize, usize), Win32Error> {
    let h: Handle = api.create_file(path, Access::read_only(), Disposition::OpenExisting)?;
    let mut bytes = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        bytes.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;
    let text = String::from_utf8_lossy(&bytes);
    let lines = text.lines().count();
    let words = text.split_whitespace().count();
    Ok((lines, words, bytes.len()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);

    // A remote file server hosts three report fragments.
    let server = FileServer::new();
    server.seed(
        "/reports/q1.txt",
        b"Q1 revenue rose beyond every forecast.\n",
    );
    server.seed("/reports/q2.txt", b"Q2 was flat but costs fell sharply.\n");
    server.seed("/reports/q3.txt", b"Q3 brought two new regions online.\n");
    world
        .net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);

    // One active file aggregates all three fragments.
    world.install_active_file(
        "/annual.af",
        &SentinelSpec::new("merge", Strategy::ProcessControl)
            .backing(Backing::Memory)
            .with("service", "files")
            .with(
                "remotes",
                "/reports/q1.txt, /reports/q2.txt, /reports/q3.txt",
            ),
    )?;

    let api = world.api();
    let (lines, words, bytes) = wc(&api, "/annual.af")?;
    println!("annual report: {lines} lines, {words} words, {bytes} bytes");
    assert_eq!(lines, 3);

    // The remote source changes; the same legacy binary, re-run, sees it
    // immediately — no re-aggregation step, no stale intermediary file.
    server.seed("/reports/q4.txt", b"Q4 set an all-time record.\n");
    world.install_active_file(
        "/annual.af",
        &SentinelSpec::new("merge", Strategy::ProcessControl)
            .backing(Backing::Memory)
            .with("service", "files")
            .with(
                "remotes",
                "/reports/q1.txt, /reports/q2.txt, /reports/q3.txt, /reports/q4.txt",
            ),
    )?;
    let (lines, words, bytes) = wc(&api, "/annual.af")?;
    println!("after Q4 lands: {lines} lines, {words} words, {bytes} bytes");
    assert_eq!(lines, 4);
    Ok(())
}
