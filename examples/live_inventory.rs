//! The paper's §1 motivating example: a search application over
//! distributed databases that, behind a static intermediary, "cannot see
//! changes in these databases" — versus an active file that keeps the
//! view live while the application holds it open.
//!
//! Run with: `cargo run --example live_inventory`

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{DbServer, Service};

/// The legacy "search" application: greps an open file for a keyword —
/// repeatedly, as a monitoring loop would.
fn grep(
    api: &dyn FileApi,
    h: activefiles::Handle,
    needle: &str,
) -> Result<Vec<String>, Win32Error> {
    api.set_file_pointer(h, 0, SeekMethod::Begin)?;
    let mut text = Vec::new();
    let mut buf = [0u8; 128];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        text.extend_from_slice(&buf[..n]);
    }
    Ok(String::from_utf8_lossy(&text)
        .lines()
        .filter(|l| l.contains(needle))
        .map(str::to_owned)
        .collect())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);

    // Two "distributed databases" (two services, one logical inventory).
    let warehouse = DbServer::new();
    warehouse.put("wh:screws", b"9000");
    warehouse.put("wh:nails", b"120");
    world
        .net()
        .register("warehouse-db", Arc::clone(&warehouse) as Arc<dyn Service>);

    // The live view: tracks the database through the open handle.
    world.install_active_file(
        "/inventory.af",
        &SentinelSpec::new("live-query", Strategy::DllThread)
            .with("service", "warehouse-db")
            .with("prefix", "wh:"),
    )?;
    // The decoupled intermediary of §1, for contrast: same query, no
    // tracking.
    world.install_active_file(
        "/inventory-stale.af",
        &SentinelSpec::new("live-query", Strategy::DllThread)
            .with("service", "warehouse-db")
            .with("prefix", "wh:")
            .with("track", "false"),
    )?;

    let api = world.api();
    let live = api.create_file(
        "/inventory.af",
        Access::read_only(),
        Disposition::OpenExisting,
    )?;
    let stale = api.create_file(
        "/inventory-stale.af",
        Access::read_only(),
        Disposition::OpenExisting,
    )?;

    println!("initial scan (both agree):");
    println!("  live : {:?}", grep(&api, live, "screws")?);
    println!("  stale: {:?}", grep(&api, stale, "screws")?);

    // A shipment arrives while the monitors are running.
    warehouse.put("wh:screws", b"15000");
    warehouse.put("wh:bolts", b"800");

    println!("after the database changes:");
    let live_hits = grep(&api, live, "screws")?;
    let stale_hits = grep(&api, stale, "screws")?;
    println!("  live : {live_hits:?}");
    println!("  stale: {stale_hits:?}");
    assert_eq!(live_hits, vec!["wh:screws=15000".to_owned()]);
    assert_eq!(stale_hits, vec!["wh:screws=9000".to_owned()]);
    println!("the active file saw the update; the static intermediary did not (§1)");

    api.close_handle(live)?;
    api.close_handle(stale)?;
    Ok(())
}
