//! A tiny scriptable shell over the simulated world — the repository's
//! "legacy application" playground.
//!
//! Every command goes through the plain [`FileApi`]; the shell neither
//! knows nor cares which files are active. `install` and `demo` are the
//! only world-aware commands (they play the role of the administrator who
//! sets active files up).
//!
//! Used by the `afsh` binary (`cargo run --bin afsh`) and by integration
//! tests, which feed scripts through [`Shell::run_script`].

use std::fmt::Write as _;
use std::sync::Arc;

use afs_core::{
    AfsWorld, Backing, SentinelSpec, Strategy, CTL_STORE_CHECKPOINT, CTL_STORE_STATS,
    CTL_STORE_SYNC,
};
use afs_interpose::{CallCounters, CountingLayer};
use afs_net::Service;
use afs_remote::{FileServer, MailStore, PopServer, QuoteServer, SmtpServer};
use afs_telemetry::{json_snapshot, prometheus_text, Metric, SpanRecord};
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

/// Shell errors carry the failing command and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShellError {
    /// The command that failed.
    pub command: String,
    /// Why.
    pub message: String,
}

impl std::fmt::Display for ShellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.command, self.message)
    }
}

impl std::error::Error for ShellError {}

/// The shell session: a world plus its API handle.
pub struct Shell {
    world: AfsWorld,
    api: afs_interpose::ApiHandle,
    demo_files: Option<Arc<FileServer>>,
    counters: Arc<CallCounters>,
}

impl Shell {
    /// Creates a shell over a fresh world with the standard sentinels
    /// registered, telemetry enabled, and a call-counting layer installed
    /// (the shell is an interactive observability surface, so it pays for
    /// the instrumentation up front).
    pub fn new() -> Self {
        let world = AfsWorld::new();
        afs_sentinels::register_all(world.sentinels());
        world.telemetry().set_enabled(true);
        let counters = CallCounters::new();
        world
            .connector()
            .install(Arc::new(CountingLayer::new(Arc::clone(&counters))))
            .expect("fresh connector accepts the counting layer");
        let c = Arc::clone(&counters);
        world.metrics().register(move |out| {
            let snap = c.snapshot();
            let call = |name, v| Metric::counter("afs_calls_total", v).label("call", name);
            out.push(call("create_file", snap.create_file));
            out.push(call("read_file", snap.read_file));
            out.push(call("write_file", snap.write_file));
            out.push(call("close_handle", snap.close_handle));
            out.push(call("get_file_size", snap.get_file_size));
            out.push(call("set_file_pointer", snap.set_file_pointer));
            out.push(call("flush_file_buffers", snap.flush_file_buffers));
            out.push(call("device_io_control", snap.device_io_control));
            out.push(call("read_file_scatter", snap.read_file_scatter));
            out.push(call("write_file_gather", snap.write_file_gather));
            out.push(call("other", snap.other));
        });
        let api = world.api();
        Shell {
            world,
            api,
            demo_files: None,
            counters,
        }
    }

    /// The underlying world (tests use this to inspect state).
    pub fn world(&self) -> &AfsWorld {
        &self.world
    }

    /// Runs one command line, returning its output text.
    ///
    /// # Errors
    ///
    /// [`ShellError`] describing the failing command.
    pub fn run(&mut self, line: &str) -> Result<String, ShellError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let cmd = parts.next().expect("non-empty line");
        let rest = parts.next().unwrap_or("").trim();
        let fail = |message: String| ShellError {
            command: cmd.to_owned(),
            message,
        };
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "mkdir" => {
                self.api
                    .create_directory(rest)
                    .map_err(|e| fail(e.to_string()))?;
                Ok(String::new())
            }
            "ls" => {
                let dir = if rest.is_empty() { "/" } else { rest };
                let entries = self.api.find_files(dir).map_err(|e| fail(e.to_string()))?;
                let mut out = String::new();
                for e in entries {
                    let kind = match e.kind {
                        afs_vfs::NodeKind::Directory => "dir ",
                        afs_vfs::NodeKind::File => "file",
                    };
                    writeln!(out, "{kind} {:>8}  {}", e.len, e.name).expect("write to string");
                }
                Ok(out)
            }
            "cat" => {
                let h = self
                    .api
                    .create_file(rest, Access::read_only(), Disposition::OpenExisting)
                    .map_err(|e| fail(e.to_string()))?;
                let mut out = Vec::new();
                let mut buf = [0u8; 256];
                loop {
                    let n = self
                        .api
                        .read_file(h, &mut buf)
                        .map_err(|e| fail(e.to_string()))?;
                    if n == 0 {
                        break;
                    }
                    out.extend_from_slice(&buf[..n]);
                    if out.len() > 1 << 20 {
                        break; // generators can be infinite
                    }
                }
                self.api.close_handle(h).map_err(|e| fail(e.to_string()))?;
                Ok(String::from_utf8_lossy(&out).into_owned())
            }
            "write" | "append" => {
                let (path, text) = rest
                    .split_once(' ')
                    .ok_or_else(|| fail("usage: write <path> <text>".into()))?;
                let disposition = if cmd == "write" {
                    Disposition::CreateAlways
                } else {
                    Disposition::OpenAlways
                };
                let h = self
                    .api
                    .create_file(path, Access::read_write(), disposition)
                    .map_err(|e| fail(e.to_string()))?;
                if cmd == "append" {
                    self.api
                        .set_file_pointer(h, 0, SeekMethod::End)
                        .map_err(|e| fail(e.to_string()))?;
                }
                // Shell convention: "\n" in the text is a newline.
                let text = text.replace("\\n", "\n");
                self.api
                    .write_file(h, text.as_bytes())
                    .map_err(|e| fail(e.to_string()))?;
                self.api.close_handle(h).map_err(|e| fail(e.to_string()))?;
                Ok(String::new())
            }
            "cp" | "mv" => {
                let (from, to) = rest
                    .split_once(' ')
                    .ok_or_else(|| fail(format!("usage: {cmd} <from> <to>")))?;
                let result = if cmd == "cp" {
                    self.api.copy_file(from.trim(), to.trim())
                } else {
                    self.api.move_file(from.trim(), to.trim())
                };
                result.map_err(|e| fail(e.to_string()))?;
                Ok(String::new())
            }
            "rm" => {
                self.api
                    .delete_file(rest)
                    .map_err(|e| fail(e.to_string()))?;
                Ok(String::new())
            }
            "stat" => {
                let h = self
                    .api
                    .create_file(rest, Access::read_only(), Disposition::OpenExisting)
                    .map_err(|e| fail(e.to_string()))?;
                let size = self.api.get_file_size(h);
                self.api.close_handle(h).map_err(|e| fail(e.to_string()))?;
                let mut out = String::new();
                match size {
                    Ok(n) => writeln!(out, "size: {n}").expect("write to string"),
                    Err(e) => writeln!(out, "size: unavailable ({e})").expect("write to string"),
                }
                match self.world.active_spec(rest) {
                    Some(spec) => writeln!(
                        out,
                        "active: {} ({}, {})",
                        spec.name(),
                        spec.strategy().label(),
                        spec.backing_kind().label()
                    )
                    .expect("write to string"),
                    None => writeln!(out, "active: no").expect("write to string"),
                }
                Ok(out)
            }
            "install" => {
                // install <path> <sentinel> <strategy> <backing> [k=v ...]
                let mut args = rest.split_whitespace();
                let path = args.next().ok_or_else(|| fail("missing path".into()))?;
                let name = args
                    .next()
                    .ok_or_else(|| fail("missing sentinel name".into()))?;
                let strategy = match args.next().unwrap_or("dll") {
                    "process" => Strategy::Process,
                    "control" => Strategy::ProcessControl,
                    "thread" => Strategy::DllThread,
                    "dll" => Strategy::DllOnly,
                    other => return Err(fail(format!("unknown strategy {other}"))),
                };
                let backing = match args.next().unwrap_or("none") {
                    "none" => Backing::None,
                    "memory" => Backing::Memory,
                    "disk" => Backing::Disk,
                    other => return Err(fail(format!("unknown backing {other}"))),
                };
                let mut spec = SentinelSpec::new(name, strategy).backing(backing);
                for kv in args {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| fail(format!("bad config `{kv}` (want k=v)")))?;
                    spec = spec.with(k, v);
                }
                self.world
                    .install_active_file(path, &spec)
                    .map_err(|e| fail(e.to_string()))?;
                Ok(String::new())
            }
            "stats" => {
                // Rendered from the trace's exact cumulative aggregates,
                // not the bounded ring of recent records — the table stays
                // correct after the ring wraps on long sessions.
                let summary = self.world.trace().summary();
                if summary.is_empty() {
                    return Ok("no active-file operations recorded yet\n".to_owned());
                }
                let mut out = String::new();
                writeln!(
                    out,
                    "{:<14} {:<8} {:>6} {:>10} {:>9} {:>10} {:>8}",
                    "strategy", "op", "count", "bytes/op", "us/op", "cross/op", "copies/op"
                )
                .expect("write to string");
                let (mut ops, mut bytes, mut elapsed) = (0u64, 0u64, 0u64);
                for row in summary {
                    ops += row.count;
                    bytes += row.bytes;
                    elapsed += row.elapsed_ns;
                    writeln!(
                        out,
                        "{:<14} {:<8} {:>6} {:>10.1} {:>9.2} {:>10.2} {:>8.2}",
                        row.strategy,
                        row.op.label(),
                        row.count,
                        row.bytes_per_op(),
                        row.micros_per_op(),
                        row.crossings_per_op(),
                        row.copies_per_op(),
                    )
                    .expect("write to string");
                }
                writeln!(
                    out,
                    "total: {ops} ops, {bytes} bytes, {:.2} virtual ms",
                    elapsed as f64 / 1_000_000.0
                )
                .expect("write to string");
                Ok(out)
            }
            "top" => Ok(self.render_top()),
            "spans" => match rest.split_whitespace().collect::<Vec<_>>().as_slice() {
                [] => Ok(self.render_spans()),
                ["--trace", id] => {
                    let id: u64 = id
                        .parse()
                        .map_err(|_| fail("spans --trace <decimal trace id>".into()))?;
                    Ok(self.render_trace(id))
                }
                _ => Err(fail("usage: spans [--trace <id>]".into())),
            },
            "metrics" => {
                let snapshot = self.world.metrics().snapshot();
                match rest {
                    "" | "prometheus" => Ok(prometheus_text(&snapshot)),
                    "json" | "--json" => Ok(json_snapshot(&snapshot)),
                    other => Err(fail(format!(
                        "unknown format {other} (want prometheus|json)"
                    ))),
                }
            }
            "slo" => Ok(self.render_slo()),
            "dump" => Ok(self.world.flight_dump() + "\n"),
            "telemetry" => {
                let tel = self.world.telemetry();
                match rest.split_whitespace().collect::<Vec<_>>().as_slice() {
                    ["on"] => {
                        tel.set_enabled(true);
                        Ok("telemetry on\n".to_owned())
                    }
                    ["off"] => {
                        tel.set_enabled(false);
                        Ok("telemetry off\n".to_owned())
                    }
                    ["slow", ns] => {
                        let ns: u64 = ns
                            .parse()
                            .map_err(|_| fail("telemetry slow <nanoseconds>".into()))?;
                        tel.set_slow_threshold_ns(ns);
                        Ok(format!("slow-op threshold set to {ns} ns\n"))
                    }
                    [] => Ok(format!(
                        "telemetry {} ({} spans recorded)\n",
                        if tel.enabled() { "on" } else { "off" },
                        tel.span_count()
                    )),
                    _ => Err(fail("usage: telemetry [on|off|slow <ns>]".into())),
                }
            }
            "faults" => self.run_faults(rest).map_err(fail),
            "store" => self.run_store(rest).map_err(fail),
            "sessions" => {
                let shared = self.world.shared_sentinels();
                let mut out = String::new();
                if shared.is_empty() {
                    out.push_str("no shared sentinels\n");
                } else {
                    for (path, name, strategy, count) in shared {
                        writeln!(out, "{path}  {name} ({strategy})  sessions={count}")
                            .expect("write to string");
                    }
                }
                let s = self.world.telemetry().sessions().snapshot();
                writeln!(
                    out,
                    "current={} peak={} attaches={} queue_depth_peak={} \
                     coalesced_writes={} batch_flushes={}",
                    s.sessions,
                    s.sessions_peak,
                    s.attaches,
                    s.queue_depth_peak,
                    s.coalesced_writes,
                    s.flushed_batches
                )
                .expect("write to string");
                Ok(out)
            }
            "fleet" => {
                let mut out = String::new();
                let f = self.world.telemetry().fleet().snapshot();
                writeln!(
                    out,
                    "workers={}/{} shards={} live_tasks={}",
                    f.workers,
                    self.world.fleet_workers(),
                    f.shards,
                    self.world.fleet_task_count()
                )
                .expect("write to string");
                for stat in self.world.fleet_shards() {
                    if stat.live > 0 || stat.queued > 0 {
                        writeln!(
                            out,
                            "shard {:>2}  live={} queued={}",
                            stat.shard, stat.live, stat.queued
                        )
                        .expect("write to string");
                    }
                }
                writeln!(
                    out,
                    "spawned={} peak={} polls={} wakeups={} steals={} parks={} \
                     queue_depth_peak={} pinned={} abandoned={}",
                    f.spawned,
                    f.sentinels_peak,
                    f.polls,
                    f.wakeups,
                    f.steals,
                    f.parks,
                    f.queue_depth_peak,
                    f.pinned,
                    f.abandoned
                )
                .expect("write to string");
                Ok(out)
            }
            "cluster" => {
                let c = self.world.telemetry().cluster().snapshot();
                let mut out = String::new();
                writeln!(out, "nodes={} rebalances={}", c.nodes, c.rebalances)
                    .expect("write to string");
                writeln!(
                    out,
                    "writes={} replications={} replication_failures={}",
                    c.writes, c.replications, c.replication_failures
                )
                .expect("write to string");
                writeln!(
                    out,
                    "reads={} failovers={} stale_waits={} stale_rejects={}",
                    c.reads, c.read_failovers, c.stale_waits, c.stale_rejects
                )
                .expect("write to string");
                Ok(out)
            }
            "sentinels" => Ok(self.world.sentinels().names().join("\n") + "\n"),
            "services" => Ok(self.world.net().services().join("\n") + "\n"),
            "demo" => {
                // Stand up demo remote services so scripts have sources.
                let files = FileServer::new();
                files.seed("/pub/motd", b"welcome to the active files demo\n");
                files.seed("/pub/data.csv", b"region,units\neast,120\nwest,80\n");
                self.world
                    .net()
                    .register("files", Arc::clone(&files) as Arc<dyn Service>);
                self.demo_files = Some(files);
                let quotes = QuoteServer::new(7, &["ACME", "GLOBEX"]);
                self.world
                    .net()
                    .register("quotes", quotes as Arc<dyn Service>);
                let mail = MailStore::new();
                mail.deliver(
                    "demo@system",
                    &format!("{}@local", self.world.user()),
                    "hello",
                    "demo message",
                );
                self.world
                    .net()
                    .register("pop", PopServer::new(mail.clone()) as Arc<dyn Service>);
                self.world
                    .net()
                    .register("smtp", SmtpServer::new(mail) as Arc<dyn Service>);
                Ok("demo services registered: files, quotes, pop, smtp\n".to_owned())
            }
            other => Err(ShellError {
                command: other.to_owned(),
                message: "unknown command (try `help`)".to_owned(),
            }),
        }
    }

    /// The `store` command: pragma-style controls against a durable
    /// active file. `checkpoint`, `stats`, and `sync <mode>` map onto
    /// the runtime `CTL_STORE_*` control codes; a non-durable file
    /// answers with the same `NotSupported` the application would see.
    fn run_store(&mut self, rest: &str) -> Result<String, String> {
        const USAGE: &str = "usage: store <path> checkpoint|stats|sync <always|commit|off>";
        let args: Vec<&str> = rest.split_whitespace().collect();
        let (path, op) = match args.as_slice() {
            [path, op @ ..] if !op.is_empty() => (*path, op),
            _ => return Err(USAGE.to_owned()),
        };
        let (code, payload): (u32, &[u8]) = match *op {
            ["checkpoint"] => (CTL_STORE_CHECKPOINT, b""),
            ["stats"] => (CTL_STORE_STATS, b""),
            ["sync", mode] => (CTL_STORE_SYNC, mode.as_bytes()),
            _ => return Err(USAGE.to_owned()),
        };
        let h = self
            .api
            .create_file(path, Access::read_write(), Disposition::OpenExisting)
            .map_err(|e| e.to_string())?;
        // Close even when the control fails — the handle must not leak.
        let reply = self.api.device_io_control(h, code, payload);
        let closed = self.api.close_handle(h);
        let reply = reply.map_err(|e| e.to_string())?;
        closed.map_err(|e| e.to_string())?;
        let mut text = String::from_utf8_lossy(&reply).into_owned();
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        Ok(text)
    }

    /// The `faults` command: with no arguments, renders the reliability
    /// counters, circuit-breaker states, and per-service fault summaries;
    /// with arguments, configures fault injection against one service.
    fn run_faults(&mut self, rest: &str) -> Result<String, String> {
        let net = self.world.net();
        let args: Vec<&str> = rest.split_whitespace().collect();
        if args.is_empty() {
            let rel = net.reliability();
            let mut out = String::new();
            writeln!(
                out,
                "reliability: retries={} failovers={} breaker_trips={} \
                 breaker_rejections={} degraded_reads={} queued_writes={} \
                 replayed_writes={}",
                rel.retries,
                rel.failovers,
                rel.breaker_trips,
                rel.breaker_rejections,
                rel.degraded_reads,
                rel.queued_writes,
                rel.replayed_writes,
            )
            .expect("write to string");
            for (service, state) in net.breaker_states() {
                writeln!(out, "breaker {service}: {state}").expect("write to string");
            }
            for service in net.services() {
                if let Some(plan) = net.plan(&service) {
                    writeln!(out, "{service}: {}", plan.describe()).expect("write to string");
                }
            }
            return Ok(out);
        }
        let service = args[0];
        let plan = net
            .plan(service)
            .ok_or_else(|| format!("unknown service {service}"))?;
        let parse = |s: &str| s.parse::<u64>().map_err(|_| format!("bad number {s}"));
        match &args[1..] {
            [] => Ok(format!("{service}: {}\n", plan.describe())),
            ["drop", n] => {
                plan.drop_next(parse(n)?);
                Ok(String::new())
            }
            ["flaky", n] => {
                plan.flaky(parse(n)?);
                Ok(String::new())
            }
            ["partition", "on"] => {
                plan.set_partitioned(true);
                Ok(String::new())
            }
            ["partition", "off"] => {
                plan.set_partitioned(false);
                Ok(String::new())
            }
            ["window", start, end] => {
                plan.partition_window(parse(start)?, parse(end)?);
                Ok(String::new())
            }
            ["latency", base] => {
                plan.latency(parse(base)?, 0);
                Ok(String::new())
            }
            ["latency", base, jitter] => {
                plan.latency(parse(base)?, parse(jitter)?);
                Ok(String::new())
            }
            ["loss", ppm] => {
                plan.loss_ppm(parse(ppm)?);
                Ok(String::new())
            }
            ["clear"] => {
                plan.clear();
                Ok(String::new())
            }
            _ => Err(
                "usage: faults [<service> [drop <n>|flaky <n>|partition on|off|\
                      window <start_ns> <end_ns>|latency <base_ns> [jitter_ns]|\
                      loss <ppm>|clear]]"
                    .to_owned(),
            ),
        }
    }

    /// Renders the `top` table: per-(strategy, op) latency percentiles
    /// from the telemetry histograms, per-sentinel service latencies, and
    /// the call counters.
    fn render_top(&self) -> String {
        let tel = self.world.telemetry();
        let strategy_rows = tel.strategy_hist_snapshots();
        if strategy_rows.is_empty() {
            return "no telemetry recorded yet (is telemetry on?)\n".to_owned();
        }
        let us = |ns: u64| ns as f64 / 1000.0;
        let mut out = String::new();
        writeln!(
            out,
            "{:<14} {:<8} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "strategy", "op", "count", "p50 us", "p90 us", "p99 us", "max us"
        )
        .expect("write to string");
        for ((strategy, op), h) in strategy_rows {
            writeln!(
                out,
                "{strategy:<14} {op:<8} {:>6} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                h.count,
                us(h.p50_ns()),
                us(h.p90_ns()),
                us(h.p99_ns()),
                us(h.max_ns),
            )
            .expect("write to string");
        }
        let sentinel_rows = tel.sentinel_hist_snapshots();
        if !sentinel_rows.is_empty() {
            writeln!(
                out,
                "\n{:<14} {:>6} {:>9} {:>9} {:>9}",
                "sentinel", "count", "p50 us", "p90 us", "max us"
            )
            .expect("write to string");
            for (sentinel, h) in sentinel_rows {
                writeln!(
                    out,
                    "{sentinel:<14} {:>6} {:>9.2} {:>9.2} {:>9.2}",
                    h.count,
                    us(h.p50_ns()),
                    us(h.p90_ns()),
                    us(h.max_ns),
                )
                .expect("write to string");
            }
        }
        let calls = self.counters.snapshot();
        writeln!(
            out,
            "\ncalls: create={} read={} write={} close={} size={} seek={} \
             flush={} ioctl={} scatter={} gather={} other={}",
            calls.create_file,
            calls.read_file,
            calls.write_file,
            calls.close_handle,
            calls.get_file_size,
            calls.set_file_pointer,
            calls.flush_file_buffers,
            calls.device_io_control,
            calls.read_file_scatter,
            calls.write_file_gather,
            calls.other,
        )
        .expect("write to string");
        out
    }

    /// Renders the `spans` view: the most recent complete span trees
    /// (indented by depth), then any recorded slow operations with their
    /// ancestor chains.
    fn render_spans(&self) -> String {
        const MAX_ROOTS: usize = 8;
        let tel = self.world.telemetry();
        let spans = tel.spans();
        if spans.is_empty() {
            return "no spans recorded yet (is telemetry on?)\n".to_owned();
        }
        let mut out = String::new();
        let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent == 0).collect();
        let skipped = roots.len().saturating_sub(MAX_ROOTS);
        if skipped > 0 {
            writeln!(out, "... {skipped} earlier root spans omitted").expect("write to string");
        }
        for root in roots.iter().rev().take(MAX_ROOTS).rev() {
            render_span_tree(&mut out, &spans, root, 0);
        }
        let slow = tel.slow_ops();
        if !slow.is_empty() {
            writeln!(out, "\nslow ops:").expect("write to string");
            for op in slow {
                writeln!(
                    out,
                    "  {} ({:.2} us) via {}",
                    op.record.name,
                    op.record.duration_ns() as f64 / 1000.0,
                    op.ancestry,
                )
                .expect("write to string");
            }
        }
        out
    }

    /// Renders `spans --trace <id>`: only the spans of one causal trace,
    /// as parent-linked trees.
    fn render_trace(&self, trace: u64) -> String {
        let tel = self.world.telemetry();
        let spans: Vec<SpanRecord> = tel
            .spans()
            .into_iter()
            .filter(|s| s.trace == trace)
            .collect();
        if spans.is_empty() {
            return format!("no spans recorded for trace {trace}\n");
        }
        let mut out = String::new();
        writeln!(out, "trace {trace} ({} spans):", spans.len()).expect("write to string");
        // Roots of the filtered set: spans whose parent is outside it
        // (normally just the interpose root with parent 0).
        let roots: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| !spans.iter().any(|p| p.id == s.parent))
            .collect();
        for root in roots {
            render_span_tree(&mut out, &spans, root, 1);
        }
        out
    }

    /// Renders the `slo` view: declared objectives, cumulative counters,
    /// and short/long-window burn rates per tracked file, then the
    /// per-sentinel resource accounting.
    fn render_slo(&self) -> String {
        let tel = self.world.telemetry();
        let trackers = tel.slo_trackers();
        let mut out = String::new();
        if trackers.is_empty() {
            out.push_str("no SLOs declared (spec keys slo_p99_us= / slo_err_ppm=)\n");
        } else {
            writeln!(
                out,
                "{:<24} {:<12} {:>8} {:>7} {:>8} {:>11} {:>11}",
                "file", "sentinel", "ops", "errors", "lat_bad", "burn(short)", "burn(long)"
            )
            .expect("write to string");
            for tracker in trackers {
                let s = tracker.snapshot();
                let burn = |r: &afs_telemetry::BurnRates| {
                    format!(
                        "{:.2}/{:.2}",
                        r.latency_milli as f64 / 1000.0,
                        r.error_milli as f64 / 1000.0
                    )
                };
                writeln!(
                    out,
                    "{:<24} {:<12} {:>8} {:>7} {:>8} {:>11} {:>11}",
                    s.file,
                    s.sentinel,
                    s.ops,
                    s.errors,
                    s.lat_breaches,
                    burn(&s.short),
                    burn(&s.long),
                )
                .expect("write to string");
            }
            out.push_str("(burn is latency/error, 1.00 = exactly at budget)\n");
        }
        let stats = tel.sentinel_stats_snapshots();
        if !stats.is_empty() {
            writeln!(
                out,
                "\n{:<14} {:>8} {:>7} {:>12} {:>12} {:>10}",
                "sentinel", "ops", "errors", "bytes_in", "bytes_out", "queue_peak"
            )
            .expect("write to string");
            for (name, s) in stats {
                writeln!(
                    out,
                    "{name:<14} {:>8} {:>7} {:>12} {:>12} {:>10}",
                    s.ops, s.errors, s.bytes_in, s.bytes_out, s.queue_depth_peak,
                )
                .expect("write to string");
            }
        }
        out
    }

    /// Runs a multi-line script, concatenating outputs. Stops at the
    /// first error.
    ///
    /// # Errors
    ///
    /// The first [`ShellError`], annotated with the line number.
    pub fn run_script(&mut self, script: &str) -> Result<String, ShellError> {
        let mut out = String::new();
        for (i, line) in script.lines().enumerate() {
            match self.run(line) {
                Ok(text) => out.push_str(&text),
                Err(e) => {
                    return Err(ShellError {
                        command: e.command,
                        message: format!("line {}: {}", i + 1, e.message),
                    })
                }
            }
        }
        Ok(out)
    }
}

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

/// Prints `span` and its descendants from `spans`, indented by depth.
fn render_span_tree(out: &mut String, spans: &[SpanRecord], span: &SpanRecord, depth: usize) {
    let strategy = if span.strategy.is_empty() {
        String::new()
    } else {
        format!(" [{}]", span.strategy)
    };
    writeln!(
        out,
        "{:indent$}{} {}{} ({:.2} us, {} bytes)",
        "",
        span.layer.label(),
        span.name,
        strategy,
        span.duration_ns() as f64 / 1000.0,
        span.bytes,
        indent = depth * 2,
    )
    .expect("write to string");
    for child in spans.iter().filter(|s| s.parent == span.id) {
        render_span_tree(out, spans, child, depth + 1);
    }
}

/// `help` text.
pub const HELP: &str = "\
commands:
  mkdir <dir>                          create a directory
  ls [dir]                             list a directory
  cat <path>                           print a file (active or passive)
  write <path> <text>                  create/replace a file with text
  append <path> <text>                 append text to a file
  cp <from> <to> | mv <from> <to>      copy / rename
  rm <path>                            delete
  stat <path>                          size + active-file info
  install <path> <sentinel> <strategy> <backing> [k=v ...]
                                       make <path> an active file
                                       strategy: process|control|thread|dll
                                       backing:  none|memory|disk
  sentinels | services                 list registered names
  stats                                per-strategy/per-op cost table
                                       (crossings, copies, bytes, time)
  top                                  latency percentiles per strategy/op
                                       and per sentinel, plus call counts
  spans                                recent span trees across the chain
                                       (interpose > strategy > transport >
                                       sentinel > backend) and slow ops
  spans --trace <id>                   only the spans of one causal trace
  slo                                  declared objectives with burn rates
                                       and per-sentinel resource accounting
  dump                                 flight-recorder post-mortem bundles
                                       plus metrics/fault/breaker state, as
                                       one JSON document
  faults                               reliability counters, breaker states,
                                       and per-service fault summaries
  faults <service> <fault ...>         inject faults against a service:
                                       drop <n> | flaky <n> | partition on|off
                                       window <start_ns> <end_ns>
                                       latency <base_ns> [jitter_ns]
                                       loss <ppm> | clear
  store <path> checkpoint              fold the WAL into pages now
  store <path> stats                   durable-store counters (WAL appends,
                                       fsyncs, commits, recovery outcome)
  store <path> sync <always|commit|off>
                                       switch the durability/speed knob
  sessions                             live shared sentinels with their
                                       session counts, plus the session
                                       gauges (attaches, queue depth,
                                       coalesced writes, batch flushes)
  fleet                                sentinel-executor status: worker
                                       pool bound, per-shard occupancy,
                                       poll/steal/park counters
  cluster                              replicated-fleet gauges: membership,
                                       primary-ack writes/replications,
                                       read failovers, bounded-staleness
                                       waits and rejections
  metrics [prometheus|json]            export the full metrics snapshot
  telemetry [on|off|slow <ns>]         toggle span/histogram recording or
                                       set the slow-op report threshold
  demo                                 register demo remote services
  help                                 this text
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_cat_roundtrip() {
        let mut sh = Shell::new();
        sh.run("write /hello.txt hi there").expect("write");
        assert_eq!(sh.run("cat /hello.txt").expect("cat"), "hi there");
    }

    #[test]
    fn store_command_drives_the_durable_controls() {
        let mut sh = Shell::new();
        sh.run("install /ledger.af null dll disk durable=on sync=commit")
            .expect("install");
        sh.run("write /ledger.af committed state").expect("write");
        let stats = sh.run("store /ledger.af stats").expect("stats");
        assert!(stats.contains("commits="), "stats: {stats}");
        assert!(stats.contains("torn=false"), "stats: {stats}");
        let ckpt = sh.run("store /ledger.af checkpoint").expect("checkpoint");
        assert!(ckpt.contains("pages_written="), "checkpoint: {ckpt}");
        let sync = sh.run("store /ledger.af sync off").expect("sync");
        assert!(sync.contains("off"), "sync: {sync}");
        // A passive file answers NotSupported, surfaced as an error.
        sh.run("write /plain.txt hello").expect("write");
        assert!(sh.run("store /plain.txt stats").is_err());
        assert!(sh.run("store /ledger.af sync sometimes").is_err());
        assert!(sh.run("store").is_err());
    }

    #[test]
    fn install_makes_cat_see_the_sentinel() {
        let mut sh = Shell::new();
        sh.run("install /loud.af uppercase dll disk")
            .expect("install");
        sh.run("append /loud.af quiet words").expect("append");
        assert_eq!(sh.run("cat /loud.af").expect("cat"), "QUIET WORDS");
        let stat = sh.run("stat /loud.af").expect("stat");
        assert!(stat.contains("active: uppercase (DLL, disk)"));
    }

    #[test]
    fn sessions_reports_shared_sentinels_and_gauges() {
        let mut sh = Shell::new();
        sh.run("install /loud.af uppercase dll disk")
            .expect("install");
        let idle = sh.run("sessions").expect("sessions");
        assert!(idle.contains("no shared sentinels"), "{idle}");
        sh.run("append /loud.af abc").expect("append");
        let after = sh.run("sessions").expect("sessions");
        // Each shell command opens and closes, so no sentinel is live
        // afterwards — but the attach was counted.
        assert!(after.contains("attaches=1"), "{after}");
        assert!(after.contains("current=0"), "{after}");
    }

    #[test]
    fn cluster_reports_fleet_gauges() {
        use afs_remote::ClusterClient;
        let mut sh = Shell::new();
        let idle = sh.run("cluster").expect("cluster");
        assert!(idle.contains("nodes=0"), "{idle}");
        assert!(idle.contains("writes=0"), "{idle}");
        // Drive a small replicated fleet feeding the world's hub gauges —
        // what the command then reports.
        let net = sh.world.net().clone();
        let client = ClusterClient::new(net.clone(), 2, Some(5))
            .with_gauges(Arc::clone(sh.world.telemetry().cluster()));
        for i in 0..2 {
            let name = format!("files-{i}");
            net.register(&name, FileServer::new() as Arc<dyn Service>);
            client.add_node(&name);
        }
        client.write("/k.af", 0, b"bytes").expect("write");
        client.read("/k.af", 0, 5).expect("read");
        let after = sh.run("cluster").expect("cluster");
        assert!(after.contains("nodes=2"), "{after}");
        assert!(after.contains("writes=1 replications=1"), "{after}");
        assert!(after.contains("reads=1 failovers=0"), "{after}");
    }

    #[test]
    fn fleet_reports_executor_status() {
        let mut sh = Shell::new();
        let idle = sh.run("fleet").expect("fleet");
        assert!(idle.contains("live_tasks=0"), "{idle}");
        assert!(idle.contains("spawned=0"), "{idle}");
        sh.run("install /loud.af uppercase thread memory")
            .expect("install");
        sh.run("append /loud.af abc").expect("append");
        let after = sh.run("fleet").expect("fleet");
        // Each shell command opens and closes, so the task retired — but
        // its spawn and polls were counted.
        assert!(after.contains("live_tasks=0"), "{after}");
        assert!(!after.contains("spawned=0"), "{after}");
        assert!(after.contains("workers="), "{after}");
    }

    #[test]
    fn demo_services_feed_aggregators() {
        let mut sh = Shell::new();
        sh.run("demo").expect("demo");
        sh.run("install /motd.af remote-file dll memory service=files remote=/pub/motd")
            .expect("install");
        let motd = sh.run("cat /motd.af").expect("cat");
        assert!(motd.contains("welcome"));
    }

    #[test]
    fn scripts_stop_at_first_error_with_line_number() {
        let mut sh = Shell::new();
        let err = sh
            .run_script("write /a one\nbogus command\nwrite /b two")
            .expect_err("must fail");
        assert_eq!(err.command, "bogus");
        assert!(err.message.starts_with("line 2"));
        // Line 3 never ran.
        assert!(sh.run("cat /b").is_err());
    }

    #[test]
    fn ls_and_namespace_commands() {
        let mut sh = Shell::new();
        sh.run_script("mkdir /d\nwrite /d/a aa\ncp /d/a /d/b\nmv /d/b /d/c\nrm /d/a")
            .expect("script");
        let listing = sh.run("ls /d").expect("ls");
        assert!(listing.contains("c"));
        assert!(!listing.contains(" a\n"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let mut sh = Shell::new();
        let out = sh
            .run_script("# a comment\n\nwrite /x 1\n# done")
            .expect("script");
        assert!(out.is_empty());
    }

    #[test]
    fn stats_reports_per_strategy_ops() {
        let mut sh = Shell::new();
        assert!(sh
            .run("stats")
            .expect("empty stats")
            .contains("no active-file operations"));
        sh.run("install /s.af null dll disk").expect("install");
        sh.run("append /s.af abc").expect("append");
        sh.run("cat /s.af").expect("cat");
        let stats = sh.run("stats").expect("stats");
        assert!(stats.contains("DLL"), "strategy column present: {stats}");
        assert!(stats.contains("read"), "read row present: {stats}");
        assert!(stats.contains("write"), "write row present: {stats}");
    }

    #[test]
    fn stats_totals_survive_ring_wrap() {
        let mut sh = Shell::new();
        sh.run("install /w.af null dll memory").expect("install");
        sh.run("append /w.af x").expect("seed");
        // Drive well past the trace ring's capacity; the stats table must
        // keep exact counts because it renders cumulative aggregates.
        let ops = afs_sim::DEFAULT_TRACE_CAPACITY + 200;
        let h = sh
            .api
            .create_file("/w.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 1];
        for _ in 0..ops {
            sh.api
                .set_file_pointer(h, 0, SeekMethod::Begin)
                .expect("seek");
            sh.api.read_file(h, &mut buf).expect("read");
        }
        sh.api.close_handle(h).expect("close");
        assert!(
            sh.world.trace().records().len() < ops,
            "the ring must actually have wrapped for this test to bite"
        );
        let stats = sh.run("stats").expect("stats");
        let read_row = stats
            .lines()
            .find(|l| l.contains("read"))
            .expect("read row");
        assert!(
            read_row.contains(&format!("{ops}")),
            "exact read count rendered past ring wrap: {read_row}"
        );
        assert!(stats.contains("total:"), "totals footer present: {stats}");
    }

    #[test]
    fn top_and_spans_render_telemetry() {
        let mut sh = Shell::new();
        sh.run("install /t.af null thread memory").expect("install");
        sh.run("append /t.af payload").expect("append");
        sh.run("cat /t.af").expect("cat");
        let top = sh.run("top").expect("top");
        assert!(top.contains("Thread"), "strategy row present: {top}");
        assert!(top.contains("p99 us"), "percentile header present: {top}");
        assert!(top.contains("calls:"), "call counters present: {top}");
        let spans = sh.run("spans").expect("spans");
        assert!(spans.contains("interpose ReadFile"), "root span: {spans}");
        assert!(spans.contains("strategy read"), "strategy span: {spans}");
        assert!(spans.contains("transport"), "transport span: {spans}");
    }

    #[test]
    fn metrics_export_in_both_formats() {
        let mut sh = Shell::new();
        sh.run("install /m.af null dll memory").expect("install");
        sh.run("append /m.af data").expect("append");
        sh.run("cat /m.af").expect("cat");
        let prom = sh.run("metrics").expect("prometheus");
        assert!(prom.contains("afs_ops_total"), "trace metrics: {prom}");
        assert!(prom.contains("afs_calls_total"), "call counters: {prom}");
        let json = sh.run("metrics json").expect("json");
        assert!(afs_telemetry::json_is_valid(&json), "valid JSON: {json}");
        assert!(sh.run("metrics yaml").is_err(), "unknown format rejected");
    }

    #[test]
    fn telemetry_toggle_and_slow_threshold() {
        let mut sh = Shell::new();
        assert!(sh.run("telemetry").expect("status").contains("on"));
        sh.run("telemetry off").expect("off");
        sh.run("install /q.af null dll memory").expect("install");
        sh.run("append /q.af data").expect("append");
        assert_eq!(sh.world.telemetry().span_count(), 0, "off records nothing");
        sh.run("telemetry on").expect("on");
        sh.run("telemetry slow 1").expect("threshold");
        sh.run("cat /q.af").expect("cat");
        assert!(sh.world.telemetry().span_count() > 0);
        let spans = sh.run("spans").expect("spans");
        assert!(
            spans.contains("slow ops:"),
            "1 ns threshold flags ops: {spans}"
        );
    }

    #[test]
    fn faults_command_injects_and_reports() {
        let mut sh = Shell::new();
        sh.run("demo").expect("demo");
        assert!(
            sh.run("faults ghost partition on").is_err(),
            "unknown services are rejected"
        );
        sh.run("faults files partition on").expect("partition");
        let status = sh.run("faults").expect("status");
        assert!(status.contains("files: partitioned"), "summary: {status}");
        assert!(
            status.contains("reliability: retries="),
            "counters: {status}"
        );
        sh.run("install /motd.af remote-file dll memory service=files remote=/pub/motd")
            .expect("install");
        assert!(sh.run("cat /motd.af").is_err(), "partition surfaces");
        sh.run("faults files clear").expect("clear");
        let motd = sh.run("cat /motd.af").expect("healed");
        assert!(motd.contains("welcome"));
        assert!(sh
            .run("faults files")
            .expect("describe")
            .contains("healthy"));
    }

    #[test]
    fn newline_escape_expands() {
        let mut sh = Shell::new();
        sh.run("write /multi line1\\nline2").expect("write");
        assert_eq!(sh.run("cat /multi").expect("cat"), "line1\nline2");
    }
}
