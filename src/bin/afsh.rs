//! `afsh` — the Active Files shell.
//!
//! Reads commands from stdin (or a script file given as the first
//! argument) and executes them against a fresh simulated world. Try:
//!
//! ```text
//! $ cargo run --bin afsh
//! afsh> demo
//! afsh> install /motd.af remote-file dll memory service=files remote=/pub/motd
//! afsh> cat /motd.af
//! ```

use std::io::{BufRead, Write};

use activefiles::shell::Shell;

fn main() {
    let mut shell = Shell::new();
    let args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(script_path) = args.first() {
        let script = match std::fs::read_to_string(script_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("afsh: cannot read {script_path}: {e}");
                std::process::exit(2);
            }
        };
        match shell.run_script(&script) {
            Ok(out) => print!("{out}"),
            Err(e) => {
                eprintln!("afsh: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    let interactive = args.is_empty();
    if interactive {
        println!("afsh — active files shell (try `help`, `demo`)");
        print!("afsh> ");
        std::io::stdout().flush().expect("flush");
    }
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match shell.run(&line) {
            Ok(out) => print!("{out}"),
            Err(e) => eprintln!("afsh: {e}"),
        }
        if interactive {
            print!("afsh> ");
            std::io::stdout().flush().expect("flush");
        }
    }
}
