#![warn(missing_docs)]
//! # Active Files
//!
//! A Rust reproduction of *“Active Files: A Mechanism for Integrating
//! Legacy Applications into Distributed Systems”* (Dasgupta, Itzkovitz,
//! Karamcheti — ICDCS 2000).
//!
//! An **active file** looks exactly like a regular file to an unmodified
//! ("legacy") application, but opening it launches a **sentinel** that
//! interposes on every file operation. The sentinel can generate data,
//! filter reads and writes, aggregate remote sources (file servers, POP
//! mailboxes, stock feeds, registries, databases) into one local file, or
//! distribute writes back out — all without the application knowing.
//!
//! This crate is the workspace façade: it re-exports the public API of
//! every member crate. Start with [`AfsWorld`] and the `examples/`
//! directory.
//!
//! ```
//! use activefiles::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let world = AfsWorld::new();
//! activefiles::register_standard_sentinels(&world);
//! world.install_active_file(
//!     "/shout.af",
//!     &SentinelSpec::new("uppercase", Strategy::DllThread).backing(Backing::Disk),
//! )?;
//! let api = world.api();
//! let h = api.create_file("/shout.af", Access::read_write(), Disposition::OpenExisting)?;
//! api.write_file(h, b"whisper")?;
//! api.set_file_pointer(h, 0, SeekMethod::Begin)?;
//! let mut buf = [0u8; 7];
//! api.read_file(h, &mut buf)?;
//! assert_eq!(&buf, b"WHISPER");
//! api.close_handle(h)?;
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | `afs-sim` | virtual clocks + the calibrated hardware cost model |
//! | `afs-vfs` | in-memory VFS with NTFS-style named streams |
//! | `afs-ipc` | pipes, control channels, events, shared buffers, named semaphores |
//! | `afs-winapi` | the Win32-shaped [`FileApi`] surface + handle tables |
//! | `afs-interpose` | runtime API interception (Mediating Connectors analogue) |
//! | `afs-net` | simulated network with latency/bandwidth accounting |
//! | `afs-remote` | remote services: files, mail, quotes, registry, database |
//! | `afs-core` | the active-files runtime and the four strategies of §4 |
//! | `afs-sentinels` | ready-made sentinels for every §3 use case |

pub use afs_core::{
    ActiveFileSystem, ActiveFilesLayer, AfsWorld, AfsWorldBuilder, Backing, CacheStore,
    NullSentinel, ProcessIo, RawProcessSentinel, SentinelCtx, SentinelError, SentinelLogic,
    SentinelRegistry, SentinelResult, SentinelSpec, Strategy, ACTIVE_EXTENSION, CTL_QUERY_STALE,
};
pub use afs_interpose::{ApiHandle, ApiLayer, CallCounters, CountingLayer, MediatingConnector};
pub use afs_ipc::{
    BufferPool, ControlChannel, Event, Pipe, ResetMode, SharedBuffer, SyncRegistry, Transport,
};
pub use afs_net::{
    BreakerConfig, CircuitBreaker, FaultPlan, NetError, Network, ReliabilityPolicy,
    ReliabilitySnapshot, RetryPolicy, Service,
};
pub use afs_remote::{
    ClusterClient, DbClient, DbServer, FileClient, FileServer, MailClient, MailStore, PopServer,
    QuoteClient, QuoteServer, RegistryClient, RegistryServer, RegistryValue, SmtpServer,
};
pub use afs_sim::{
    clock, Cost, CostModel, CrossingKind, HardwareProfile, OpKind, OpSummary, OpTrace, Series,
    Summary, TraceRecord,
};
pub use afs_telemetry::{
    chrome_trace, flight_bundles_json, json_is_valid, json_snapshot, prometheus_is_valid,
    prometheus_text, BurnRates, FlightBundle, FlightEvent, FlightRecorder, GaugesSnapshot,
    HistogramSnapshot, LatencyHistogram, Layer, Metric, MetricValue, MetricsRegistry, QueueGauges,
    SentinelStatsSnapshot, SloSnapshot, SloSpec, SlowOp, SpanRecord, Telemetry, TraceContext,
};
pub use afs_vfs::{VPath, Vfs, VfsError};
pub use afs_winapi::{
    Access, Disposition, FileApi, Handle, PassiveFileApi, SeekMethod, ShareMode, Win32Error,
};

pub mod shell;

/// Registers the full standard sentinel library (see
/// [`afs_sentinels::register_all`]) into a world.
pub fn register_standard_sentinels(world: &AfsWorld) {
    afs_sentinels::register_all(world.sentinels());
}

/// Everything most programs need, in one import.
pub mod prelude {
    pub use crate::register_standard_sentinels;
    pub use afs_core::{AfsWorld, Backing, SentinelLogic, SentinelSpec, Strategy};
    pub use afs_winapi::{Access, Disposition, FileApi, SeekMethod, Win32Error};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_everything_together() {
        let world = AfsWorld::new();
        crate::register_standard_sentinels(&world);
        assert!(world.sentinels().contains("compress"));
        assert!(world.sentinels().contains("null"));
    }
}
