//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros — implemented as a simple wall-clock harness:
//! each benchmark is warmed up briefly, then timed for the configured
//! measurement window, and the mean iteration time is printed. No statistics,
//! HTML reports, or regression tracking.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Drives timed iterations of one benchmark body.
pub struct Bencher {
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Short warm-up so one-time setup does not dominate tiny windows.
        let warm_until = Instant::now() + self.measurement / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }

        let start = Instant::now();
        let deadline = start + self.measurement;
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement = time;
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let _ = &self.criterion;
        if bencher.iters == 0 {
            println!("{}/{}: no iterations recorded", self.name, id);
            return;
        }
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters);
        let rate = match &self.throughput {
            Some(Throughput::Bytes(bytes)) if per_iter > 0 => {
                let bytes_per_sec = u128::from(*bytes) * 1_000_000_000 / per_iter;
                format!("  ({:.1} MiB/s)", bytes_per_sec as f64 / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > 0 => {
                let per_sec = u128::from(*n) * 1_000_000_000 / per_iter;
                format!("  ({per_sec} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {} iters, {} ns/iter{}",
            self.name, id, bencher.iters, per_iter, rate
        );
    }
}

/// Top-level bench driver. Honours `--measurement-time-ms` and ignores the
/// rest of criterion's CLI surface (`--bench`, filters) for compatibility
/// with `cargo bench`.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let measurement = self.measurement;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            measurement,
            throughput: None,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Bytes(64));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.finish();
        assert!(ran > 0);
    }
}
