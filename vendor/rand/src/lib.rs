//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses — `SmallRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}`, `RngCore::fill_bytes` — with a fixed
//! xorshift64* generator so seeded streams stay deterministic across
//! platforms and rebuilds (which the workload/quote/generator code relies
//! on). Not cryptographic, and deliberately so: every consumer in this
//! repository wants reproducible pseudo-randomness.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of raw random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            let len = rest.len();
            rest.copy_from_slice(&word[..len]);
        }
    }
}

/// Integer types uniformly sampleable by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    fn widen(self) -> i128;
    fn narrow(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn widen(self) -> i128 {
                self as i128
            }
            fn narrow(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms accepted by [`Rng::gen_range`], reduced to half-open
/// `[low, high)` bounds in `i128` space.
pub trait SampleRange<T> {
    /// Returns `(low, high_exclusive)`.
    fn bounds(self) -> (i128, i128);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(self) -> (i128, i128) {
        (self.start.widen(), self.end.widen())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (i128, i128) {
        (self.start().widen(), self.end().widen() + 1)
    }
}

/// Convenience methods layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`. Panics on an empty range, like rand.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (low, high) = range.bounds();
        assert!(low < high, "cannot sample from empty range");
        let span = (high - low) as u128;
        let offset = (self.next_u64() as u128) % span;
        T::narrow(low + offset as i128)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (xorshift64* with a splitmix64
    /// seed scrambler, so nearby seeds give unrelated streams).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 finalizer; also guards against the all-zero state
            // xorshift cannot leave.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.gen_range(1usize..4);
            assert!((1..4).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
