//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small, deterministic property-testing engine exposing the subset of the
//! proptest API its tests use: the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros, `any::<T>()`, `Just`, integer
//! ranges, tuples, `collection::vec`, `prop_map`, simple `[class]{m,n}`
//! string patterns, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case panics with the assertion message;
//! - inputs derive from a fixed per-test seed, so runs are reproducible
//!   (rerunning cannot find new inputs, but also cannot flake).

pub mod test_runner {
    /// Deterministic xorshift64* generator seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name, then splitmix64 to spread it.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            Self {
                state: if z == 0 { 1 } else { z },
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-test configuration. Only `cases` is modelled.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// simply produces a value from the deterministic test RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between heterogeneous strategies sharing a value type;
    /// built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` to coerce each arm to a boxed strategy.
    pub fn union_arm<S>(s: S) -> BoxedStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII with an occasional higher code point.
            match rng.below(8) {
                0 => char::from_u32(0x20 + rng.below(0x60) as u32).unwrap_or('?'),
                _ => char::from_u32(rng.below(0xD800) as u32).unwrap_or('?'),
            }
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Integer types usable as range strategies.
    pub trait RangeValue: Copy {
        fn widen(self) -> i128;
        fn narrow(v: i128) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn widen(self) -> i128 {
                    self as i128
                }
                fn narrow(v: i128) -> Self {
                    v as $t
                }
            }
        )*};
    }

    impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (low, high) = (self.start.widen(), self.end.widen());
            assert!(low < high, "cannot sample from empty range");
            let span = (high - low) as u128;
            T::narrow(low + ((rng.next_u64() as u128) % span) as i128)
        }
    }

    impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (low, high) = (self.start().widen(), self.end().widen() + 1);
            let span = (high - low) as u128;
            T::narrow(low + ((rng.next_u64() as u128) % span) as i128)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `&str` patterns of the form `[class]{m,n}` generate strings over the
    /// character class (supports `a-z` ranges and literal characters,
    /// including multi-byte ones). Anything fancier is unsupported and
    /// panics, loudly, at generation time.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (class, min, max) = parse_pattern(self).unwrap_or_else(|| {
                panic!("unsupported string pattern {self:?}: expected `[class]{{m,n}}`")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| class[rng.below(class.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class_src: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .split_once(',')?;
        let (min, max) = (counts.0.trim().parse().ok()?, counts.1.trim().parse().ok()?);
        if min > max {
            return None;
        }

        let mut class = Vec::new();
        let mut i = 0;
        while i < class_src.len() {
            if i + 2 < class_src.len() && class_src[i + 1] == '-' {
                let (lo, hi) = (class_src[i] as u32, class_src[i + 2] as u32);
                for c in lo..=hi {
                    class.extend(char::from_u32(c));
                }
                i += 3;
            } else {
                class.push(class_src[i]);
                i += 1;
            }
        }
        if class.is_empty() {
            return None;
        }
        Some((class, min, max))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `elem`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Each case uses a deterministic RNG seeded from the test name, so failures
/// reproduce exactly on rerun.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice among strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::union_arm($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_generates_within_class() {
        let strat = "[a-c9 é]{2,5}";
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "bad length {n}");
            assert!(s.chars().all(|c| "abc9 é".contains(c)), "bad char in {s:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_draws_respect_ranges(
            x in 1usize..10,
            v in crate::collection::vec(any::<u8>(), 0..4),
            choice in prop_oneof![Just(0u8), 1u8..4, any::<u8>().prop_map(|b| b / 2)],
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(choice <= 127 || choice >= 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (any::<bool>(), -3i64..=3)) {
            let (_b, v) = pair;
            prop_assert!((-3..=3).contains(&v), "v={}", v);
        }
    }
}
