//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the *API subset it actually uses* over `std::sync`.
//! Semantics match parking_lot where the workspace relies on them:
//! `lock()`/`read()`/`write()` return guards directly (no `Result`), and
//! poisoning is transparently ignored — a panic while holding a lock does
//! not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex that returns its guard directly, ignoring poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock returning guards directly, ignoring poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable compatible with [`Mutex`] above.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Mirrors parking_lot's `&mut guard` signature by
    /// moving the std guard out for the wait and writing the re-acquired
    /// guard back in its place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: `inner` is moved out with `ptr::read` and consumed by
        // `Condvar::wait`, which unlocks and re-locks the mutex; the
        // re-acquired guard is written back with `ptr::write` without
        // dropping the (already moved-out) original. No code path observes
        // `guard.inner` between the read and the write.
        unsafe {
            let moved = std::ptr::read(&guard.inner);
            let reacquired = self.inner.wait(moved).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        waiter.join().expect("waiter join");
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
