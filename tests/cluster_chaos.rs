//! Seeded chaos for the replicated active-file cluster.
//!
//! Two scenarios the ISSUE's cluster work must survive, both driven from
//! a seeded RNG so the CI seed sweep varies the workload shape, the
//! victim choice, and the write contents:
//!
//! * **Partition during rebalance** — a node joins the fleet while
//!   another node is partitioned away. Every key must remain either
//!   readable at the session's own read-your-writes floor or fail with
//!   a *bounded* error (transport fault or staleness rejection) — a
//!   successful read returning bytes older than the session's last
//!   acked write is the one forbidden outcome. After the partition
//!   heals, every key reads back its last write.
//!
//! * **Node kill mid-replication** — a replica misses a replication
//!   cast and the primary is killed right after acknowledging the
//!   write. The read must fail over to the caught-up replica, never
//!   serve the laggard's stale copy; with the caught-up replica also
//!   gone, the read must reject (bounded staleness), not regress.
//!
//! The seed honours `AFS_TEST_SEED`, so the CI seed sweep exercises
//! eight different chaos shapes.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use activefiles::{clock, ClusterClient, CostModel, FileServer, NetError, Network, Service};

fn sweep_seed() -> u64 {
    std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn member(i: usize) -> String {
    format!("files-{i}")
}

/// Registers `nodes` file servers (all reachable) and returns a cluster
/// session over the first `initial` of them.
fn fleet(net: &Network, nodes: usize, initial: usize, copies: usize) -> ClusterClient {
    for i in 0..nodes {
        net.register(&member(i), FileServer::new() as Arc<dyn Service>);
    }
    let client = ClusterClient::new(net.clone(), copies, Some(10));
    for i in 0..initial {
        client.add_node(&member(i));
    }
    client
}

#[test]
fn partition_during_rebalance_preserves_read_your_writes() {
    let seed = sweep_seed();
    let mut rng = SmallRng::seed_from_u64(seed);
    let _clock = clock::install(0);
    let net = Network::new(CostModel::free());
    let client = fleet(&net, 4, 3, 2);

    // A seeded working set, every path carrying a distinct payload the
    // session has been acknowledged.
    let paths: Vec<String> = (0..32).map(|i| format!("/chaos/{seed}-{i}.af")).collect();
    let mut payloads = Vec::with_capacity(paths.len());
    for path in &paths {
        let byte: u8 = rng.gen_range(1u8..=255);
        let payload = vec![byte; 64];
        client.write(path, 0, &payload).expect("seed write");
        payloads.push(payload);
    }

    // The chaos: one of the original members drops off the network, and
    // while it is gone a new node joins — rebalance and partition overlap.
    let victim = member(rng.gen_range(0usize..3));
    net.plan(&victim)
        .expect("victim plan")
        .set_partitioned(true);
    client.add_node(&member(3));

    // Mid-chaos reads: a success must return the session's own last
    // write; failures must be bounded (a transport fault or a staleness
    // rejection), never silently stale bytes.
    let mut failed = Vec::new();
    for (path, payload) in paths.iter().zip(&payloads) {
        match client.read(path, 0, payload.len()) {
            Ok(bytes) => assert_eq!(
                &bytes, payload,
                "{path} read bytes older than the session's acked write"
            ),
            Err(NetError::Malformed(e)) => panic!("{path}: protocol error {e:?}"),
            Err(_) => failed.push(path.clone()),
        }
    }

    // Heal: the partitioned member returns, and every key — including
    // the ones that errored mid-chaos — reads back its last acked write.
    net.plan(&victim).expect("victim plan").clear();
    for (path, payload) in paths.iter().zip(&payloads) {
        let bytes = client.read(path, 0, payload.len()).expect("healed read");
        assert_eq!(&bytes, payload, "{path} after heal");
    }
    let snap = client.gauges().snapshot();
    assert_eq!(snap.rebalances, 4, "three initial members plus the join");
    assert!(
        snap.read_failovers > 0,
        "some reads must have routed around the moved primary or the \
         partition: {snap:?} (mid-chaos failures: {failed:?})"
    );
}

#[test]
fn node_kill_mid_replication_fails_over_to_the_caught_up_replica() {
    let seed = sweep_seed();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD0D0);
    let _clock = clock::install(0);
    let net = Network::new(CostModel::free());
    // Three copies per file over four nodes: after losing the primary
    // and one lagging replica there is still a caught-up copy.
    let client = fleet(&net, 4, 4, 3);

    let path = format!("/chaos/kill-{seed}.af");
    let v1 = vec![rng.gen_range(1u8..=127); 48];
    let v2 = vec![rng.gen_range(128u8..=255); 48];
    client.write(&path, 0, &v1).expect("warm write");
    let owners = client.owners(&path);
    assert_eq!(owners.len(), 3);

    // One replica (seeded choice) misses the next replication cast, and
    // the primary dies immediately after acknowledging — the classic
    // mid-replication kill.
    let laggard = owners[1 + rng.gen_range(0usize..2)].clone();
    net.plan(&laggard).expect("laggard plan").drop_next(1);
    client.write(&path, 0, &v2).expect("primary-acked write");
    assert_eq!(client.acked_seq(&path), 2);
    net.plan(&owners[0])
        .expect("primary plan")
        .set_partitioned(true);

    // The session's floor is seq 2; only the caught-up replica can
    // serve it. The laggard's seq-1 copy must never be returned.
    let bytes = client.read(&path, 0, v2.len()).expect("failover read");
    assert_eq!(bytes, v2, "read-your-writes across the kill");
    let snap = client.gauges().snapshot();
    assert!(snap.read_failovers >= 1, "{snap:?}");
    assert_eq!(
        snap.replication_failures, 1,
        "exactly the laggard's cast was lost: {snap:?}"
    );

    // Losing the caught-up replica too leaves only the laggard: the read
    // must reject after burning the staleness budget — stale bytes are
    // never an answer.
    let caught_up = owners
        .iter()
        .find(|o| **o != owners[0] && **o != laggard)
        .expect("three owners");
    net.plan(caught_up)
        .expect("caught-up plan")
        .set_partitioned(true);
    let err = client
        .read(&path, 0, v2.len())
        .expect_err("bounded staleness");
    assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
    assert!(client.gauges().snapshot().stale_rejects >= 1);

    // The primary comes back: its copy is at the session's floor, reads
    // settle immediately.
    net.plan(&owners[0]).expect("primary plan").clear();
    let bytes = client.read(&path, 0, v2.len()).expect("healed read");
    assert_eq!(bytes, v2);
}
