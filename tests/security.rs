//! Security semantics (§2.3): sentinels run under the opener's user id,
//! opening is gated on access to the passive parts, and the code-signing
//! extension refuses unsigned or tampered active parts.

use activefiles::prelude::*;
use activefiles::{SentinelCtx, SentinelLogic, SentinelResult};

const SIGNING_KEY: u64 = 0xDEAD_BEEF_CAFE_F00D;

fn signed_world() -> AfsWorld {
    let world = AfsWorld::builder().require_signed(SIGNING_KEY).build();
    register_standard_sentinels(&world);
    world
}

#[test]
fn unsigned_sentinel_refused_under_signing_policy() {
    let world = signed_world();
    world
        .install_active_file(
            "/u.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
        )
        .expect("install");
    let api = world.api();
    assert_eq!(
        api.create_file("/u.af", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::AccessDenied),
        "unsigned active part must not launch"
    );
}

#[test]
fn signed_sentinel_launches_and_tampering_revokes_it() {
    let world = signed_world();
    world
        .install_active_file(
            "/s.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
        )
        .expect("install");
    world.sign_active_file("/s.af", SIGNING_KEY).expect("sign");
    let api = world.api();
    let h = api
        .create_file("/s.af", Access::read_write(), Disposition::OpenExisting)
        .expect("signed file opens");
    api.write_file(h, b"ok").expect("write");
    api.close_handle(h).expect("close");

    // Swap the spec after signing — the "virus" scenario: the signature
    // no longer verifies and the sentinel is refused.
    world
        .install_active_file(
            "/s.af",
            &SentinelSpec::new("random", Strategy::DllOnly).with("seed", "666"),
        )
        .expect("tamper");
    assert_eq!(
        api.create_file("/s.af", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::AccessDenied)
    );
}

#[test]
fn signature_signed_with_wrong_key_is_refused() {
    let world = signed_world();
    world
        .install_active_file(
            "/w.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
        )
        .expect("install");
    world
        .sign_active_file("/w.af", SIGNING_KEY ^ 1)
        .expect("sign with wrong key");
    let api = world.api();
    assert_eq!(
        api.create_file("/w.af", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::AccessDenied)
    );
}

#[test]
fn worlds_without_the_policy_do_not_require_signatures() {
    let world = AfsWorld::new();
    world
        .install_active_file(
            "/free.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/free.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open without signature");
    api.close_handle(h).expect("close");
}

/// A sentinel that records who ran it.
struct WhoAmI;

impl SentinelLogic for WhoAmI {
    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let user = ctx.user().as_bytes();
        let start = (offset as usize).min(user.len());
        let n = buf.len().min(user.len() - start);
        buf[..n].copy_from_slice(&user[start..start + n]);
        Ok(n)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(activefiles::SentinelError::Unsupported)
    }
}

#[test]
fn sentinel_runs_under_the_openers_user_id() {
    // §2.3: the sentinel "launches a program under the user-id of the
    // application that opened the file".
    let world = AfsWorld::builder().user("eve@corp").build();
    world.sentinels().register("whoami", |_| Box::new(WhoAmI));
    world
        .install_active_file(
            "/id.af",
            &SentinelSpec::new("whoami", Strategy::ProcessControl),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/id.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 32];
    let n = api.read_file(h, &mut buf).expect("read");
    assert_eq!(&buf[..n], b"eve@corp");
    api.close_handle(h).expect("close");
}

#[test]
fn copying_a_signed_active_file_carries_the_signature() {
    // Streams travel with the file, so a copy of a signed active file is
    // still signed (same key, same spec bytes).
    let world = signed_world();
    world
        .install_active_file(
            "/a.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Disk),
        )
        .expect("install");
    world.sign_active_file("/a.af", SIGNING_KEY).expect("sign");
    let api = world.api();
    api.copy_file("/a.af", "/b.af").expect("copy");
    let h = api
        .create_file("/b.af", Access::read_only(), Disposition::OpenExisting)
        .expect("copy is signed too");
    api.close_handle(h).expect("close");
}
