//! Coverage of the remaining API surface against active files: flush,
//! file information, truncating dispositions, scatter/gather, locks, and
//! attribute queries — each pinned to the behaviour the runtime promises.

use activefiles::prelude::*;
use activefiles::{FileServer, Service};
use std::sync::Arc;

fn world() -> AfsWorld {
    let w = AfsWorld::new();
    register_standard_sentinels(&w);
    w
}

#[test]
fn flush_pushes_write_behind_state_out() {
    let w = world();
    let server = FileServer::new();
    server.seed("/doc", b"orig");
    w.net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    w.install_active_file(
        "/doc.af",
        &SentinelSpec::new("remote-file", Strategy::DllThread)
            .backing(Backing::Memory)
            .with("service", "files")
            .with("remote", "/doc"),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/doc.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file(h, b"edited!").expect("write");
    // Before flush the remote still has the original (write-behind).
    api.flush_file_buffers(h).expect("flush");
    let client = activefiles::FileClient::new(w.net().clone(), "files");
    assert_eq!(client.get_all("/doc").expect("get"), b"edited!");
    api.close_handle(h).expect("close");
}

#[test]
fn truncate_existing_clears_the_data_part_only() {
    let w = world();
    w.install_active_file(
        "/t.af",
        &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Disk),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/t.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file(h, b"old content").expect("write");
    api.close_handle(h).expect("close");
    let h = api
        .create_file("/t.af", Access::read_write(), Disposition::TruncateExisting)
        .expect("truncating open");
    assert_eq!(
        api.get_file_size(h).expect("size"),
        0,
        "data part truncated"
    );
    api.close_handle(h).expect("close");
    // The active part survived: the file still runs its sentinel.
    assert!(w.active_spec("/t.af").is_some());
}

#[test]
fn scatter_gather_work_on_seekable_active_files() {
    let w = world();
    w.install_active_file(
        "/sg.af",
        &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/sg.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file_gather(h, &[b"ab", b"cdef", b"g"])
        .expect("gather");
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    let mut a = [0u8; 3];
    let mut b = [0u8; 4];
    let n = api
        .read_file_scatter(h, &mut [&mut a[..], &mut b[..]])
        .expect("scatter");
    assert_eq!(n, 7);
    assert_eq!(&a, b"abc");
    assert_eq!(&b, b"defg");
    api.close_handle(h).expect("close");
}

#[test]
fn byte_range_locks_rejected_on_active_handles() {
    // Locking belongs to the sentinel's policy (§3's logging example
    // locks inside the sentinel); the raw API reports NotSupported.
    let w = world();
    w.install_active_file(
        "/l.af",
        &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/l.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    assert_eq!(api.lock_file(h, 0, 10, true), Err(Win32Error::NotSupported));
    assert_eq!(api.unlock_file(h, 0, 10), Err(Win32Error::NotSupported));
    api.close_handle(h).expect("close");
    // Passive files keep full locking through the same chain.
    let h = api
        .create_file("/p.txt", Access::read_write(), Disposition::CreateNew)
        .expect("create passive");
    api.write_file(h, b"0123456789").expect("write");
    api.lock_file(h, 0, 4, true).expect("lock passive");
    api.unlock_file(h, 0, 4).expect("unlock passive");
    api.close_handle(h).expect("close");
}

#[test]
fn file_information_reports_sentinel_backed_size() {
    let w = world();
    w.install_active_file(
        "/i.af",
        &SentinelSpec::new("sequence", Strategy::DllThread).with("count", "3"),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/i.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let info = api.get_file_information(h).expect("info");
    assert_eq!(info.size, 6, "0\\n1\\n2\\n as reported by the sentinel");
    api.close_handle(h).expect("close");
}

#[test]
fn set_end_of_file_is_not_supported_on_active_handles() {
    let w = world();
    w.install_active_file(
        "/e.af",
        &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/e.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    assert_eq!(api.set_end_of_file(h), Err(Win32Error::NotSupported));
    api.close_handle(h).expect("close");
}

#[test]
fn create_new_on_existing_active_file_fails() {
    let w = world();
    w.install_active_file(
        "/n.af",
        &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Memory),
    )
    .expect("install");
    let api = w.api();
    assert_eq!(
        api.create_file("/n.af", Access::read_write(), Disposition::CreateNew),
        Err(Win32Error::FileExists)
    );
}

#[test]
fn hidden_attribute_round_trips_through_listing() {
    let w = world();
    let api = w.api();
    api.create_directory("/d").expect("mkdir");
    let h = api
        .create_file("/d/h.txt", Access::read_write(), Disposition::CreateNew)
        .expect("create");
    api.close_handle(h).expect("close");
    w.vfs()
        .set_hidden(&"/d/h.txt".parse::<activefiles::VPath>().expect("p"), true)
        .expect("hide");
    let listing = api.find_files("/d").expect("list");
    assert_eq!(
        listing.len(),
        1,
        "hidden files are listed (filtering is caller policy)"
    );
    assert!(listing[0].attributes.hidden);
    assert!(api.get_file_attributes("/d/h.txt").expect("attrs").hidden);
}

#[test]
fn share_modes_flow_through_the_interception_chain() {
    use activefiles::ShareMode;
    let w = world();
    let api = w.api();
    let h = api
        .create_file("/excl.txt", Access::read_write(), Disposition::CreateNew)
        .expect("create");
    api.close_handle(h).expect("close");
    let h = api
        .create_file_shared(
            "/excl.txt",
            Access::read_write(),
            ShareMode::none(),
            Disposition::OpenExisting,
        )
        .expect("exclusive through the chain");
    assert_eq!(
        api.create_file("/excl.txt", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::SharingViolation),
        "the passive layer's sharing table is reached through interception"
    );
    api.close_handle(h).expect("close");
}

#[test]
fn active_files_permit_concurrent_opens_regardless_of_share_mode() {
    use activefiles::ShareMode;
    let w = world();
    w.install_active_file(
        "/multi.af",
        &SentinelSpec::new("shared-log", Strategy::DllOnly).backing(Backing::Disk),
    )
    .expect("install");
    let api = w.api();
    // §2.2: multiple opens mean multiple sentinels; share modes do not
    // gate active files (coordination is the sentinels' job).
    let a = api
        .create_file_shared(
            "/multi.af",
            Access::write_only(),
            ShareMode::none(),
            Disposition::OpenExisting,
        )
        .expect("first");
    let b = api
        .create_file_shared(
            "/multi.af",
            Access::write_only(),
            ShareMode::none(),
            Disposition::OpenExisting,
        )
        .expect("second despite exclusive request");
    api.close_handle(a).expect("close");
    api.close_handle(b).expect("close");
}
