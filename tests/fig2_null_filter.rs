//! Behavioural reproduction of Figure 2: the hand-written two-thread null
//! filter sentinel for the simple process strategy.
//!
//! Figure 2's sentinel has two `RWThrd` loops: one reads from the remote
//! source and forwards to both the cache and the application ("read from
//! remote source … WriteFile(hout) … WriteFile(hcache)"), the other reads
//! application writes and forwards them to the cache and the source
//! ("write to remote source").

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{FileServer, ProcessIo, RawProcessSentinel, Service};

/// The Figure 2 sentinel, translated line for line: two pump loops over
/// `stdin`/`stdout`, a remote source, and the local cache.
struct Fig2NullFilter;

impl RawProcessSentinel for Fig2NullFilter {
    fn run(&mut self, mut io: ProcessIo) {
        let service = io
            .ctx
            .require_str("service")
            .expect("service config")
            .to_owned();
        let remote = io
            .ctx
            .require_str("remote")
            .expect("remote config")
            .to_owned();
        let client = io.ctx.file_client(&service);

        // Thread 1 (dir == READ in the paper): remote -> cache + stdout.
        // Run inline first: pull the whole source through in 1 KiB chunks
        // exactly like the `char buf[1024]` loop.
        let mut offset = 0u64;
        while let Ok(chunk) = client.get(&remote, offset, 1024) {
            if chunk.is_empty() {
                break;
            }
            if io.ctx.cache().write_at(offset, &chunk).is_err() {
                break;
            }
            if io.stdout.write(&chunk).is_err() {
                break;
            }
            offset += chunk.len() as u64;
        }
        drop(io.stdout); // EOF for the application's reads

        // Thread 2 (dir == WRITE): stdin -> cache + remote.
        let mut buf = [0u8; 1024];
        let mut write_offset = offset;
        loop {
            match io.stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    if io.ctx.cache().write_at(write_offset, &buf[..n]).is_err() {
                        break;
                    }
                    let _ = client.put_async(&remote, write_offset, &buf[..n]);
                    write_offset += n as u64;
                }
            }
        }
    }
}

#[test]
fn figure2_sentinel_mirrors_remote_source_both_directions() {
    let world = AfsWorld::new();
    world
        .sentinels()
        .register_raw("fig2-null", |_| Box::new(Fig2NullFilter));

    let server = FileServer::new();
    server.seed("/src/data", b"bytes that live on a remote machine");
    world
        .net()
        .register("ftp", Arc::clone(&server) as Arc<dyn Service>);

    world
        .install_active_file(
            "/proxy.af",
            &SentinelSpec::new("fig2-null", Strategy::Process)
                .backing(Backing::Disk)
                .with("service", "ftp")
                .with("remote", "/src/data"),
        )
        .expect("install");

    let api = world.api();
    let h = api
        .create_file("/proxy.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");

    // Reads stream the remote content.
    let mut content = Vec::new();
    let mut buf = [0u8; 16];
    loop {
        let n = api.read_file(h, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        content.extend_from_slice(&buf[..n]);
    }
    assert_eq!(content, b"bytes that live on a remote machine");

    // Writes are appended and forwarded to the remote source.
    api.write_file(h, b" + local additions").expect("write");
    api.close_handle(h).expect("close");

    let client = activefiles::FileClient::new(world.net().clone(), "ftp");
    assert_eq!(
        client.get_all("/src/data").expect("remote read"),
        b"bytes that live on a remote machine + local additions"
    );

    // The cache (data part) holds the local copy, as Figure 2's hcache
    // writes require.
    let cached = world
        .vfs()
        .read_stream_to_end(&"/proxy.af".parse::<activefiles::VPath>().expect("path"))
        .expect("cache");
    assert_eq!(
        cached,
        b"bytes that live on a remote machine + local additions"
    );
}

#[test]
fn figure2_streaming_semantics_reject_seek_and_size() {
    let world = AfsWorld::new();
    world
        .sentinels()
        .register_raw("fig2-null", |_| Box::new(Fig2NullFilter));
    let server = FileServer::new();
    server.seed("/s", b"x");
    world
        .net()
        .register("ftp", Arc::clone(&server) as Arc<dyn Service>);
    world
        .install_active_file(
            "/p.af",
            &SentinelSpec::new("fig2-null", Strategy::Process)
                .backing(Backing::Disk)
                .with("service", "ftp")
                .with("remote", "/s"),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/p.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    assert_eq!(api.get_file_size(h), Err(Win32Error::CallNotImplemented));
    assert_eq!(
        api.set_file_pointer(h, 0, SeekMethod::Begin),
        Err(Win32Error::CallNotImplemented)
    );
    api.close_handle(h).expect("close");
}
