//! §7's comparisons, executable: what Ufo, Janus, and Watchdogs can and
//! cannot do next to active files.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{FileServer, Service};
use afs_related::{JanusLayer, JanusPolicy, UfoLayer, WatchdogLayer, WatchdogLog};

/// "In contrast to the hard-coded functionality of these approaches,
/// active files are completely programmable": under Ufo every mapped file
/// behaves the same; with active files two neighbouring files carry
/// different per-file behaviours.
#[test]
fn ufo_is_uniform_active_files_are_per_file() {
    // --- Ufo side: one layer, one behaviour for everything under /remote.
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let server = FileServer::new();
    server.seed("/pub/a.txt", b"alpha");
    server.seed("/pub/b.txt", b"beta");
    world
        .net()
        .register("nfs", Arc::clone(&server) as Arc<dyn Service>);
    world
        .connector()
        .install(Arc::new(UfoLayer::new(
            world.net().clone(),
            "nfs",
            "/remote",
            "/pub",
        )))
        .expect("install ufo");
    let api = world.api();
    for (path, expect) in [
        ("/remote/a.txt", &b"alpha"[..]),
        ("/remote/b.txt", &b"beta"[..]),
    ] {
        let h = api
            .create_file(path, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 8];
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..n], expect, "ufo fetches, identically for every file");
        api.close_handle(h).expect("close");
    }

    // --- Active files side: same two sources, *different* per-file
    // behaviour (one plain mirror, one uppercasing aggregate).
    world
        .install_active_file(
            "/af/a.af",
            &SentinelSpec::new("mirror", Strategy::DllOnly)
                .with("service", "nfs")
                .with("remote", "/pub/a.txt"),
        )
        .expect("a");
    world
        .install_active_file(
            "/af/b.af",
            &SentinelSpec::new("remote-file", Strategy::DllOnly)
                .backing(Backing::Memory)
                .with("service", "nfs")
                .with("remote", "/pub/b.txt")
                .with("writeback", "false"),
        )
        .expect("b");
    let read = |path: &str| {
        let h = api
            .create_file(path, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 8];
        let n = api.read_file(h, &mut buf).expect("read");
        api.close_handle(h).expect("close");
        buf[..n].to_vec()
    };
    assert_eq!(read("/af/a.af"), b"alpha");
    assert_eq!(read("/af/b.af"), b"beta");
    // The behaviours are independently *reprogrammable* per file — swap
    // one spec without touching the other.
    world
        .install_active_file(
            "/af/a.af",
            &SentinelSpec::new("sequence", Strategy::DllOnly).with("count", "2"),
        )
        .expect("reprogram a");
    assert_eq!(read("/af/a.af"), b"0\n1\n");
    assert_eq!(read("/af/b.af"), b"beta", "b is untouched");
}

/// "Unlike both these systems that implement process-centric control,
/// active files enable resource-centric control."
#[test]
fn janus_polices_the_process_active_files_police_the_resource() {
    // Janus: the policy follows the API (the process). A file reachable
    // under one sandbox is invisible under another — the file has no say.
    let base_world = AfsWorld::new();
    let api_setup = base_world.api();
    api_setup.create_directory("/data").expect("mkdir");
    let h = api_setup
        .create_file("/data/x", Access::read_write(), Disposition::CreateNew)
        .expect("create");
    api_setup.write_file(h, b"payload").expect("write");
    api_setup.close_handle(h).expect("close");
    base_world
        .connector()
        .install(Arc::new(JanusLayer::new(
            JanusPolicy::new().allow("/tmp", true, true),
        )))
        .expect("sandbox");
    let sandboxed = base_world.api();
    assert_eq!(
        sandboxed.create_file("/data/x", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::AccessDenied),
        "process-centric: this process may not read /data at all"
    );

    // Active files: the *file* carries the policy, and it applies to any
    // process (any user) by its own terms.
    let world = AfsWorld::builder().user("intern").build();
    world
        .install_active_file(
            "/hr/salaries.af",
            &SentinelSpec::new("null", Strategy::DllOnly)
                .backing(Backing::Memory)
                .with("allow_users", "cfo"),
        )
        .expect("install");
    let api = world.api();
    assert_eq!(
        api.create_file(
            "/hr/salaries.af",
            Access::read_only(),
            Disposition::OpenExisting
        ),
        Err(Win32Error::AccessDenied),
        "resource-centric: the file itself refuses this user"
    );
}

/// Watchdogs can observe everything but transform nothing; an active
/// file's sentinel does both with the same interposition point.
#[test]
fn watchdogs_observe_active_files_transform() {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let log = WatchdogLog::new();
    world
        .connector()
        .install(Arc::new(WatchdogLayer::new("/plain", log.clone())))
        .expect("watchdog");
    let api = world.api();
    api.create_directory("/plain").expect("mkdir");
    let h = api
        .create_file("/plain/f", Access::read_write(), Disposition::CreateNew)
        .expect("create");
    api.write_file(h, b"lowercase").expect("write");
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    let mut buf = [0u8; 9];
    api.read_file(h, &mut buf).expect("read");
    api.close_handle(h).expect("close");
    assert_eq!(
        &buf, b"lowercase",
        "watchdog saw it but could not change it"
    );
    assert!(log.len() >= 4, "…and it did see every operation");

    // The active file both observes (via its sentinel) and transforms.
    world
        .install_active_file(
            "/loud.af",
            &SentinelSpec::new("uppercase", Strategy::DllOnly).backing(Backing::Disk),
        )
        .expect("install");
    let h = api
        .create_file("/loud.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file(h, b"lowercase").expect("write");
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("read");
    assert_eq!(&buf, b"LOWERCASE");
    api.close_handle(h).expect("close");
}

/// Layers compose: a Janus sandbox *around* active files still lets the
/// sandboxed application use permitted active files — the approaches are
/// complementary, as §2.3 suggests for sandboxing.
#[test]
fn janus_and_active_files_compose() {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/tmp/ok.af",
            &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
        )
        .expect("allowed active file");
    world
        .install_active_file(
            "/secret/no.af",
            &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
        )
        .expect("forbidden active file");
    world
        .connector()
        .install(Arc::new(JanusLayer::new(
            JanusPolicy::new().allow("/tmp", true, true),
        )))
        .expect("sandbox on top");
    let api = world.api();
    let h = api
        .create_file(
            "/tmp/ok.af",
            Access::read_write(),
            Disposition::OpenExisting,
        )
        .expect("permitted active file works through the sandbox");
    api.write_file(h, b"x").expect("write");
    api.close_handle(h).expect("close");
    assert_eq!(
        api.create_file(
            "/secret/no.af",
            Access::read_only(),
            Disposition::OpenExisting
        ),
        Err(Win32Error::AccessDenied)
    );
}
