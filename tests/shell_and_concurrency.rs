//! End-to-end shell-script scenarios plus concurrency over shared active
//! handles and virtual-clock propagation through the full stack.

use activefiles::prelude::*;
use activefiles::shell::Shell;
use std::sync::Arc;

#[test]
fn shell_script_full_workflow() {
    let mut sh = Shell::new();
    let out = sh
        .run_script(
            "demo\n\
             mkdir /work\n\
             install /work/report.af merge control memory service=files remotes=/pub/motd,/pub/data.csv separator=---\\n\n\
             cat /work/report.af\n\
             install /work/notes.af compress dll disk\n\
             append /work/notes.af the quick brown fox\n\
             cat /work/notes.af\n\
             stat /work/notes.af\n",
        )
        .expect("script runs");
    assert!(out.contains("welcome to the active files demo"));
    assert!(out.contains("region,units"));
    assert!(out.contains("the quick brown fox"));
    assert!(out.contains("active: compress"));
}

#[test]
fn shell_copy_of_active_file_stays_active() {
    let mut sh = Shell::new();
    sh.run_script("install /a.af uppercase dll disk\nappend /a.af abc\ncp /a.af /b.af")
        .expect("script");
    assert_eq!(sh.run("cat /b.af").expect("cat"), "ABC");
    assert!(sh
        .run("stat /b.af")
        .expect("stat")
        .contains("active: uppercase"));
}

#[test]
fn concurrent_threads_share_one_active_handle_safely() {
    // The per-handle op lock must serialise concurrent callers over one
    // handle: every write lands fully, no reply/data desynchronisation.
    let world = Arc::new(AfsWorld::new());
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/shared.af",
            &SentinelSpec::new("shared-log", Strategy::ProcessControl).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file(
            "/shared.af",
            Access::read_write(),
            Disposition::OpenExisting,
        )
        .expect("open once");
    let mut threads = Vec::new();
    for t in 0..6u8 {
        let api = api.clone();
        threads.push(std::thread::spawn(move || {
            for i in 0..40 {
                let rec = format!("({t}:{i:02})");
                api.write_file(h, rec.as_bytes()).expect("write");
            }
        }));
    }
    for t in threads {
        t.join().expect("join");
    }
    // Ask the sentinel for the size — also drains/synchronises writes.
    let size = api.get_file_size(h).expect("size");
    assert_eq!(size, 6 * 40 * 6, "every 6-byte record landed exactly once");
    api.close_handle(h).expect("close");
    // Verify no torn records.
    let api = world.api();
    let h = api
        .create_file("/shared.af", Access::read_only(), Disposition::OpenExisting)
        .expect("reopen");
    let mut out = Vec::new();
    let mut buf = [0u8; 256];
    loop {
        let n = api.read_file(h, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h).expect("close");
    let text = String::from_utf8(out).expect("utf8");
    assert_eq!(text.matches('(').count(), 240);
    for record in text.split_inclusive(')') {
        assert!(
            record.len() == 6 && record.starts_with('(') && record.ends_with(')'),
            "torn record {record:?}"
        );
    }
}

#[test]
fn virtual_time_flows_through_open_use_close() {
    use activefiles::{clock, HardwareProfile};
    let world = AfsWorld::builder()
        .profile(HardwareProfile::pentium_ii_300())
        .build();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/t.af",
            &SentinelSpec::new("null", Strategy::ProcessControl).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    let _guard = clock::install(0);
    let h = api
        .create_file("/t.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let after_open = clock::now();
    api.write_file(h, &[7u8; 1024]).expect("write");
    let after_write = clock::now();
    assert!(after_write > after_open, "writes cost virtual time");
    let mut buf = [0u8; 1024];
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("read");
    let after_read = clock::now();
    // The read must include the sentinel's disk access (250 µs at least).
    assert!(
        after_read - after_write >= 250_000,
        "read must carry the sentinel's disk latency, got {} ns",
        after_read - after_write
    );
    api.close_handle(h).expect("close");
    assert!(
        clock::now() >= after_read,
        "close joins the sentinel's final clock"
    );
}

#[test]
fn many_sequential_opens_do_not_leak_sentinels() {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/cycle.af",
            &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
        )
        .expect("install");
    let api = world.api();
    for i in 0..200 {
        let h = api
            .create_file("/cycle.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        api.write_file(h, format!("{i}").as_bytes()).expect("write");
        api.close_handle(h).expect("close");
    }
    assert_eq!(world.open_sentinel_count(), 0, "every sentinel reaped");
}

#[test]
fn bundled_demo_script_runs_clean() {
    let script = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scripts/demo.afsh"),
    )
    .expect("demo script present");
    let mut sh = Shell::new();
    let out = sh
        .run_script(&script)
        .expect("demo script runs without error");
    assert!(out.contains("welcome to the active files demo"));
    assert!(out.contains("active: compress"));
}
