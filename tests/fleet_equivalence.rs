//! Worker-count equivalence: the sharded sentinel executor schedules
//! *real* threads, but every cost is charged on *virtual* clocks — so the
//! transcript of a workload must be bit-identical whether the pool has
//! one worker or many. This is the refactor's core safety claim: moving
//! sentinels from dedicated threads onto a bounded pool moved the
//! scheduling, not the semantics or the charging.
//!
//! For each of the four §4 strategies the same workload runs on a
//! one-worker world and a four-worker world; the test compares the
//! [`OpTrace`] summaries — operation counts, payload bytes, *total
//! virtual nanoseconds*, and crossings — for exact equality.
//!
//! Two fields are deliberately outside the claim, because they were racy
//! *before* the refactor too (dedicated sentinel threads interleave with
//! the application exactly as pool workers do):
//!
//! - **copies** — per-op copy counts are attributed by sampling the cost
//!   model's global counters around each call, so a sentinel-side copy
//!   that completes after the reply (staged flushes, read-ahead) lands in
//!   whichever op's window happens to be open;
//! - **§4.1 latencies** — the simple-process strategy streams through
//!   pipes with no per-op handshake, so nothing synchronises the virtual
//!   clocks; only its operation counts and payload bytes are stable.
//!
//! [`OpTrace`]: activefiles::OpTrace

use activefiles::prelude::*;
use activefiles::{clock, Access, Disposition, HardwareProfile, OpKind, OpSummary, SeekMethod};

/// A fixed mixed workload against one handle: writes, rewinds, reads,
/// and an interior seek, sized so every op kind lands in the trace.
fn run_workload(world: &AfsWorld, streaming: bool) -> Vec<OpSummary> {
    let api = world.api();
    let _guard = clock::install(0);
    let h = api
        .create_file("/eq.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    for round in 0..10u8 {
        let data = vec![round; 16 + round as usize];
        assert_eq!(api.write_file(h, &data).expect("write"), data.len());
        if !streaming {
            // §4.1 streams have no pointer; every other strategy rewinds
            // and reads its bytes back.
            api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
            let mut buf = vec![0u8; data.len()];
            assert_eq!(api.read_file(h, &mut buf).expect("read"), buf.len());
            assert_eq!(buf, data, "null sentinel echoes the bytes");
            api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        }
    }
    api.close_handle(h).expect("close");
    world.trace().summary()
}

fn transcript(strategy: Strategy, workers: usize) -> Vec<OpSummary> {
    let world = AfsWorld::builder()
        .profile(HardwareProfile::pentium_ii_300())
        .fleet_workers(workers)
        .build();
    activefiles::register_standard_sentinels(&world);
    world
        .install_active_file(
            "/eq.af",
            &SentinelSpec::new("null", strategy).backing(Backing::Memory),
        )
        .expect("install");
    run_workload(&world, strategy == Strategy::Process)
}

/// The deterministic projection of one transcript row (see the module
/// docs for why `copies` is excluded, and why §4.1 also drops times).
#[derive(Debug, PartialEq, Eq)]
struct Row {
    strategy: &'static str,
    op: OpKind,
    count: u64,
    bytes: u64,
    elapsed_ns: Option<u64>,
    crossings: Option<u64>,
}

fn project(summary: Vec<OpSummary>, streaming: bool) -> Vec<Row> {
    summary
        .into_iter()
        .map(|row| Row {
            strategy: row.strategy,
            op: row.op,
            count: row.count,
            bytes: row.bytes,
            elapsed_ns: (!streaming).then_some(row.elapsed_ns),
            crossings: (!streaming).then_some(row.crossings),
        })
        .collect()
}

fn assert_worker_count_invariant(strategy: Strategy) {
    let streaming = strategy == Strategy::Process;
    let one = project(transcript(strategy, 1), streaming);
    let four = project(transcript(strategy, 4), streaming);
    assert!(!one.is_empty(), "{strategy:?}: workload left a transcript");
    assert_eq!(
        one, four,
        "{strategy:?}: transcript (counts, bytes, virtual time, crossings) \
         must not depend on the worker count"
    );
}

#[test]
fn simple_process_transcript_is_worker_count_invariant() {
    assert_worker_count_invariant(Strategy::Process);
}

#[test]
fn process_control_transcript_is_worker_count_invariant() {
    assert_worker_count_invariant(Strategy::ProcessControl);
}

#[test]
fn dll_thread_transcript_is_worker_count_invariant() {
    assert_worker_count_invariant(Strategy::DllThread);
}

#[test]
fn dll_only_transcript_is_worker_count_invariant() {
    assert_worker_count_invariant(Strategy::DllOnly);
}
