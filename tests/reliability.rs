//! Fault tolerance on the remote path: retries, backoff, replica
//! failover, circuit breaking, and degraded (stale-cache) operation —
//! all observed through the plain Win32-shaped file API an unmodified
//! application uses, and all deterministic under the world's seeded
//! fault streams and virtual clocks.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{
    clock, prometheus_text, BreakerConfig, CostModel, FileClient, FileServer, NetError, Network,
    ReliabilityPolicy, RetryPolicy, Service, CTL_QUERY_STALE,
};

const BODY: &[u8] = b"remote data bytes";

/// A world with a seeded `files` server and a policy-bearing mirror
/// active file at `/m.af`; extra spec keys come from `keys`.
fn reliable_world(keys: &[(&str, &str)]) -> (AfsWorld, Arc<FileServer>) {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let server = FileServer::new();
    server.seed("/blob", BODY);
    world
        .net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    let mut spec = SentinelSpec::new("mirror", Strategy::DllOnly)
        .backing(Backing::Memory)
        .with("service", "files")
        .with("remote", "/blob");
    for (k, v) in keys {
        spec = spec.with(k, v);
    }
    world.install_active_file("/m.af", &spec).expect("install");
    (world, server)
}

#[test]
fn flaky_remote_heals_invisibly_behind_retries() {
    let (world, _server) = reliable_world(&[("retry", "4")]);
    let plan = world.net().plan("files").expect("plan");
    plan.flaky(2); // two Partitioned failures, then healthy
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    assert_eq!(api.read_file(h, &mut buf).expect("read"), BODY.len());
    assert_eq!(&buf[..], BODY, "the application never saw the failures");
    api.close_handle(h).expect("close");
    assert_eq!(
        world.net().reliability().retries,
        2,
        "one backoff wait per flaky failure"
    );
}

#[test]
fn partition_window_heals_within_the_retry_deadline() {
    // The acceptance scenario: a scheduled partition strictly shorter
    // than the retry deadline must be invisible to the legacy
    // application, because backoff consumes virtual time and the window
    // expires while the transport waits.
    let (world, _server) = reliable_world(&[("retry", "8")]);
    let plan = world.net().plan("files").expect("plan");
    let _g = clock::install(0);
    plan.partition_window(0, 2_000_000); // down for the first 2 ms
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    assert_eq!(api.read_file(h, &mut buf).expect("read"), BODY.len());
    assert_eq!(&buf[..], BODY);
    api.close_handle(h).expect("close");
    let rel = world.net().reliability();
    assert!(rel.retries > 0, "the partition was ridden out: {rel:?}");
    assert!(
        clock::now() >= 2_000_000,
        "backoff advanced virtual time past the window"
    );
}

#[test]
fn retry_exhaustion_surfaces_a_network_error() {
    let (world, _server) = reliable_world(&[("retry", "3")]);
    let plan = world.net().plan("files").expect("plan");
    plan.set_partitioned(true); // never heals
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open succeeds — no remote traffic yet");
    let mut buf = [0u8; 8];
    assert_eq!(
        api.read_file(h, &mut buf),
        Err(Win32Error::NetworkError),
        "after the attempts run out the original error surfaces"
    );
    assert_eq!(
        world.net().reliability().retries,
        2,
        "three attempts mean two waits"
    );
    plan.set_partitioned(false);
    api.read_file(h, &mut buf).expect("heals after the fact");
    api.close_handle(h).expect("close");
}

#[test]
fn failover_prefers_the_first_healthy_replica() {
    let (world, _primary) = reliable_world(&[("retry", "1"), ("replicas", "files-a,files-b")]);
    let replica_a = FileServer::new();
    replica_a.seed("/blob", b"replica A body !!");
    let replica_b = FileServer::new();
    replica_b.seed("/blob", b"replica B body !!");
    world
        .net()
        .register("files-a", replica_a as Arc<dyn Service>);
    world
        .net()
        .register("files-b", replica_b as Arc<dyn Service>);
    world
        .net()
        .plan("files")
        .expect("plan")
        .set_partitioned(true);
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    api.read_file(h, &mut buf).expect("read fails over");
    assert_eq!(&buf[..], b"replica A body !!", "first healthy replica wins");
    assert!(world.net().reliability().failovers >= 1);

    // With the first replica also down, the second serves.
    world
        .net()
        .plan("files-a")
        .expect("plan")
        .set_partitioned(true);
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("read fails over again");
    assert_eq!(&buf[..], b"replica B body !!");
    api.close_handle(h).expect("close");
}

#[test]
fn breaker_trips_open_then_recovers_through_half_open() {
    let net = Network::new(CostModel::free());
    let server = FileServer::new();
    server.seed("/blob", BODY);
    let plan = net.register("files", server as Arc<dyn Service>);
    let reliable = net.with_policy(ReliabilityPolicy {
        retry: RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        replicas: Vec::new(),
        breaker: Some(BreakerConfig {
            threshold: 3,
            cooldown_ns: 1_000_000,
        }),
    });
    let client = FileClient::new(reliable.clone(), "files");
    let _g = clock::install(0);

    plan.set_partitioned(true);
    for _ in 0..3 {
        assert!(matches!(
            client.stat("/blob"),
            Err(NetError::Partitioned(_))
        ));
    }
    assert_eq!(net.reliability().breaker_trips, 1);
    assert_eq!(net.breaker_states(), vec![("files".to_owned(), "open")]);

    // While open, calls are rejected locally — the partitioned service
    // is never even consulted.
    assert!(matches!(
        client.stat("/blob"),
        Err(NetError::CircuitOpen(_))
    ));
    assert_eq!(net.reliability().breaker_rejections, 1);

    // After the cooldown one probe goes through; its success closes the
    // breaker for good.
    plan.set_partitioned(false);
    clock::advance(2_000_000);
    client.stat("/blob").expect("half-open probe succeeds");
    assert_eq!(net.breaker_states(), vec![("files".to_owned(), "closed")]);
    client.stat("/blob").expect("closed again");
}

#[test]
fn degraded_reads_serve_stale_cache_and_flag_it() {
    let (world, _server) = reliable_world(&[("degraded", "true")]);
    let plan = world.net().plan("files").expect("plan");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    api.read_file(h, &mut buf)
        .expect("warm the last-good cache");
    assert_eq!(&buf[..], BODY);
    assert_eq!(
        api.device_io_control(h, CTL_QUERY_STALE, &[]).expect("ctl"),
        vec![0u8],
        "fresh while the remote answers"
    );

    plan.set_partitioned(true);
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    let mut stale_buf = [0u8; 17];
    api.read_file(h, &mut stale_buf)
        .expect("degraded read keeps the application running");
    assert_eq!(&stale_buf[..], BODY, "last-good bytes");
    assert_eq!(
        api.device_io_control(h, CTL_QUERY_STALE, &[]).expect("ctl"),
        vec![1u8],
        "stale is visible to anyone who asks"
    );
    assert!(world.net().reliability().degraded_reads >= 1);

    // Healing makes the next read fresh again.
    plan.set_partitioned(false);
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("fresh read");
    assert_eq!(
        api.device_io_control(h, CTL_QUERY_STALE, &[]).expect("ctl"),
        vec![0u8]
    );
    api.close_handle(h).expect("close");
}

#[test]
fn queued_writes_replay_in_order_on_heal() {
    let (world, _server) = reliable_world(&[("degraded", "true")]);
    let plan = world.net().plan("files").expect("plan");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    api.read_file(h, &mut buf).expect("warm the cache");

    plan.set_partitioned(true);
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.write_file(h, b"EDIT").expect("accepted while down");
    assert!(world.net().reliability().queued_writes >= 1);
    // The local view already reflects the queued write.
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("degraded read-back");
    assert_eq!(&buf[..4], b"EDIT");
    assert_eq!(
        api.device_io_control(h, CTL_QUERY_STALE, &[]).expect("ctl"),
        vec![1u8]
    );

    // Heal; the next operation replays the queue before running.
    plan.set_partitioned(false);
    api.get_file_size(h).expect("post-heal op");
    assert!(world.net().reliability().replayed_writes >= 1);
    assert_eq!(
        api.device_io_control(h, CTL_QUERY_STALE, &[]).expect("ctl"),
        vec![0u8],
        "drained queue clears the stale flag"
    );
    api.close_handle(h).expect("close");
    // The remote caught up with the write made while it was down.
    let check = FileClient::new(world.net().clone(), "files");
    assert_eq!(check.get("/blob", 0, 4).expect("remote read"), b"EDIT");
}

#[test]
fn reliability_counters_reach_the_prometheus_export() {
    let (world, _server) = reliable_world(&[("retry", "4")]);
    world.net().plan("files").expect("plan").flaky(2);
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 8];
    api.read_file(h, &mut buf).expect("read through retries");
    api.close_handle(h).expect("close");
    let prom = prometheus_text(&world.metrics().snapshot());
    for metric in [
        "afs_retries_total",
        "afs_failovers_total",
        "afs_breaker_trips_total",
        "afs_breaker_rejections_total",
        "afs_degraded_reads_total",
        "afs_queued_writes_total",
        "afs_replayed_writes_total",
        "afs_net_dropped_total",
    ] {
        assert!(prom.contains(metric), "{metric} missing from:\n{prom}");
    }
    assert!(
        prom.contains("afs_retries_total 2"),
        "retries counted in the export:\n{prom}"
    );
}

#[test]
fn halfopen_window_admits_exactly_one_concurrent_probe() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Barrier, Condvar, Mutex};

    // A service that counts the calls reaching it and holds each one open
    // until released, so the half-open probe is verifiably *in flight*
    // while the rest of the herd races the breaker.
    struct Gate {
        calls: AtomicU64,
        held: Mutex<bool>,
        cv: Condvar,
    }
    impl Gate {
        fn release(&self) {
            *self.held.lock().expect("lock") = false;
            self.cv.notify_all();
        }
    }
    impl Service for Gate {
        fn handle(&self, _request: &[u8]) -> Result<Vec<u8>, NetError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            let mut held = self.held.lock().expect("lock");
            while *held {
                held = self.cv.wait(held).expect("wait");
            }
            Ok(Vec::new())
        }
    }

    let net = Network::new(CostModel::free());
    let gate = Arc::new(Gate {
        calls: AtomicU64::new(0),
        held: Mutex::new(true),
        cv: Condvar::new(),
    });
    let plan = net.register("svc", Arc::clone(&gate) as Arc<dyn Service>);
    let reliable = net.with_policy(ReliabilityPolicy {
        retry: RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        },
        replicas: Vec::new(),
        breaker: Some(BreakerConfig {
            threshold: 1,
            cooldown_ns: 1_000,
        }),
    });

    // Trip the breaker; the partitioned call never reaches the service.
    let _g = clock::install(0);
    plan.set_partitioned(true);
    assert!(reliable.rpc("svc", b"x").is_err());
    plan.set_partitioned(false);

    // Seeded herd size so the CI sweep varies the contention shape.
    let seed: u64 = std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let herd = 4 + (seed % 5) as usize;

    let rejections_before = net.reliability().breaker_rejections;
    let barrier = Arc::new(Barrier::new(herd + 1));
    let mut joins = Vec::new();
    for _ in 0..herd {
        let reliable = reliable.clone();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            // Each caller's virtual clock sits past the cooldown, so every
            // one of them is racing for the half-open window.
            let _g = clock::install(2_000);
            barrier.wait();
            reliable.rpc("svc", b"x")
        }));
    }
    barrier.wait();

    // Exactly one caller wins the probe slot and blocks inside the
    // service; everyone else must be refused locally while it is out.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while net.reliability().breaker_rejections - rejections_before < herd as u64 - 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "herd never finished racing the half-open window"
        );
        std::thread::yield_now();
    }
    assert_eq!(
        gate.calls.load(Ordering::SeqCst),
        1,
        "exactly one RPC reached the recovering service"
    );
    gate.release();

    let results: Vec<_> = joins.into_iter().map(|j| j.join().expect("join")).collect();
    assert_eq!(
        results.iter().filter(|r| r.is_ok()).count(),
        1,
        "one probe succeeded"
    );
    assert_eq!(
        results
            .iter()
            .filter(|r| matches!(r, Err(NetError::CircuitOpen(_))))
            .count(),
        herd - 1,
        "the rest were refused without touching the wire"
    );
    // The successful probe closed the breaker for everyone.
    assert_eq!(net.breaker_states(), vec![("svc".to_owned(), "closed")]);
    reliable.rpc("svc", b"x").expect("closed after the probe");
    assert_eq!(gate.calls.load(Ordering::SeqCst), 2);
}

#[test]
fn seeded_worlds_reproduce_their_fault_streams() {
    // The seed-sweep CI job runs the suite under AFS_TEST_SEED; this
    // checks the property the sweep relies on — same seed, same losses.
    let observe = |seed: u64| {
        let net = Network::new(CostModel::free());
        let server = FileServer::new();
        server.seed("/blob", BODY);
        let plan = net.register("files", server as Arc<dyn Service>);
        net.set_seed(seed);
        plan.loss_ppm(400_000); // 40% loss
        let client = FileClient::new(net.clone(), "files");
        (0..32)
            .map(|_| u8::from(client.stat("/blob").is_ok()))
            .collect::<Vec<u8>>()
    };
    assert_eq!(observe(7), observe(7), "deterministic for equal seeds");
    assert_ne!(
        observe(7),
        observe(8),
        "different seeds draw different streams"
    );
}
