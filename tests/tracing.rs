//! Distributed causal tracing: one trace id covers the whole
//! interposition chain — interpose > strategy > backend > net RPC —
//! including retries, backoff waits, circuit-breaker rejections, and
//! replica failovers as annotated child spans; a breaker trip freezes the
//! in-flight trace into a flight-recorder bundle; and none of it charges
//! the §4 cost model or consumes virtual time.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{clock, prometheus_text, FileServer, Layer, Service, SpanRecord};

const REPLICA_BODY: &[u8] = b"replica B body !!";

/// A world with a partitionable `files` primary, a `files-b` replica, and
/// a mirror active file whose policy makes the acceptance schedule
/// deterministic for *any* backoff jitter: three rounds, 1 ms base
/// backoff, threshold-1 breaker with a 2 ms cooldown. Failed partitioned
/// calls charge nothing, so round 2 lands inside the cooldown (wait1 <=
/// 1.5 ms) and round 3 past it (wait1 + wait2 >= 3 ms).
fn failover_world() -> AfsWorld {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let primary = FileServer::new();
    primary.seed("/blob", b"primary body ----");
    world.net().register("files", primary as Arc<dyn Service>);
    let replica = FileServer::new();
    replica.seed("/blob", REPLICA_BODY);
    world.net().register("files-b", replica as Arc<dyn Service>);
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::DllOnly)
                .backing(Backing::Memory)
                .with("service", "files")
                .with("remote", "/blob")
                .with("retry", "3")
                .with("retry.backoff_us", "1000")
                .with("replicas", "files-b")
                .with("breaker.threshold", "1")
                .with("breaker.cooldown_us", "2000"),
        )
        .expect("install");
    world
}

/// Schedules the acceptance faults: the primary is hard-partitioned and
/// the replica fails exactly once, so round 1 trips both breakers, round
/// 2 is rejected by both (inside the cooldown), and round 3 half-opens
/// them — the primary's probe re-trips while the replica's succeeds.
fn schedule_faults(world: &AfsWorld) {
    world
        .net()
        .plan("files")
        .expect("primary plan")
        .set_partitioned(true);
    world.net().plan("files-b").expect("replica plan").flaky(1);
}

#[test]
fn failover_read_yields_one_contiguous_causal_trace() {
    let world = failover_world();
    let _g = clock::install(0);
    schedule_faults(&world);
    world.telemetry().set_enabled(true);
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    assert_eq!(api.read_file(h, &mut buf).expect("read fails over"), 17);
    assert_eq!(&buf[..], REPLICA_BODY, "the replica served the read");
    api.close_handle(h).expect("close");

    let spans = world.telemetry().spans();
    let root = spans
        .iter()
        .find(|s| s.name == "ReadFile" && s.parent == 0)
        .expect("interpose root span");
    assert_eq!(root.trace, root.id, "a root starts its own trace");
    let trace: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace == root.trace).collect();
    assert!(
        trace.len() >= 4,
        "the trace is more than the root: {trace:#?}"
    );
    // Contiguity: every non-root member is parent-linked into the set.
    for s in &trace {
        if s.id == root.id {
            continue;
        }
        assert!(
            trace.iter().any(|p| p.id == s.parent),
            "span {}#{} dangles outside the causal chain",
            s.name,
            s.id
        );
    }
    let layers: BTreeSet<&str> = trace.iter().map(|s| s.layer.label()).collect();
    for required in ["interpose", "strategy", "backend", "retry"] {
        assert!(
            layers.contains(required),
            "trace layers {layers:?} missing {required}"
        );
    }
    let has = |name: &str, note: &str| trace.iter().any(|s| s.name == name && s.note == note);
    assert!(
        has("breaker-reject", "cause=breaker_open"),
        "round 2's local refusals are annotated rejection spans: {trace:#?}"
    );
    assert!(
        has("failover", "cause=failover replica=files-b"),
        "the replica win is an annotated failover span: {trace:#?}"
    );
    assert!(
        has("retry", "cause=backoff"),
        "backoff waits are annotated child spans: {trace:#?}"
    );

    // The round-1 trip froze the in-flight op into a post-mortem bundle.
    let bundles = world.telemetry().flight().bundles();
    let bundle = bundles
        .iter()
        .find(|b| b.cause == "breaker_open")
        .expect("breaker trip dumped a flight bundle");
    assert!(
        bundle.detail.contains("service=files"),
        "the trigger names the tripped service: {}",
        bundle.detail
    );
    assert!(
        bundle.open.iter().any(|p| p.trace == root.trace),
        "the failing op's trace is frozen mid-flight in the bundle: {bundle:#?}"
    );
}

#[test]
fn trace_annotations_charge_nothing_to_the_cost_model() {
    // The whole observability layer — spans, notes, flight bundles, SLO
    // windows — must be free in §4 terms: bit-identical cost-model
    // charges and virtual-clock advance whether telemetry is on or off.
    let run = |telemetry_on: bool| {
        let world = failover_world();
        let _g = clock::install(0);
        schedule_faults(&world);
        world.telemetry().set_enabled(telemetry_on);
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 17];
        api.read_file(h, &mut buf).expect("read");
        api.close_handle(h).expect("close");
        (world.model().snapshot(), clock::now())
    };
    let (charges_on, clock_on) = run(true);
    let (charges_off, clock_off) = run(false);
    assert_eq!(
        charges_on, charges_off,
        "tracing added cost-model charges the silent run never saw"
    );
    assert_eq!(clock_on, clock_off, "tracing consumed virtual time");
}

#[test]
fn stolen_tasks_reparent_sentinel_spans_to_the_originating_op() {
    // A two-worker pool under eight files and four threads steals tasks
    // between shards; a migrated `DispatchTask` must still parent its
    // sentinel-side spans to the originating op's strategy span (via the
    // session's scope cell), never to whatever frame the stealing worker
    // happens to have open.
    const FILES: usize = 8;
    const THREADS: usize = 4;
    let world = Arc::new(AfsWorld::builder().fleet_workers(2).build());
    register_standard_sentinels(&world);
    for idx in 0..FILES {
        let strategy = if idx % 2 == 0 {
            Strategy::DllThread
        } else {
            Strategy::ProcessControl
        };
        world
            .install_active_file(
                &format!("/steal/f{idx}.af"),
                &SentinelSpec::new("null", strategy).backing(Backing::Memory),
            )
            .expect("install");
    }
    world.telemetry().set_enabled(true);

    let mut rounds = 0;
    while world.telemetry().fleet().snapshot().steals == 0 && rounds < 50 {
        rounds += 1;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let world = Arc::clone(&world);
                scope.spawn(move || {
                    let _g = clock::install(0);
                    let api = world.api();
                    for idx in 0..FILES {
                        let path = format!("/steal/f{idx}.af");
                        let h = api
                            .create_file(&path, Access::read_write(), Disposition::OpenExisting)
                            .expect("open");
                        let mut buf = [0u8; 4];
                        for _ in 0..5 {
                            api.write_file(h, b"spin").expect("write");
                            api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                            api.read_file(h, &mut buf).expect("read");
                        }
                        api.close_handle(h).expect("close");
                    }
                });
            }
        });
    }
    assert!(
        world.telemetry().fleet().snapshot().steals > 0,
        "the two-worker pool never stole a task in {rounds} rounds"
    );

    let spans = world.telemetry().spans();
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut checked = 0u64;
    for s in spans
        .iter()
        .filter(|s| s.layer == Layer::Sentinel && s.parent != 0)
    {
        let Some(parent) = by_id.get(&s.parent) else {
            continue; // evicted from the bounded span ring
        };
        checked += 1;
        assert_eq!(
            parent.layer,
            Layer::Strategy,
            "sentinel span {}#{} parents to a {} span, not its op's strategy span",
            s.name,
            s.id,
            parent.layer.label()
        );
        assert_eq!(
            parent.trace, s.trace,
            "sentinel span {}#{} lost its originating trace",
            s.name, s.id
        );
    }
    assert!(checked > 0, "no sentinel spans survived to check");
    world.quiesce();
}

#[test]
fn slo_spec_keys_validate_and_export_burn_rates() {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/bad.af",
            &SentinelSpec::new("null", Strategy::DllThread)
                .backing(Backing::Memory)
                .with("slo_p99_us", "fast"),
        )
        .expect("install is lazy about SLO values");
    let api = world.api();
    assert!(
        matches!(
            api.create_file("/bad.af", Access::read_only(), Disposition::OpenExisting),
            Err(Win32Error::InvalidParameter)
        ),
        "a malformed SLO key is rejected at open, not silently ignored"
    );

    world
        .install_active_file(
            "/slo.af",
            &SentinelSpec::new("null", Strategy::DllThread)
                .backing(Backing::Memory)
                .with("slo_p99_us", "500")
                .with("slo_err_ppm", "1000"),
        )
        .expect("install");
    world.telemetry().set_enabled(true);
    let h = api
        .create_file("/slo.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file(h, b"slo payload").expect("write");
    let mut buf = [0u8; 4];
    for _ in 0..12 {
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        api.read_file(h, &mut buf).expect("read");
    }
    api.close_handle(h).expect("close");

    let snap = world
        .telemetry()
        .slo_trackers()
        .iter()
        .map(|t| t.snapshot())
        .find(|s| s.file == "/slo.af")
        .expect("declaring slo_* keys registers a tracker at open");
    assert_eq!(snap.sentinel, "null");
    assert_eq!(snap.spec.p99_ns, Some(500_000), "microseconds scale to ns");
    assert_eq!(snap.spec.err_ppm, Some(1_000));
    assert!(
        snap.ops >= 12,
        "every traced op feeds the window: {}",
        snap.ops
    );
    assert_eq!(snap.errors, 0);

    let prom = prometheus_text(&world.metrics().snapshot());
    for metric in [
        "afs_slo_ops_total{",
        "afs_slo_latency_target_ns{",
        "afs_slo_error_budget_ppm{",
        "afs_slo_latency_burn_milli{",
        "afs_slo_error_burn_milli{",
        "afs_sentinel_ops_total{",
        "afs_sentinel_queue_depth_peak{",
    ] {
        assert!(prom.contains(metric), "{metric} missing from:\n{prom}");
    }
    assert!(
        prom.contains("file=\"/slo.af\""),
        "SLO series are labelled by file:\n{prom}"
    );
}
