//! Failure injection: how sentinel-mediated remote failures surface
//! through the plain file API, and how the system behaves across
//! partitions and message loss.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{FileServer, Service};

fn world_with_server() -> (AfsWorld, Arc<FileServer>, activefiles::Network) {
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let server = FileServer::new();
    server.seed("/blob", b"remote data bytes");
    world
        .net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    let net = world.net().clone();
    (world, server, net)
}

#[test]
fn partition_during_open_fails_create_file() {
    let (world, _server, net) = world_with_server();
    let plan = net.plan("files").expect("plan for registered service");
    world
        .install_active_file(
            "/r.af",
            &SentinelSpec::new("remote-file", Strategy::DllOnly)
                .backing(Backing::Memory)
                .with("service", "files")
                .with("remote", "/blob"),
        )
        .expect("install");
    plan.set_partitioned(true);
    let api = world.api();
    assert_eq!(
        api.create_file("/r.af", Access::read_only(), Disposition::OpenExisting),
        Err(Win32Error::NetworkError),
        "the on-open fetch hits the partition"
    );
    // Healing the partition makes the same open succeed.
    plan.set_partitioned(false);
    let h = api
        .create_file("/r.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open after heal");
    api.close_handle(h).expect("close");
}

#[test]
fn partition_mid_stream_fails_reads_with_network_error() {
    let (world, _server, net) = world_with_server();
    let plan = net.plan("files").expect("plan for registered service");
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::DllOnly)
                .with("service", "files")
                .with("remote", "/blob"),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 6];
    api.read_file(h, &mut buf).expect("first read works");
    plan.set_partitioned(true);
    assert_eq!(api.read_file(h, &mut buf), Err(Win32Error::NetworkError));
    plan.set_partitioned(false);
    api.read_file(h, &mut buf).expect("read works after heal");
    api.close_handle(h).expect("close");
}

#[test]
fn partition_mid_stream_under_control_strategy() {
    // Same failure, but the error must travel sentinel → control reply →
    // application across the process boundary.
    let (world, _server, net) = world_with_server();
    let plan = net.plan("files").expect("plan for registered service");
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::ProcessControl)
                .with("service", "files")
                .with("remote", "/blob"),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    plan.set_partitioned(true);
    let mut buf = [0u8; 4];
    assert_eq!(api.read_file(h, &mut buf), Err(Win32Error::NetworkError));
    plan.set_partitioned(false);
    api.read_file(h, &mut buf).expect("recovers");
    api.close_handle(h).expect("close");
}

#[test]
fn dropped_write_surfaces_as_sticky_error_on_later_operation() {
    // Writes are issued without waiting (§6): a failed remote update
    // cannot fail the WriteFile that caused it, but it must not vanish —
    // the next synchronous operation reports it.
    let (world, _server, net) = world_with_server();
    let plan = net.plan("files").expect("plan for registered service");
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::ProcessControl)
                .with("service", "files")
                .with("remote", "/blob"),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    plan.drop_next(1);
    api.write_file(h, b"lost")
        .expect("async write returns success");
    // The failure parks in the sentinel and surfaces on the next op.
    let result = api.get_file_size(h);
    assert_eq!(
        result,
        Err(Win32Error::NetworkError),
        "sticky error surfaces"
    );
    // After surfacing once the handle is usable again.
    api.get_file_size(h).expect("recovered");
    api.close_handle(h).expect("close");
}

#[test]
fn message_loss_counts_are_observable() {
    let (world, _server, net) = world_with_server();
    let plan = net.plan("files").expect("plan for registered service");
    plan.drop_next(3);
    let client = activefiles::FileClient::new(net.clone(), "files");
    for _ in 0..3 {
        assert!(client.stat("/blob").is_err());
    }
    assert!(client.stat("/blob").is_ok());
    assert_eq!(net.stats().dropped, 3);
    let _ = world;
}

#[test]
fn sentinel_survives_application_misuse() {
    // Double close, reads after close, writes to read-only handles: the
    // runtime must return errors, never hang or poison the world.
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/n.af",
            &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/n.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    assert_eq!(api.write_file(h, b"x"), Err(Win32Error::AccessDenied));
    api.close_handle(h).expect("close");
    assert_eq!(api.close_handle(h), Err(Win32Error::InvalidHandle));
    let mut buf = [0u8; 1];
    assert_eq!(api.read_file(h, &mut buf), Err(Win32Error::InvalidHandle));
    // The world is still healthy.
    let h = api
        .create_file("/n.af", Access::read_write(), Disposition::OpenExisting)
        .expect("fresh open");
    api.write_file(h, b"fine").expect("write");
    api.close_handle(h).expect("close");
    assert_eq!(world.open_sentinel_count(), 0);
}
