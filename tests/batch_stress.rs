//! Seeded stress for the submission/completion-ring transport.
//!
//! Eight threads each drive their own `batch=on` active file — private
//! ring, private sentinel — with a seeded mix of reads, writes, seeks,
//! and size queries, at per-thread ring depths drawn from the seed. The
//! same scripts are then replayed serially over the plain (unbatched)
//! transport, and every thread's transcript must match byte for byte:
//! whatever interleaving the executor picked for the concurrent rings,
//! batching must never change what an application observes.
//!
//! After the runs, teardown must be clean — no live sentinels — so a
//! ring that wedged its drain loop or leaked a completion fails here.
//!
//! The seed honours `AFS_TEST_SEED`, so the CI seed sweep exercises
//! eight different schedules and ring-depth mixes.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{clock, VPath};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 60;
const EXTENT: usize = 1024;

fn test_seed() -> u64 {
    std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn stress_path(idx: usize) -> String {
    format!("/batch/{idx}.af")
}

/// Builds a world with one active file per thread, seeded extents, and
/// the given batching configuration.
fn build_world(strategy: Strategy, depths: Option<&[usize]>) -> Arc<AfsWorld> {
    let world = Arc::new(AfsWorld::new());
    activefiles::register_standard_sentinels(&world);
    for idx in 0..THREADS {
        let mut spec = SentinelSpec::new("null", strategy).backing(Backing::Memory);
        if let Some(depths) = depths {
            spec = spec
                .with("batch", "on")
                .with("ring_depth", &depths[idx].to_string());
        }
        world
            .install_active_file(&stress_path(idx), &spec)
            .expect("install");
        world
            .vfs()
            .write_stream_replace(
                &VPath::parse(&stress_path(idx)).expect("path"),
                &vec![idx as u8; EXTENT],
            )
            .expect("seed extent");
    }
    world
}

/// Runs one thread's seeded script against its file and returns the
/// transcript: every op's result and every byte read.
fn run_script(world: &AfsWorld, idx: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
    let api = world.api();
    let _clock = clock::install(0);
    let path = stress_path(idx);
    let h = api
        .create_file(&path, Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut log: Vec<Vec<u8>> = Vec::new();
    for _ in 0..OPS_PER_THREAD {
        match rng.gen_range(0..10u32) {
            // Mostly reads: the sequential runs between seeks are what
            // the readahead speculates over.
            0..=5 => {
                let len = rng.gen_range(1..=96usize);
                let mut buf = vec![0u8; len];
                let n = api.read_file(h, &mut buf).expect("read");
                buf.truncate(n);
                buf.insert(0, b'r');
                log.push(buf);
            }
            6..=7 => {
                let len = rng.gen_range(1..=48usize);
                let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255) as u8).collect();
                let n = api.write_file(h, &data).expect("write");
                log.push(vec![b'w', n as u8]);
            }
            8 => {
                let off = rng.gen_range(0..(2 * EXTENT) as i64);
                let pos = api
                    .set_file_pointer(h, off, SeekMethod::Begin)
                    .expect("seek");
                log.push(pos.to_le_bytes().to_vec());
            }
            _ => {
                let size = api.get_file_size(h).expect("size");
                log.push(size.to_le_bytes().to_vec());
            }
        }
    }
    api.close_handle(h).expect("close");
    log
}

#[test]
fn concurrent_batched_rings_match_serial_unbatched_replay() {
    let seed = test_seed();
    for strategy in [Strategy::ProcessControl, Strategy::DllThread] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let depths: Vec<usize> = (0..THREADS).map(|_| rng.gen_range(1..=12)).collect();

        // Concurrent batched run: every thread on its own ring.
        let world = build_world(strategy, Some(&depths));
        let mut joins = Vec::new();
        for idx in 0..THREADS {
            let world = Arc::clone(&world);
            joins.push(std::thread::spawn(move || run_script(&world, idx, seed)));
        }
        let batched: Vec<Vec<Vec<u8>>> = joins
            .into_iter()
            .map(|j| j.join().expect("stress thread"))
            .collect();
        assert_eq!(
            world.open_sentinel_count(),
            0,
            "{strategy:?}: every ring drained and every sentinel reaped"
        );

        // Serial unbatched replay of the identical scripts.
        let world = build_world(strategy, None);
        for (idx, batched_log) in batched.iter().enumerate() {
            let plain = run_script(&world, idx, seed);
            assert_eq!(
                &plain, batched_log,
                "{strategy:?} seed {seed}: thread {idx} (ring_depth {}) diverged \
                 from the unbatched replay",
                depths[idx]
            );
        }
    }
}
