//! Seeded stress for the submission/completion-ring transport.
//!
//! Eight threads each drive their own `batch=on` active file — private
//! ring, private sentinel — with a seeded mix of reads, writes, seeks,
//! and size queries, at per-thread ring depths drawn from the seed. The
//! same scripts are then replayed serially over the plain (unbatched)
//! transport, and every thread's transcript must match byte for byte:
//! whatever interleaving the executor picked for the concurrent rings,
//! batching must never change what an application observes.
//!
//! After the runs, teardown must be clean — no live sentinels — so a
//! ring that wedged its drain loop or leaked a completion fails here.
//!
//! The seed honours `AFS_TEST_SEED`, so the CI seed sweep exercises
//! eight different schedules and ring-depth mixes.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{clock, FileClient, FileServer, Service, VPath};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 60;
const EXTENT: usize = 1024;

fn test_seed() -> u64 {
    std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn stress_path(idx: usize) -> String {
    format!("/batch/{idx}.af")
}

/// Builds a world with one active file per thread, seeded extents, and
/// the given batching configuration.
fn build_world(strategy: Strategy, depths: Option<&[usize]>) -> Arc<AfsWorld> {
    let world = Arc::new(AfsWorld::new());
    activefiles::register_standard_sentinels(&world);
    for idx in 0..THREADS {
        let mut spec = SentinelSpec::new("null", strategy).backing(Backing::Memory);
        if let Some(depths) = depths {
            spec = spec
                .with("batch", "on")
                .with("ring_depth", &depths[idx].to_string());
        }
        world
            .install_active_file(&stress_path(idx), &spec)
            .expect("install");
        world
            .vfs()
            .write_stream_replace(
                &VPath::parse(&stress_path(idx)).expect("path"),
                &vec![idx as u8; EXTENT],
            )
            .expect("seed extent");
    }
    world
}

/// Runs one thread's seeded script against its file and returns the
/// transcript: every op's result and every byte read.
fn run_script(world: &AfsWorld, idx: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
    let api = world.api();
    let _clock = clock::install(0);
    let path = stress_path(idx);
    let h = api
        .create_file(&path, Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut log: Vec<Vec<u8>> = Vec::new();
    for _ in 0..OPS_PER_THREAD {
        match rng.gen_range(0..10u32) {
            // Mostly reads: the sequential runs between seeks are what
            // the readahead speculates over.
            0..=5 => {
                let len = rng.gen_range(1..=96usize);
                let mut buf = vec![0u8; len];
                let n = api.read_file(h, &mut buf).expect("read");
                buf.truncate(n);
                buf.insert(0, b'r');
                log.push(buf);
            }
            6..=7 => {
                let len = rng.gen_range(1..=48usize);
                let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255) as u8).collect();
                let n = api.write_file(h, &data).expect("write");
                log.push(vec![b'w', n as u8]);
            }
            8 => {
                let off = rng.gen_range(0..(2 * EXTENT) as i64);
                let pos = api
                    .set_file_pointer(h, off, SeekMethod::Begin)
                    .expect("seek");
                log.push(pos.to_le_bytes().to_vec());
            }
            _ => {
                let size = api.get_file_size(h).expect("size");
                log.push(size.to_le_bytes().to_vec());
            }
        }
    }
    api.close_handle(h).expect("close");
    log
}

/// Regression test: a queued-write replay on heal must retire the
/// batched ring's speculative-cache epoch.
///
/// While a partition is up, degraded mode serves speculative readahead
/// from the last-good cache — those completions describe the pre-replay
/// file. If the remote changes while the partition is up and the heal
/// then replays the queued writes, a driver that kept its old epoch
/// would serve the stale speculation to the first post-heal read. The
/// ring drains submissions in order, so waiting on any synchronous op
/// proves every earlier speculative read has produced its (stale)
/// completion — no wall-clock races.
#[test]
fn post_heal_reads_never_observe_pre_replay_speculation() {
    const HALF: usize = 64;
    let _clock = clock::install(0);
    let world = AfsWorld::new();
    activefiles::register_standard_sentinels(&world);
    let server = FileServer::new();
    let v1: Vec<u8> = [vec![b'A'; HALF], vec![b'B'; HALF]].concat();
    server.seed("/blob", &v1);
    world
        .net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    let spec = SentinelSpec::new("mirror", Strategy::DllThread)
        .backing(Backing::Memory)
        .with("service", "files")
        .with("remote", "/blob")
        .with("degraded", "true")
        .with("batch", "on")
        .with("ring_depth", "3");
    world.install_active_file("/m.af", &spec).expect("install");

    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; HALF];

    // Warm both halves (reads refresh the last-good cache as they go).
    assert_eq!(api.read_file(h, &mut buf).expect("warm front"), HALF);
    assert_eq!(&buf[..], &v1[..HALF]);
    assert_eq!(api.read_file(h, &mut buf).expect("warm back"), HALF);
    assert_eq!(&buf[..], &v1[HALF..]);

    // Partition, then write: the write is accepted locally and queued
    // for replay. The demand read it flushes with drags a speculative
    // read of the back half into the same batch — served stale from
    // the last-good cache because the remote is down.
    let plan = world.net().plan("files").expect("plan");
    plan.set_partitioned(true);
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.write_file(h, b"EDIT").expect("queued while down");
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    api.read_file(h, &mut buf).expect("degraded demand read");
    assert_eq!(&buf[..4], b"EDIT", "local view reflects the queued write");
    // A synchronous op (GetSize stages no speculation of its own)
    // completes only after the in-order drain has served the
    // speculative read above, so its stale completion has landed.
    api.get_file_size(h).expect("degraded size");
    assert!(world.net().reliability().queued_writes >= 1);

    // The remote's back half changes while the partition is still up,
    // then the network heals and the next op replays the queue.
    let v2: Vec<u8> = [vec![b'A'; HALF], vec![b'C'; HALF]].concat();
    server.seed("/blob", &v2);
    plan.set_partitioned(false);
    api.get_file_size(h)
        .expect("post-heal op replays the queue");
    assert!(world.net().reliability().replayed_writes >= 1);

    // The first post-heal read of the back half must come from the
    // healed remote, not from the pre-replay speculative completion.
    api.set_file_pointer(h, HALF as i64, SeekMethod::Begin)
        .expect("seek");
    assert_eq!(api.read_file(h, &mut buf).expect("post-heal read"), HALF);
    assert_eq!(
        &buf[..],
        &v2[HALF..],
        "replay must retire the ring's speculative epoch"
    );
    api.close_handle(h).expect("close");
    // And the replayed write reached the remote.
    let check = FileClient::new(world.net().clone(), "files");
    assert_eq!(check.get("/blob", 0, 4).expect("remote read"), b"EDIT");
}

#[test]
fn concurrent_batched_rings_match_serial_unbatched_replay() {
    let seed = test_seed();
    for strategy in [Strategy::ProcessControl, Strategy::DllThread] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let depths: Vec<usize> = (0..THREADS).map(|_| rng.gen_range(1..=12)).collect();

        // Concurrent batched run: every thread on its own ring.
        let world = build_world(strategy, Some(&depths));
        let mut joins = Vec::new();
        for idx in 0..THREADS {
            let world = Arc::clone(&world);
            joins.push(std::thread::spawn(move || run_script(&world, idx, seed)));
        }
        let batched: Vec<Vec<Vec<u8>>> = joins
            .into_iter()
            .map(|j| j.join().expect("stress thread"))
            .collect();
        assert_eq!(
            world.open_sentinel_count(),
            0,
            "{strategy:?}: every ring drained and every sentinel reaped"
        );

        // Serial unbatched replay of the identical scripts.
        let world = build_world(strategy, None);
        for (idx, batched_log) in batched.iter().enumerate() {
            let plain = run_script(&world, idx, seed);
            assert_eq!(
                &plain, batched_log,
                "{strategy:?} seed {seed}: thread {idx} (ring_depth {}) diverged \
                 from the unbatched replay",
                depths[idx]
            );
        }
    }
}
