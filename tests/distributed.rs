//! End-to-end distributed scenarios spanning every crate: legacy
//! applications, active files, the simulated network, and multiple remote
//! services in one world.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{DbServer, FileServer, MailStore, PopServer, QuoteServer, Service, SmtpServer};

fn read_all(api: &dyn FileApi, path: &str) -> Vec<u8> {
    let h = api
        .create_file(path, Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut out = Vec::new();
    let mut buf = [0u8; 97];
    loop {
        let n = api.read_file(h, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h).expect("close");
    out
}

#[test]
fn one_world_many_sources_many_active_files() {
    let world = AfsWorld::builder().user("analyst").build();
    register_standard_sentinels(&world);

    // Stand up a small distributed system.
    let files = FileServer::new();
    files.seed("/reports/east", b"east: 120 units\n");
    files.seed("/reports/west", b"west: 80 units\n");
    world
        .net()
        .register("files", Arc::clone(&files) as Arc<dyn Service>);

    let quotes = QuoteServer::new(5, &["ACME"]);
    world
        .net()
        .register("quotes", Arc::clone(&quotes) as Arc<dyn Service>);

    let db = DbServer::new();
    db.put("inv:screws", b"9000");
    db.put("inv:nails", b"120");
    world
        .net()
        .register("db", Arc::clone(&db) as Arc<dyn Service>);

    let mail = MailStore::new();
    world
        .net()
        .register("smtp", SmtpServer::new(mail.clone()) as Arc<dyn Service>);
    world
        .net()
        .register("pop", PopServer::new(mail.clone()) as Arc<dyn Service>);

    // Four active files over four different source kinds.
    world
        .install_active_file(
            "/sales.af",
            &SentinelSpec::new("merge", Strategy::ProcessControl)
                .backing(Backing::Memory)
                .with("service", "files")
                .with("remotes", "/reports/east, /reports/west"),
        )
        .expect("sales");
    world
        .install_active_file(
            "/ticker.af",
            &SentinelSpec::new("stock-ticker", Strategy::DllThread)
                .backing(Backing::Memory)
                .with("service", "quotes")
                .with("symbols", "ACME"),
        )
        .expect("ticker");
    world
        .install_active_file(
            "/inventory.af",
            &SentinelSpec::new("live-query", Strategy::DllOnly)
                .with("service", "db")
                .with("prefix", "inv:"),
        )
        .expect("inventory");
    world
        .install_active_file(
            "/outbox.af",
            &SentinelSpec::new("outbox", Strategy::ProcessControl).with("service", "smtp"),
        )
        .expect("outbox");

    let api = world.api();

    let sales = String::from_utf8(read_all(&api, "/sales.af")).expect("utf8");
    assert_eq!(sales, "east: 120 units\nwest: 80 units\n");

    let ticker = String::from_utf8(read_all(&api, "/ticker.af")).expect("utf8");
    assert!(ticker.starts_with("ACME\t"));

    let inventory = String::from_utf8(read_all(&api, "/inventory.af")).expect("utf8");
    assert_eq!(inventory, "inv:nails=120\ninv:screws=9000\n");

    // Compose: write a summary mail through the outbox.
    let h = api
        .create_file(
            "/outbox.af",
            Access::write_only(),
            Disposition::OpenExisting,
        )
        .expect("open outbox");
    let body = format!("To: boss@hq\nSubject: daily\n\n{sales}{ticker}{inventory}");
    api.write_file(h, body.as_bytes()).expect("write");
    api.close_handle(h).expect("send");
    assert_eq!(mail.count("boss@hq"), 1);
}

#[test]
fn cache_consistency_with_remote_updates() {
    // §1: the aggregated data must not be "completely decoupled from …
    // the original sources". The live-query file tracks the database
    // through an open handle; the remote-file sentinel revalidates per
    // open.
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    let db = DbServer::new();
    db.put("cfg:mode", b"slow");
    world
        .net()
        .register("db", Arc::clone(&db) as Arc<dyn Service>);
    world
        .install_active_file(
            "/cfg.af",
            &SentinelSpec::new("live-query", Strategy::ProcessControl)
                .with("service", "db")
                .with("prefix", "cfg:"),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/cfg.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 64];
    let n = api.read_file(h, &mut buf).expect("read");
    assert_eq!(&buf[..n], b"cfg:mode=slow\n");
    db.put("cfg:mode", b"fast");
    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
    let n = api.read_file(h, &mut buf).expect("read");
    assert_eq!(
        &buf[..n],
        b"cfg:mode=fast\n",
        "update visible without reopening"
    );
    api.close_handle(h).expect("close");
}

#[test]
fn filter_chain_source_to_application() {
    // Compression over the data part + a remote writeback: a compressed
    // document whose plain text round-trips through a remote copy.
    let world = AfsWorld::new();
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/doc.af",
            &SentinelSpec::new("compress", Strategy::DllThread).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    let text = b"a long, long, long, long document body".repeat(40);
    let h = api
        .create_file("/doc.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    api.write_file(h, &text).expect("write");
    api.close_handle(h).expect("close");

    // The stored representation really is compressed...
    let stored = world
        .vfs()
        .read_stream_to_end(&"/doc.af".parse::<activefiles::VPath>().expect("p"))
        .expect("stored");
    assert!(stored.len() < text.len() / 3);

    // ...and a different legacy app reads the plain text back.
    assert_eq!(read_all(&api, "/doc.af"), text);
}

#[test]
fn multiple_opens_share_the_log_through_named_sync() {
    // Two simultaneous opens of one active file = two sentinels (§2.2);
    // they coordinate through the named-semaphore namespace.
    let world = Arc::new(AfsWorld::new());
    register_standard_sentinels(&world);
    world
        .install_active_file(
            "/audit.af",
            &SentinelSpec::new("shared-log", Strategy::ProcessControl).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    let h1 = api
        .create_file("/audit.af", Access::write_only(), Disposition::OpenExisting)
        .expect("open 1");
    let h2 = api
        .create_file("/audit.af", Access::write_only(), Disposition::OpenExisting)
        .expect("open 2");
    assert_eq!(world.open_sentinel_count(), 2);
    api.write_file(h1, b"<one>").expect("w1");
    api.write_file(h2, b"<two>").expect("w2");
    api.write_file(h1, b"<three>").expect("w3");
    api.close_handle(h1).expect("c1");
    api.close_handle(h2).expect("c2");
    let log = read_all(&api, "/audit.af");
    let text = String::from_utf8(log).expect("utf8");
    assert_eq!(text.matches('<').count(), 3);
    assert!(text.contains("<one>") && text.contains("<two>") && text.contains("<three>"));
}
