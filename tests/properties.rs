//! Property-based tests over the whole stack.
//!
//! The strongest property the paper claims is *indistinguishability*: a
//! null-filter active file must behave exactly like a passive file for
//! **any** sequence of operations. We drive random operation sequences
//! against a passive reference and each strategy/backing combination and
//! require identical observable results.

use activefiles::prelude::*;
use activefiles::Handle;
// `afs_core::Strategy` (glob above) collides with proptest's `Strategy`
// trait; disambiguate both sides explicitly.
use activefiles::Strategy;
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

/// An application-visible file operation.
#[derive(Debug, Clone)]
enum Op {
    Write(Vec<u8>),
    Read(usize),
    /// One `ReadFileScatter` call with the given buffer lengths.
    Scatter(Vec<usize>),
    /// One `DeviceIoControl` call (the null sentinel refuses every code,
    /// exactly like a passive file — so outcomes still must agree).
    Control(u32),
    SeekBegin(u64),
    SeekEnd(i64),
    Size,
}

fn op_strategy() -> impl PropStrategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..64).prop_map(Op::Write),
        (1usize..64).prop_map(Op::Read),
        proptest::collection::vec(1usize..24, 1..4).prop_map(Op::Scatter),
        (0u32..8).prop_map(Op::Control),
        (0u64..256).prop_map(Op::SeekBegin),
        (-32i64..0).prop_map(Op::SeekEnd),
        Just(Op::Size),
    ]
}

/// Observable outcome of one op (reads capture the bytes; everything
/// captures Ok/Err and returned values).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Wrote(usize),
    ReadBytes(Vec<u8>),
    Pos(u64),
    Size(u64),
    Error(u32),
}

fn apply(api: &dyn FileApi, h: Handle, op: &Op) -> Outcome {
    match op {
        Op::Write(data) => match api.write_file(h, data) {
            Ok(n) => Outcome::Wrote(n),
            Err(e) => Outcome::Error(e.code()),
        },
        Op::Read(len) => {
            let mut buf = vec![0u8; *len];
            match api.read_file(h, &mut buf) {
                Ok(n) => {
                    buf.truncate(n);
                    Outcome::ReadBytes(buf)
                }
                Err(e) => Outcome::Error(e.code()),
            }
        }
        Op::Scatter(lens) => {
            let mut bufs: Vec<Vec<u8>> = lens.iter().map(|&len| vec![0u8; len]).collect();
            let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
            match api.read_file_scatter(h, &mut views) {
                Ok(n) => {
                    let mut joined: Vec<u8> = bufs.concat();
                    joined.truncate(n);
                    Outcome::ReadBytes(joined)
                }
                Err(e) => Outcome::Error(e.code()),
            }
        }
        Op::Control(code) => match api.device_io_control(h, *code, b"probe") {
            Ok(reply) => Outcome::ReadBytes(reply),
            Err(e) => Outcome::Error(e.code()),
        },
        Op::SeekBegin(offset) => match api.set_file_pointer(h, *offset as i64, SeekMethod::Begin) {
            Ok(p) => Outcome::Pos(p),
            Err(e) => Outcome::Error(e.code()),
        },
        Op::SeekEnd(offset) => match api.set_file_pointer(h, *offset, SeekMethod::End) {
            Ok(p) => Outcome::Pos(p),
            Err(e) => Outcome::Error(e.code()),
        },
        Op::Size => match api.get_file_size(h) {
            Ok(n) => Outcome::Size(n),
            Err(e) => Outcome::Error(e.code()),
        },
    }
}

fn run_passive(ops: &[Op]) -> Vec<Outcome> {
    let world = AfsWorld::new();
    let api = world.api();
    let h = api
        .create_file("/ref.bin", Access::read_write(), Disposition::CreateNew)
        .expect("create");
    let out = ops.iter().map(|op| apply(&api, h, op)).collect();
    api.close_handle(h).expect("close");
    out
}

fn run_active(ops: &[Op], strategy: Strategy, backing: Backing) -> Vec<Outcome> {
    let world = AfsWorld::new();
    world
        .install_active_file(
            "/t.af",
            &SentinelSpec::new("null", strategy).backing(backing),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/t.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let out = ops.iter().map(|op| apply(&api, h, op)).collect();
    api.close_handle(h).expect("close");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn null_active_file_is_indistinguishable_from_passive(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let reference = run_passive(&ops);
        for strategy in [Strategy::ProcessControl, Strategy::DllThread, Strategy::DllOnly] {
            for backing in [Backing::Memory, Backing::Disk] {
                let active = run_active(&ops, strategy, backing);
                prop_assert_eq!(
                    &active,
                    &reference,
                    "strategy {:?} backing {:?} diverged on {:?}",
                    strategy,
                    backing,
                    ops
                );
            }
        }
    }

    #[test]
    fn strategies_agree_with_each_other(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        // §5's translation claim from the other side: one logic, four
        // runtimes, identical semantics (excluding the streaming-only
        // simple process strategy).
        let base = run_active(&ops, Strategy::DllOnly, Backing::Memory);
        for strategy in [Strategy::ProcessControl, Strategy::DllThread] {
            let other = run_active(&ops, strategy, Backing::Memory);
            prop_assert_eq!(&other, &base, "{:?} diverged", strategy);
        }
    }

    #[test]
    fn compress_sentinel_preserves_any_content(
        data in proptest::collection::vec(any::<u8>(), 0..2000)
    ) {
        let world = AfsWorld::new();
        register_standard_sentinels(&world);
        world
            .install_active_file(
                "/z.af",
                &SentinelSpec::new("compress", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/z.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        api.write_file(h, &data).expect("write");
        api.close_handle(h).expect("close");
        let h = api
            .create_file("/z.af", Access::read_only(), Disposition::OpenExisting)
            .expect("reopen");
        let mut out = Vec::new();
        let mut buf = [0u8; 128];
        loop {
            let n = api.read_file(h, &mut buf).expect("read");
            if n == 0 { break; }
            out.extend_from_slice(&buf[..n]);
        }
        api.close_handle(h).expect("close");
        prop_assert_eq!(out, data);
    }

    #[test]
    fn cipher_roundtrips_under_random_access(
        writes in proptest::collection::vec((0u64..128, proptest::collection::vec(any::<u8>(), 1..32)), 1..12),
        key in any::<u64>(),
    ) {
        // Model: apply the same positioned writes to a Vec; the ciphered
        // active file must read back the same final image.
        let world = AfsWorld::new();
        register_standard_sentinels(&world);
        world
            .install_active_file(
                "/c.af",
                &SentinelSpec::new("xor-cipher", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("key", &key.to_string()),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/c.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        let mut model: Vec<u8> = Vec::new();
        let mut written: Vec<bool> = Vec::new();
        for (offset, data) in &writes {
            api.set_file_pointer(h, *offset as i64, SeekMethod::Begin).expect("seek");
            api.write_file(h, data).expect("write");
            let end = *offset as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
                written.resize(end, false);
            }
            model[*offset as usize..end].copy_from_slice(data);
            written[*offset as usize..end].fill(true);
        }
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("rewind");
        let mut out = vec![0u8; model.len()];
        let mut total = 0;
        while total < out.len() {
            let n = api.read_file(h, &mut out[total..]).expect("read");
            if n == 0 { break; }
            total += n;
        }
        api.close_handle(h).expect("close");
        // Only bytes the application wrote are meaningful: unwritten gaps
        // in a position-keyed stream cipher decode to keystream noise (a
        // genuine property of the design, not a bug).
        prop_assert_eq!(total, model.len());
        for (i, (&got, &want)) in out.iter().zip(model.iter()).enumerate() {
            if written[i] {
                prop_assert_eq!(got, want, "mismatch at written offset {}", i);
            }
        }
    }
}
