//! Seeded fleet stress for the sharded sentinel executor.
//!
//! A bounded two-worker pool multiplexes a dozen executor-routed
//! sentinels (§4.2 process-plus-control and §4.3 DLL-with-thread) while
//! eight application threads hammer them with a deliberately *skewed*
//! load — most operations target one hot file. The suite asserts the
//! properties the executor refactor must preserve:
//!
//! 1. **No sentinel starves** — every file is served by every thread and
//!    each operation's virtual-time latency stays bounded, however hot
//!    the popular sentinel gets. (Virtual time only advances by charged
//!    costs, so a scheduler that spun, double-charged, or wedged a shard
//!    would blow the bound or hang the run.)
//! 2. **The pool stays bounded** — the live-worker gauge never exceeds
//!    the configured cap, no matter how many sentinels are registered.
//! 3. **Teardown is deterministic** — after the threads finish,
//!    [`AfsWorld::quiesce`] drains every sentinel cleanly: zero live
//!    tasks, zero workers, zero abandoned state machines.
//!
//! The seed honours `AFS_TEST_SEED`, so the CI seed sweep exercises
//! eight different skew schedules.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{clock, HardwareProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 2;
const FILES: usize = 12;
const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 40;
/// A shared sentinel serialises its sessions' virtual work, so a single
/// op on the hot file can legitimately queue behind every other thread:
/// the worst case is all 320 ops landing on one sentinel at roughly a
/// hundred virtual microseconds each (§4.2 round trips), ~32 ms. Beyond
/// that, the executor charged costs it never should have — spinning,
/// double-charging, or wedging a shard.
const MAX_OP_LATENCY_NS: u64 = (THREADS * OPS_PER_THREAD) as u64 * 100_000;

fn test_seed() -> u64 {
    std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn fleet_path(idx: usize) -> String {
    format!("/fleet/f{idx}.af")
}

/// Builds a costed world with a bounded pool and `FILES` executor-routed
/// active files, alternating the two strategies that run on the pool.
fn build_fleet_world() -> Arc<AfsWorld> {
    let world = Arc::new(
        AfsWorld::builder()
            .profile(HardwareProfile::pentium_ii_300())
            .fleet_workers(WORKERS)
            .build(),
    );
    activefiles::register_standard_sentinels(&world);
    for idx in 0..FILES {
        let strategy = if idx % 2 == 0 {
            Strategy::DllThread
        } else {
            Strategy::ProcessControl
        };
        world
            .install_active_file(
                &fleet_path(idx),
                &SentinelSpec::new("null", strategy).backing(Backing::Memory),
            )
            .expect("install");
    }
    world
}

/// One thread's report: how many ops it issued per file and the worst
/// virtual-time latency it observed on any single operation.
struct ThreadReport {
    per_file: [u64; FILES],
    max_latency_ns: u64,
}

fn stress_one_thread(api: afs_interpose::ApiHandle, thread_idx: usize, seed: u64) -> ThreadReport {
    let _clock = clock::install(0);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1000).wrapping_add(thread_idx as u64));
    let handles: Vec<_> = (0..FILES)
        .map(|idx| {
            api.create_file(
                &fleet_path(idx),
                Access::read_write(),
                Disposition::OpenExisting,
            )
            .expect("open")
        })
        .collect();
    let mut report = ThreadReport {
        per_file: [0; FILES],
        max_latency_ns: 0,
    };
    for op in 0..OPS_PER_THREAD {
        // The first sweep touches every file once so no sentinel can dodge
        // the starvation check; after that ~70% of the load piles onto
        // file 0 while the rest spreads uniformly.
        let target = if op < FILES {
            op
        } else if rng.gen_range(0..10) < 7 {
            0
        } else {
            rng.gen_range(0..FILES)
        };
        let started = clock::now();
        if rng.gen_bool(0.5) {
            let data = vec![thread_idx as u8; 1 + rng.gen_range(0..32) as usize];
            assert_eq!(
                api.write_file(handles[target], &data).expect("write"),
                data.len()
            );
        } else {
            let mut buf = [0u8; 24];
            api.read_file(handles[target], &mut buf).expect("read");
        }
        let latency = clock::now() - started;
        report.max_latency_ns = report.max_latency_ns.max(latency);
        report.per_file[target] += 1;
    }
    for h in handles {
        api.close_handle(h).expect("close");
    }
    report
}

#[test]
fn skewed_fleet_load_starves_no_sentinel_and_quiesces() {
    let world = build_fleet_world();
    let seed = test_seed();
    let fleet = Arc::clone(world.telemetry().fleet());

    let joins: Vec<_> = (0..THREADS)
        .map(|idx| {
            let api = world.api();
            std::thread::spawn(move || stress_one_thread(api, idx, seed))
        })
        .collect();
    let reports: Vec<ThreadReport> = joins
        .into_iter()
        .map(|j| j.join().expect("stress thread"))
        .collect();

    // No sentinel starves: every thread reached every file, and no single
    // operation's virtual latency blew the bound.
    for (idx, report) in reports.iter().enumerate() {
        for file in 0..FILES {
            assert!(
                report.per_file[file] > 0,
                "thread {idx} never got service from {}",
                fleet_path(file)
            );
        }
        assert!(
            report.max_latency_ns <= MAX_OP_LATENCY_NS,
            "thread {idx} saw a {} ns op (bound {MAX_OP_LATENCY_NS} ns)",
            report.max_latency_ns
        );
    }

    // The pool stayed bounded while every sentinel was live at once.
    let mid = fleet.snapshot();
    assert!(
        mid.workers <= WORKERS as u64,
        "pool grew past its cap: {} > {WORKERS}",
        mid.workers
    );
    assert!(
        mid.sentinels_peak >= FILES as u64,
        "all {FILES} sentinels should have been live together (peak {})",
        mid.sentinels_peak
    );
    assert!(mid.wakeups > 0, "readiness wakeups drove the scheduling");

    // Deterministic teardown: every handle was closed above, so quiescing
    // retires every state machine cleanly and stops the pool.
    world.quiesce();
    assert_eq!(world.fleet_task_count(), 0, "no live tasks after quiesce");
    let end = fleet.snapshot();
    assert_eq!(end.sentinels, 0, "no live sentinels after quiesce");
    assert_eq!(end.workers, 0, "workers joined at shutdown");
    assert_eq!(end.abandoned, 0, "clean closes never abandon a sentinel");
}

/// Regression test for the join-handle leak: the old thread-per-sentinel
/// wiring parked one OS thread per open and leaked its join handle when a
/// strategy handle was dropped early. Opening a thousand thread-strategy
/// files must leave the pool at its configured size, and dropping them —
/// half through explicit closes, half abandoned to world teardown — must
/// leave zero residual live sentinels.
#[test]
fn thousand_thread_strategy_opens_leave_no_residual_sentinels() {
    const OPENS: usize = 1000;
    let world = build_fleet_world();
    let fleet = Arc::clone(world.telemetry().fleet());
    let api = world.api();
    let _clock = clock::install(0);

    let handles: Vec<_> = (0..OPENS)
        .map(|idx| {
            let path = format!("/fleet/leak{idx}.af");
            world
                .install_active_file(
                    &path,
                    &SentinelSpec::new("null", Strategy::DllThread).backing(Backing::Memory),
                )
                .expect("install");
            api.create_file(&path, Access::read_write(), Disposition::OpenExisting)
                .expect("open")
        })
        .collect();

    let mid = fleet.snapshot();
    assert!(
        mid.sentinels_peak >= OPENS as u64,
        "each open registered a sentinel (peak {})",
        mid.sentinels_peak
    );
    assert!(
        mid.workers <= WORKERS as u64,
        "a thousand sentinels still run on {WORKERS} workers (got {})",
        mid.workers
    );

    // Close half the handles the polite way; the other half are dropped
    // "early" — still open when the world tears down.
    for (idx, h) in handles.into_iter().enumerate() {
        if idx % 2 == 0 {
            api.close_handle(h).expect("close");
        }
    }

    world.quiesce();
    assert_eq!(world.fleet_task_count(), 0, "no residual live sentinels");
    let end = fleet.snapshot();
    assert_eq!(end.sentinels, 0, "live gauge agrees");
    assert_eq!(end.workers, 0, "no residual worker threads");
    assert!(
        end.spawned >= OPENS as u64,
        "every open went through the executor"
    );
    assert_eq!(
        end.abandoned, 0,
        "draining the handle table closes sentinels cleanly, not by abandonment"
    );
}

/// The builder knob is honoured and survives into the running world.
#[test]
fn fleet_workers_knob_is_honoured() {
    let world = AfsWorld::builder().fleet_workers(3).build();
    assert_eq!(world.fleet_workers(), 3);
}
