//! The central transparency claim: "from the perspective of the
//! end-application, active files are indistinguishable from non-active
//! files. There is no reprogramming, or recompilation necessary" (§1).
//!
//! A small "legacy application suite" is written once against the plain
//! file API and run against (a) a passive file and (b) a null-filter
//! active file under every strategy that supports the operations it uses.
//! Byte-for-byte identical observable behaviour is required.

use activefiles::prelude::*;
use activefiles::{Handle, Win32Error};

/// A legacy "record store" application: fixed-size records, seek-based
/// update-in-place, sequential scan. Returns every observable value so
/// the test can compare runs.
fn record_store_app(api: &dyn FileApi, path: &str) -> Result<Vec<u8>, Win32Error> {
    const RECORD: usize = 16;
    let h: Handle = api.create_file(path, Access::read_write(), Disposition::OpenExisting)?;
    // Write 8 records.
    for i in 0..8u8 {
        let mut rec = [i; RECORD];
        rec[0] = b'R';
        api.write_file(h, &rec)?;
    }
    // Update record 3 in place.
    api.set_file_pointer(h, (3 * RECORD) as i64, SeekMethod::Begin)?;
    api.write_file(h, &[b'X'; RECORD])?;
    // Check the size.
    let size = api.get_file_size(h)?;
    assert_eq!(size, (8 * RECORD) as u64);
    // Sequential scan from the top.
    api.set_file_pointer(h, 0, SeekMethod::Begin)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 24]; // deliberately unaligned with RECORD
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;
    Ok(out)
}

/// A legacy "text appender": open, append, close, repeat; then read all.
fn appender_app(api: &dyn FileApi, path: &str) -> Result<Vec<u8>, Win32Error> {
    for word in ["alpha ", "beta ", "gamma"] {
        let h = api.create_file(path, Access::read_write(), Disposition::OpenExisting)?;
        api.set_file_pointer(h, 0, SeekMethod::End)?;
        api.write_file(h, word.as_bytes())?;
        api.close_handle(h)?;
    }
    let h = api.create_file(path, Access::read_only(), Disposition::OpenExisting)?;
    let mut out = Vec::new();
    let mut buf = [0u8; 7];
    loop {
        let n = api.read_file(h, &mut buf)?;
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h)?;
    Ok(out)
}

fn passive_run(app: impl Fn(&dyn FileApi, &str) -> Result<Vec<u8>, Win32Error>) -> Vec<u8> {
    let world = AfsWorld::new();
    let api = world.api();
    let h = api
        .create_file("/data.bin", Access::read_write(), Disposition::CreateNew)
        .expect("create passive");
    api.close_handle(h).expect("close");
    app(&api, "/data.bin").expect("passive run")
}

fn active_run(
    strategy: Strategy,
    backing: Backing,
    app: impl Fn(&dyn FileApi, &str) -> Result<Vec<u8>, Win32Error>,
) -> Vec<u8> {
    let world = AfsWorld::new();
    world
        .install_active_file(
            "/data.af",
            &SentinelSpec::new("null", strategy).backing(backing),
        )
        .expect("install");
    let api = world.api();
    app(&api, "/data.af").expect("active run")
}

#[test]
fn record_store_behaves_identically_on_active_files() {
    let reference = passive_run(record_store_app);
    for strategy in [
        Strategy::ProcessControl,
        Strategy::DllThread,
        Strategy::DllOnly,
    ] {
        for backing in [Backing::Memory, Backing::Disk] {
            let active = active_run(strategy, backing, record_store_app);
            assert_eq!(
                active, reference,
                "{strategy:?}/{backing:?} must be indistinguishable from the passive file"
            );
        }
    }
}

#[test]
fn appender_behaves_identically_on_active_files() {
    let reference = passive_run(appender_app);
    assert_eq!(reference, b"alpha beta gamma");
    for strategy in [
        Strategy::ProcessControl,
        Strategy::DllThread,
        Strategy::DllOnly,
    ] {
        for backing in [Backing::Memory, Backing::Disk] {
            let active = active_run(strategy, backing, appender_app);
            assert_eq!(active, reference, "{strategy:?}/{backing:?}");
        }
    }
}

#[test]
fn directory_operations_treat_active_files_as_files() {
    // §2.1: "Directory operations such as creating, copying, and deleting
    // result in corresponding operations on the passive components."
    let world = AfsWorld::new();
    world
        .install_active_file(
            "/dir/a.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    // The active file shows up in listings like any file.
    let listing = api.find_files("/dir").expect("list");
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].name, "a.af");
    // Copy, move, delete.
    api.copy_file("/dir/a.af", "/dir/b.af").expect("copy");
    api.move_file("/dir/b.af", "/dir/c.af").expect("move");
    assert_eq!(api.find_files("/dir").expect("list").len(), 2);
    api.delete_file("/dir/c.af").expect("delete");
    assert_eq!(api.find_files("/dir").expect("list").len(), 1);
    // The copy that was moved kept its active part the whole way.
    assert!(world.active_spec("/dir/a.af").is_some());
}

#[test]
fn get_file_attributes_works_on_active_paths() {
    let world = AfsWorld::new();
    world
        .install_active_file(
            "/f.af",
            &SentinelSpec::new("null", Strategy::DllOnly).backing(Backing::Disk),
        )
        .expect("install");
    let api = world.api();
    let attrs = api.get_file_attributes("/f.af").expect("attrs");
    assert!(!attrs.readonly);
}
