//! End-to-end telemetry: every application-visible operation on an active
//! file yields a span tree covering the interposition chain (interpose >
//! strategy > transport, plus sentinel/backend layers where the strategy
//! has them), the latency histograms agree with the op trace, and the
//! exporters emit valid, non-empty documents.

use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{
    chrome_trace, json_is_valid, json_snapshot, prometheus_text, FileServer, Layer, Service,
    SpanRecord,
};

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::Process,
    Strategy::ProcessControl,
    Strategy::DllThread,
    Strategy::DllOnly,
];

/// A world with one memory-backed null active file under `strategy`.
fn world_with(strategy: Strategy) -> (AfsWorld, &'static str) {
    let w = AfsWorld::new();
    register_standard_sentinels(&w);
    w.install_active_file(
        "/t.af",
        &SentinelSpec::new("null", strategy).backing(Backing::Memory),
    )
    .expect("install");
    let api = w.api();
    let h = api
        .create_file("/t.af", Access::read_write(), Disposition::OpenExisting)
        .expect("seed open");
    api.write_file(h, b"telemetry payload").expect("seed");
    api.close_handle(h).expect("seed close");
    (w, "/t.af")
}

/// Spans of the subtree rooted at `root`, found by walking parent links.
fn subtree<'a>(spans: &'a [SpanRecord], root: &'a SpanRecord) -> Vec<&'a SpanRecord> {
    let mut keep: Vec<&SpanRecord> = vec![root];
    let mut grew = true;
    while grew {
        grew = false;
        for s in spans {
            if keep.iter().any(|k| k.id == s.parent) && !keep.iter().any(|k| k.id == s.id) {
                keep.push(s);
                grew = true;
            }
        }
    }
    keep
}

#[test]
fn single_read_yields_a_span_tree_of_at_least_three_layers() {
    for strategy in ALL_STRATEGIES {
        let (w, file) = world_with(strategy);
        w.telemetry().set_enabled(true);
        let api = w.api();
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 8];
        assert_eq!(api.read_file(h, &mut buf).expect("read"), 8);
        let spans = w.telemetry().spans();
        let root = spans
            .iter()
            .find(|s| s.name == "ReadFile")
            .unwrap_or_else(|| panic!("{strategy:?}: interpose root span recorded"));
        assert_eq!(root.parent, 0, "{strategy:?}: ReadFile is a root");
        assert_eq!(root.layer, Layer::Interpose);
        let tree = subtree(&spans, root);
        let mut layers: Vec<&str> = tree.iter().map(|s| s.layer.label()).collect();
        layers.sort_unstable();
        layers.dedup();
        assert!(
            layers.len() >= 3,
            "{strategy:?}: read tree spans >= 3 layers, got {layers:?}"
        );
        assert!(layers.contains(&"strategy") && layers.contains(&"transport"));
        api.close_handle(h).expect("close");
    }
}

#[test]
fn children_close_within_their_parents() {
    // Containment is checked for read-driven spans: write-behind sentinel
    // work is *attributed* to the strategy span via the scope cell but may
    // drain after it closes, and §4.1 pump chunks are deliberate roots.
    for strategy in ALL_STRATEGIES {
        let (w, file) = world_with(strategy);
        w.telemetry().set_enabled(true);
        let api = w.api();
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 4];
        for _ in 0..3 {
            api.read_file(h, &mut buf).expect("read");
        }
        let spans = w.telemetry().spans();
        let read_roots: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.name == "ReadFile" && s.parent == 0)
            .collect();
        assert_eq!(read_roots.len(), 3, "{strategy:?}: one root per ReadFile");
        for root in read_roots {
            for child in subtree(&spans, root) {
                if child.id == root.id || child.thread != root.thread {
                    continue;
                }
                assert!(
                    child.start >= root.start && child.end <= root.end,
                    "{strategy:?}: same-thread child {} [{}, {}] inside root [{}, {}]",
                    child.name,
                    child.start,
                    child.end,
                    root.start,
                    root.end,
                );
            }
        }
        api.close_handle(h).expect("close");
    }
}

#[test]
fn strategy_span_counts_match_the_op_trace() {
    for strategy in ALL_STRATEGIES {
        let (w, file) = world_with(strategy);
        // Seeding ran with telemetry off but was traced; start both
        // observers from zero so the counts are comparable.
        w.trace().clear();
        w.telemetry().set_enabled(true);
        let api = w.api();
        let h = api
            .create_file(file, Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 4];
        for _ in 0..5 {
            api.read_file(h, &mut buf).expect("read");
        }
        api.write_file(h, b"x").expect("write");
        if strategy != Strategy::Process {
            // §4.1 has no control lane, so size queries are unsupported.
            api.get_file_size(h).expect("size");
        }
        api.close_handle(h).expect("close");
        let traced: u64 = w.trace().summary().iter().map(|row| row.count).sum();
        let strategy_spans = w
            .telemetry()
            .spans()
            .iter()
            .filter(|s| s.layer == Layer::Strategy)
            .count() as u64;
        assert_eq!(
            strategy_spans, traced,
            "{strategy:?}: one strategy span per traced op"
        );
        // The histograms agree too: total samples == traced ops.
        let hist_samples: u64 = w
            .telemetry()
            .strategy_hist_snapshots()
            .iter()
            .map(|(_, h)| h.count)
            .sum();
        assert_eq!(hist_samples, traced, "{strategy:?}: histogram coverage");
    }
}

#[test]
fn exporters_emit_valid_non_empty_documents() {
    let (w, file) = world_with(Strategy::DllThread);
    w.telemetry().set_enabled(true);
    let api = w.api();
    let h = api
        .create_file(file, Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 16];
    api.read_file(h, &mut buf).expect("read");
    api.close_handle(h).expect("close");

    let snapshot = w.metrics().snapshot();
    let prom = prometheus_text(&snapshot);
    assert!(prom.contains("afs_ops_total{"), "{prom}");
    assert!(prom.contains("afs_op_latency_ns_count{"), "{prom}");
    assert!(prom.contains("quantile=\"0.99\""), "{prom}");
    let json = json_snapshot(&snapshot);
    assert!(json_is_valid(&json), "snapshot JSON parses: {json}");

    let trace = chrome_trace(&[("Thread", w.telemetry().spans())]);
    assert!(json_is_valid(&trace), "chrome trace parses");
    assert!(
        trace.contains("ReadFile") && trace.contains("\"ph\""),
        "chrome trace carries span events: {trace}"
    );
}

#[test]
fn disabled_telemetry_records_nothing() {
    let (w, file) = world_with(Strategy::ProcessControl);
    // Never enabled: the default world must stay span-free.
    let api = w.api();
    let h = api
        .create_file(file, Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 8];
    api.read_file(h, &mut buf).expect("read");
    api.write_file(h, b"y").expect("write");
    api.close_handle(h).expect("close");
    assert_eq!(w.telemetry().span_count(), 0);
    // Histograms are registered eagerly per handle but must hold no
    // samples while telemetry is off.
    assert!(w
        .telemetry()
        .strategy_hist_snapshots()
        .iter()
        .all(|(_, h)| h.count == 0));
    // The op trace is independent of telemetry and still sees the ops.
    assert!(!w.trace().summary().is_empty());
}

#[test]
fn slow_ops_carry_their_ancestry() {
    let (w, file) = world_with(Strategy::DllOnly);
    w.telemetry().set_enabled(true);
    w.telemetry().set_slow_threshold_ns(1);
    let api = w.api();
    let h = api
        .create_file(file, Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 8];
    api.read_file(h, &mut buf).expect("read");
    api.close_handle(h).expect("close");
    let slow = w.telemetry().slow_ops();
    assert!(!slow.is_empty(), "1 ns threshold flags every op");
    let nested = slow
        .iter()
        .find(|s| s.ancestry.contains('>'))
        .expect("some slow span has ancestors");
    assert!(
        nested.ancestry.starts_with("ReadFile") || nested.ancestry.starts_with("CloseHandle"),
        "ancestry is rendered outermost-first: {}",
        nested.ancestry
    );
}

#[test]
fn slow_ops_across_mux_sessions_name_their_session_and_file() {
    // Two concurrent opens of one shared (mux) active file are two
    // sessions over one sentinel; a slow-op report must say *which*
    // session and file the slow sentinel work belonged to, rendered as a
    // `name[session=N file=...]` hop in the ancestry chain.
    let (w, file) = world_with(Strategy::DllThread);
    w.telemetry().set_enabled(true);
    w.telemetry().set_slow_threshold_ns(1);
    let api = w.api();
    let h1 = api
        .create_file(file, Access::read_only(), Disposition::OpenExisting)
        .expect("open session 1");
    let h2 = api
        .create_file(file, Access::read_only(), Disposition::OpenExisting)
        .expect("open session 2");
    let mut buf = [0u8; 8];
    api.read_file(h1, &mut buf).expect("read 1");
    api.read_file(h2, &mut buf).expect("read 2");
    api.close_handle(h1).expect("close 1");
    api.close_handle(h2).expect("close 2");

    let slow = w.telemetry().slow_ops();
    let tagged: Vec<&str> = slow
        .iter()
        .map(|s| s.ancestry.as_str())
        .filter(|a| a.contains("session="))
        .collect();
    assert!(
        !tagged.is_empty(),
        "mux sentinel spans carry session notes: {slow:#?}"
    );
    let file_tag = format!("file={file}");
    assert!(
        tagged.iter().all(|a| a.contains(&file_tag)),
        "every session-tagged report names the owning file: {tagged:#?}"
    );
    let sessions: std::collections::BTreeSet<&str> = tagged
        .iter()
        .filter_map(|a| {
            let rest = &a[a.find("session=")? + "session=".len()..];
            Some(rest.split([' ', ']']).next().unwrap_or(rest))
        })
        .collect();
    assert!(
        sessions.len() >= 2,
        "both sessions show up in the slow-op reports: {sessions:?}"
    );
    // The shared sentinel's resource accounting saw the ops too.
    assert!(
        w.telemetry()
            .sentinel_stats_snapshots()
            .iter()
            .any(|(name, s)| *name == "null" && s.ops > 0),
        "per-sentinel stats counted the mux traffic"
    );
}

#[test]
fn exported_span_trace_covers_the_interposition_chain() {
    // The CI gate formerly validated `figure6 --spans` output with a
    // python script; this is the same check in-tree. The exported
    // chrome-trace document must parse, carry complete ("ph": "X") span
    // events, and cover at least the interpose, strategy, and transport
    // layers across the four-strategy sweep.
    let trace = afs_bench::span_trace(20, activefiles::HardwareProfile::pentium_ii_300());
    assert!(json_is_valid(&trace), "chrome trace parses: {trace}");
    let root = afs_bench::gate::json::parse(&trace).expect("chrome trace JSON");
    let events = root.as_array().expect("trace is an event array");
    let spans: Vec<_> = events
        .iter()
        .filter_map(|e| e.as_object())
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .collect();
    assert!(!spans.is_empty(), "no span events emitted");
    let layers: std::collections::BTreeSet<&str> = spans
        .iter()
        .filter_map(|e| e.get("cat").and_then(|v| v.as_str()))
        .collect();
    for required in ["interpose", "strategy", "transport"] {
        assert!(
            layers.contains(required),
            "span layers {layers:?} missing {required}"
        );
    }
}

#[test]
fn remote_reads_reach_the_backend_layer() {
    let w = AfsWorld::new();
    register_standard_sentinels(&w);
    let server = FileServer::new();
    server.seed("/doc", b"remote body");
    w.net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    w.install_active_file(
        "/r.af",
        &SentinelSpec::new("remote-file", Strategy::DllThread)
            .backing(Backing::Memory)
            .with("service", "files")
            .with("remote", "/doc"),
    )
    .expect("install");
    w.telemetry().set_enabled(true);
    let api = w.api();
    let h = api
        .create_file("/r.af", Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 11];
    api.read_file(h, &mut buf).expect("read");
    api.write_file(h, b"edit").expect("write");
    // Flush pushes the dirty cache to the remote inside the sentinel's
    // dispatch frame, so the remote call shows up as a backend span.
    api.flush_file_buffers(h).expect("flush");
    api.close_handle(h).expect("close");
    let spans = w.telemetry().spans();
    assert!(
        spans
            .iter()
            .any(|s| s.layer == Layer::Backend && s.name.starts_with("remote-")),
        "remote write-back shows up as a backend span"
    );
    assert!(
        spans
            .iter()
            .any(|s| s.layer == Layer::Backend && s.name.starts_with("cache-")),
        "cache hits show up as backend spans"
    );
}
