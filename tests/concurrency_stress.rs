//! Seeded multi-handle concurrency stress across all four §4 strategies.
//!
//! Eight threads each open their own handle on one active file and issue
//! a seeded mix of reads, writes, seeks, and controls. The suite asserts
//! the three invariants the shared-sentinel session layer must preserve:
//!
//! 1. **Pointer integrity** — every handle's file pointer advances exactly
//!    by what that handle read/wrote/sought, regardless of what the other
//!    seven sessions are doing (checked with `seek(0, Current)` after
//!    every operation).
//! 2. **Trace-total exactness** — the world's [`OpTrace`] totals count
//!    every issued operation exactly once (no drops, no double counts),
//!    even when the multiplexer coalesces adjacent writes on the wire.
//! 3. **Span-tree validity** — with telemetry on, every recorded span's
//!    parent either is a recorded span or is 0 (a root); cross-thread
//!    parenting through the session scope cells never fabricates ids.
//!
//! The seed honours `AFS_TEST_SEED`, so the CI seed sweep exercises eight
//! different interleaving schedules.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use activefiles::prelude::*;
use activefiles::{clock, OpKind, CTL_QUERY_STALE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 30;

fn test_seed() -> u64 {
    std::env::var("AFS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn build_world(strategy: Strategy) -> Arc<AfsWorld> {
    let world = Arc::new(AfsWorld::new());
    activefiles::register_standard_sentinels(&world);
    world
        .install_active_file(
            "/stress.af",
            &SentinelSpec::new("null", strategy).backing(Backing::Memory),
        )
        .expect("install");
    world
}

/// Issued-operation counts one thread reports back for the trace audit.
#[derive(Default, Clone, Copy)]
struct Issued {
    reads: u64,
    writes: u64,
    controls: u64,
    sizes: u64,
}

fn stress_one_thread(
    api: afs_interpose::ApiHandle,
    strategy: Strategy,
    thread_idx: usize,
    seed: u64,
) -> Issued {
    let _clock = clock::install(0);
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(1000).wrapping_add(thread_idx as u64));
    let h = api
        .create_file(
            "/stress.af",
            Access::read_write(),
            Disposition::OpenExisting,
        )
        .expect("open");
    let mut issued = Issued::default();
    if strategy == Strategy::Process {
        // §4.1 is streaming-only: no pointer, no seek, no control. The
        // stress here is concurrent sentinel lifecycles, not sessions
        // (the simple process strategy never shares).
        for _ in 0..OPS_PER_THREAD {
            let len = 1 + rng.gen_range(0..16) as usize;
            let data = vec![thread_idx as u8; len];
            assert_eq!(api.write_file(h, &data).expect("stream write"), len);
            issued.writes += 1;
        }
        api.close_handle(h).expect("close");
        return issued;
    }
    let mut expected_ptr: u64 = 0;
    for _ in 0..OPS_PER_THREAD {
        match rng.gen_range(0..5) {
            0 | 1 => {
                // Write at the session pointer.
                let len = 1 + rng.gen_range(0..32) as usize;
                let data = vec![thread_idx as u8; len];
                assert_eq!(api.write_file(h, &data).expect("write"), len);
                expected_ptr += len as u64;
                issued.writes += 1;
            }
            2 => {
                let mut buf = [0u8; 16];
                let n = api.read_file(h, &mut buf).expect("read");
                expected_ptr += n as u64;
                issued.reads += 1;
            }
            3 => {
                let target = rng.gen_range(0..256) as i64;
                assert_eq!(
                    api.set_file_pointer(h, target, SeekMethod::Begin)
                        .expect("seek"),
                    target as u64
                );
                expected_ptr = target as u64;
            }
            _ => {
                let stale = api
                    .device_io_control(h, CTL_QUERY_STALE, &[])
                    .expect("control");
                assert!(!stale.is_empty(), "stale query replies at least one byte");
                issued.controls += 1;
            }
        }
        // Pointer integrity: this session's pointer reflects exactly this
        // session's history, whatever the other seven are doing.
        assert_eq!(
            api.set_file_pointer(h, 0, SeekMethod::Current)
                .expect("tell"),
            expected_ptr,
            "thread {thread_idx} pointer drifted"
        );
    }
    api.close_handle(h).expect("close");
    issued
}

fn run_stress(strategy: Strategy) {
    let world = build_world(strategy);
    world.telemetry().set_enabled(true);
    let seed = test_seed();
    let mut joins = Vec::new();
    for idx in 0..THREADS {
        let api = world.api();
        joins.push(std::thread::spawn(move || {
            stress_one_thread(api, strategy, idx, seed)
        }));
    }
    let mut total = Issued::default();
    for join in joins {
        let one = join.join().expect("stress thread");
        total.reads += one.reads;
        total.writes += one.writes;
        total.controls += one.controls;
        total.sizes += one.sizes;
    }

    // Trace-total exactness: every issued op appears in the totals exactly
    // once, plus one Close per handle.
    let mut by_op: HashMap<OpKind, u64> = HashMap::new();
    for row in world.trace().summary() {
        assert_eq!(row.strategy, strategy.label(), "one strategy per world");
        *by_op.entry(row.op).or_default() += row.count;
    }
    let count = |op: OpKind| by_op.get(&op).copied().unwrap_or(0);
    assert_eq!(count(OpKind::Write), total.writes, "{strategy:?} writes");
    assert_eq!(count(OpKind::Read), total.reads, "{strategy:?} reads");
    assert_eq!(
        count(OpKind::Control),
        total.controls,
        "{strategy:?} controls"
    );
    assert_eq!(count(OpKind::Size), total.sizes, "{strategy:?} sizes");
    assert_eq!(
        count(OpKind::Close),
        THREADS as u64,
        "{strategy:?} one close per handle"
    );

    // Span-tree validity: parents are recorded spans or roots.
    let spans = world.telemetry().spans();
    assert!(!spans.is_empty(), "telemetry was on");
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for span in &spans {
        assert!(
            span.parent == 0 || ids.contains(&span.parent),
            "{strategy:?}: span {} ({}) has unknown parent {}",
            span.id,
            span.name,
            span.parent
        );
    }
}

#[test]
fn stress_simple_process() {
    run_stress(Strategy::Process);
}

#[test]
fn stress_process_control() {
    run_stress(Strategy::ProcessControl);
}

#[test]
fn stress_dll_thread() {
    run_stress(Strategy::DllThread);
}

#[test]
fn stress_dll_only() {
    run_stress(Strategy::DllOnly);
}

/// Regression test for the file-pointer bug this change fixes: an
/// End-relative seek resolves the size and stores the pointer as two
/// steps; without `op_lock` around both, a concurrent write on the same
/// handle lands between them and the stored pointer silently rewinds the
/// file, overwriting data. With the fix, appends through one handle while
/// another thread hammers `seek(0, End)` never lose a byte.
#[test]
fn end_relative_seek_serialises_with_writes() {
    const WRITES: usize = 300;
    let world = build_world(Strategy::DllThread);
    let api = world.api();
    let h = api
        .create_file(
            "/stress.af",
            Access::read_write(),
            Disposition::OpenExisting,
        )
        .expect("open");
    let writer = {
        let api = world.api();
        std::thread::spawn(move || {
            let _clock = clock::install(0);
            for _ in 0..WRITES {
                assert_eq!(api.write_file(h, b"x").expect("write"), 1);
            }
        })
    };
    let seeker = {
        let api = world.api();
        std::thread::spawn(move || {
            let _clock = clock::install(0);
            for _ in 0..WRITES {
                api.set_file_pointer(h, 0, SeekMethod::End).expect("seek");
            }
        })
    };
    writer.join().expect("writer");
    seeker.join().expect("seeker");
    let _clock = clock::install(0);
    assert_eq!(
        api.get_file_size(h).expect("size"),
        WRITES as u64,
        "every append landed at the true end of file"
    );
    api.close_handle(h).expect("close");
}
