//! Per-call accounting layer.
//!
//! Installing a [`CountingLayer`] records how many times each instrumented
//! API entry point was invoked through the chain — the reproduction's
//! stand-in for the call tracing the Mediating Connectors toolkit offers,
//! and the mechanism tests use to prove calls really were diverted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use afs_winapi::{
    Access, ApiResult, DelegateFileApi, Disposition, FileApi, Handle, Layered, SeekMethod,
};

use crate::connector::ApiLayer;

/// Shared counters, one per instrumented entry point.
#[derive(Debug, Default)]
pub struct CallCounters {
    create_file: AtomicU64,
    read_file: AtomicU64,
    write_file: AtomicU64,
    close_handle: AtomicU64,
    get_file_size: AtomicU64,
    set_file_pointer: AtomicU64,
    flush_file_buffers: AtomicU64,
    device_io_control: AtomicU64,
    read_file_scatter: AtomicU64,
    write_file_gather: AtomicU64,
    other: AtomicU64,
}

/// A point-in-time copy of [`CallCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// `CreateFile`/`OpenFile` calls.
    pub create_file: u64,
    /// `ReadFile` calls.
    pub read_file: u64,
    /// `WriteFile` calls.
    pub write_file: u64,
    /// `CloseHandle` calls.
    pub close_handle: u64,
    /// `GetFileSize` calls.
    pub get_file_size: u64,
    /// `SetFilePointer` calls.
    pub set_file_pointer: u64,
    /// `FlushFileBuffers` calls.
    pub flush_file_buffers: u64,
    /// `DeviceIoControl` calls.
    pub device_io_control: u64,
    /// `ReadFileScatter` calls.
    pub read_file_scatter: u64,
    /// `WriteFileGather` calls.
    pub write_file_gather: u64,
    /// Every other instrumented call.
    pub other: u64,
}

impl CallCounters {
    /// Creates zeroed counters.
    pub fn new() -> Arc<Self> {
        Arc::new(CallCounters::default())
    }

    /// Copies out the current values.
    pub fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            create_file: self.create_file.load(Ordering::Relaxed),
            read_file: self.read_file.load(Ordering::Relaxed),
            write_file: self.write_file.load(Ordering::Relaxed),
            close_handle: self.close_handle.load(Ordering::Relaxed),
            get_file_size: self.get_file_size.load(Ordering::Relaxed),
            set_file_pointer: self.set_file_pointer.load(Ordering::Relaxed),
            flush_file_buffers: self.flush_file_buffers.load(Ordering::Relaxed),
            device_io_control: self.device_io_control.load(Ordering::Relaxed),
            read_file_scatter: self.read_file_scatter.load(Ordering::Relaxed),
            write_file_gather: self.write_file_gather.load(Ordering::Relaxed),
            other: self.other.load(Ordering::Relaxed),
        }
    }
}

/// The installable counting layer.
#[derive(Debug)]
pub struct CountingLayer {
    counters: Arc<CallCounters>,
}

impl CountingLayer {
    /// Creates a layer recording into `counters`.
    pub fn new(counters: Arc<CallCounters>) -> Self {
        CountingLayer { counters }
    }
}

impl ApiLayer for CountingLayer {
    fn name(&self) -> &str {
        "call-counters"
    }

    fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi> {
        Arc::new(Layered(CountingApi {
            inner,
            counters: Arc::clone(&self.counters),
        }))
    }
}

struct CountingApi {
    inner: Arc<dyn FileApi>,
    counters: Arc<CallCounters>,
}

impl DelegateFileApi for CountingApi {
    fn delegate(&self) -> &dyn FileApi {
        &*self.inner
    }

    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.counters.create_file.fetch_add(1, Ordering::Relaxed);
        self.delegate().create_file(path, access, disposition)
    }

    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        self.counters.read_file.fetch_add(1, Ordering::Relaxed);
        self.delegate().read_file(handle, buf)
    }

    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        self.counters.write_file.fetch_add(1, Ordering::Relaxed);
        self.delegate().write_file(handle, data)
    }

    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        self.counters.close_handle.fetch_add(1, Ordering::Relaxed);
        self.delegate().close_handle(handle)
    }

    fn get_file_size(&self, handle: Handle) -> ApiResult<u64> {
        self.counters.get_file_size.fetch_add(1, Ordering::Relaxed);
        self.delegate().get_file_size(handle)
    }

    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64> {
        self.counters
            .set_file_pointer
            .fetch_add(1, Ordering::Relaxed);
        self.delegate().set_file_pointer(handle, offset, method)
    }

    fn delete_file(&self, path: &str) -> ApiResult<()> {
        self.counters.other.fetch_add(1, Ordering::Relaxed);
        self.delegate().delete_file(path)
    }

    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.counters.other.fetch_add(1, Ordering::Relaxed);
        self.delegate().copy_file(from, to)
    }

    fn device_io_control(&self, handle: Handle, code: u32, input: &[u8]) -> ApiResult<Vec<u8>> {
        self.counters
            .device_io_control
            .fetch_add(1, Ordering::Relaxed);
        self.delegate().device_io_control(handle, code, input)
    }

    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()> {
        self.counters
            .flush_file_buffers
            .fetch_add(1, Ordering::Relaxed);
        self.delegate().flush_file_buffers(handle)
    }

    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize> {
        self.counters
            .read_file_scatter
            .fetch_add(1, Ordering::Relaxed);
        self.delegate().read_file_scatter(handle, bufs)
    }

    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize> {
        self.counters
            .write_file_gather
            .fetch_add(1, Ordering::Relaxed);
        self.delegate().write_file_gather(handle, bufs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::MediatingConnector;
    use afs_sim::CostModel;
    use afs_vfs::Vfs;
    use afs_winapi::PassiveFileApi;

    #[test]
    fn counters_record_diverted_calls() {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let conn = MediatingConnector::new(base);
        let counters = CallCounters::new();
        conn.install(Arc::new(CountingLayer::new(Arc::clone(&counters))))
            .expect("install");
        let api = conn.api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateAlways)
            .expect("create");
        api.write_file(h, b"abc").expect("write");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let mut buf = [0u8; 3];
        api.read_file(h, &mut buf).expect("read");
        api.get_file_size(h).expect("size");
        api.close_handle(h).expect("close");
        api.copy_file("/f", "/g").expect("copy");
        let snap = counters.snapshot();
        assert_eq!(snap.create_file, 1);
        assert_eq!(snap.write_file, 1);
        assert_eq!(snap.read_file, 1);
        assert_eq!(snap.set_file_pointer, 1);
        assert_eq!(snap.get_file_size, 1);
        assert_eq!(snap.close_handle, 1);
        assert_eq!(snap.other, 1);
    }

    #[test]
    fn dedicated_counters_cover_the_formerly_lumped_calls() {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let conn = MediatingConnector::new(base);
        let counters = CallCounters::new();
        conn.install(Arc::new(CountingLayer::new(Arc::clone(&counters))))
            .expect("install");
        let api = conn.api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateAlways)
            .expect("create");
        api.write_file_gather(h, &[b"ab", b"cd"]).expect("gather");
        api.flush_file_buffers(h).expect("flush");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let (mut a, mut b) = ([0u8; 2], [0u8; 2]);
        api.read_file_scatter(h, &mut [&mut a, &mut b])
            .expect("scatter");
        let _ = api.device_io_control(h, 7, b"");
        api.close_handle(h).expect("close");
        let snap = counters.snapshot();
        assert_eq!(snap.write_file_gather, 1);
        assert_eq!(snap.flush_file_buffers, 1);
        assert_eq!(snap.read_file_scatter, 1);
        assert_eq!(snap.device_io_control, 1);
        assert_eq!(snap.other, 0, "nothing left in the catch-all bucket");
    }

    #[test]
    fn uninstalled_counters_stop_recording() {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let conn = MediatingConnector::new(base);
        let counters = CallCounters::new();
        conn.install(Arc::new(CountingLayer::new(Arc::clone(&counters))))
            .expect("install");
        conn.uninstall("call-counters").expect("uninstall");
        let api = conn.api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateAlways)
            .expect("create");
        api.close_handle(h).expect("close");
        assert_eq!(counters.snapshot(), CountersSnapshot::default());
    }
}
