//! The connector and the application-side dispatch handle.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use afs_vfs::{DirEntry, FileAttributes};
use afs_winapi::{
    Access, ApiResult, Disposition, FileApi, FileInformation, Handle, SeekMethod, ShareMode,
};

/// A single interception layer: given the next implementation down the
/// chain, produce the diverted implementation.
pub trait ApiLayer: Send + Sync {
    /// Stable name used for install/uninstall bookkeeping.
    fn name(&self) -> &str;

    /// Wraps `inner`, returning the diverted API.
    fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi>;
}

/// Errors from connector management operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterposeError {
    /// A layer with this name is already installed.
    DuplicateLayer(String),
    /// No layer with this name is installed.
    UnknownLayer(String),
    /// The layer was installed securely and cannot be removed (§4: the
    /// application cannot undo the interception).
    SecuredLayer(String),
}

impl fmt::Display for InterposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterposeError::DuplicateLayer(n) => write!(f, "layer already installed: {n}"),
            InterposeError::UnknownLayer(n) => write!(f, "layer not installed: {n}"),
            InterposeError::SecuredLayer(n) => write!(f, "layer is secured against removal: {n}"),
        }
    }
}

impl Error for InterposeError {}

struct Installed {
    layer: Arc<dyn ApiLayer>,
    secure: bool,
}

struct State {
    layers: Vec<Installed>,
    chain: Arc<dyn FileApi>,
}

/// Runtime manager of the interception chain over a base [`FileApi`].
///
/// The chain is rebuilt whenever layers change; handles obtained earlier
/// from [`MediatingConnector::api`] observe the new chain immediately.
pub struct MediatingConnector {
    base: Arc<dyn FileApi>,
    state: Arc<RwLock<State>>,
}

impl MediatingConnector {
    /// Creates a connector whose initial chain is just `base`.
    pub fn new(base: Arc<dyn FileApi>) -> Self {
        let state = State {
            layers: Vec::new(),
            chain: Arc::clone(&base),
        };
        MediatingConnector {
            base,
            state: Arc::new(RwLock::new(state)),
        }
    }

    /// Returns the application-side dispatch handle (the simulated IAT).
    /// Cheap to clone; all clones observe chain changes.
    pub fn api(&self) -> ApiHandle {
        ApiHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Installs `layer` as the new outermost diversion.
    ///
    /// # Errors
    ///
    /// [`InterposeError::DuplicateLayer`] if a layer with the same name is
    /// installed.
    pub fn install(&self, layer: Arc<dyn ApiLayer>) -> Result<(), InterposeError> {
        self.install_inner(layer, false)
    }

    /// Installs `layer` such that [`MediatingConnector::uninstall`] refuses
    /// to remove it.
    ///
    /// # Errors
    ///
    /// As [`MediatingConnector::install`].
    pub fn install_secure(&self, layer: Arc<dyn ApiLayer>) -> Result<(), InterposeError> {
        self.install_inner(layer, true)
    }

    fn install_inner(&self, layer: Arc<dyn ApiLayer>, secure: bool) -> Result<(), InterposeError> {
        let mut state = self.state.write();
        if state.layers.iter().any(|l| l.layer.name() == layer.name()) {
            return Err(InterposeError::DuplicateLayer(layer.name().to_owned()));
        }
        state.layers.push(Installed { layer, secure });
        state.chain = Self::rebuild(&self.base, &state.layers);
        Ok(())
    }

    /// Removes the named layer and rebuilds the chain.
    ///
    /// # Errors
    ///
    /// [`InterposeError::UnknownLayer`] if not installed,
    /// [`InterposeError::SecuredLayer`] if installed via
    /// [`MediatingConnector::install_secure`].
    pub fn uninstall(&self, name: &str) -> Result<(), InterposeError> {
        let mut state = self.state.write();
        let idx = state
            .layers
            .iter()
            .position(|l| l.layer.name() == name)
            .ok_or_else(|| InterposeError::UnknownLayer(name.to_owned()))?;
        if state.layers[idx].secure {
            return Err(InterposeError::SecuredLayer(name.to_owned()));
        }
        state.layers.remove(idx);
        state.chain = Self::rebuild(&self.base, &state.layers);
        Ok(())
    }

    /// Names of installed layers, innermost first.
    pub fn installed(&self) -> Vec<String> {
        self.state
            .read()
            .layers
            .iter()
            .map(|l| l.layer.name().to_owned())
            .collect()
    }

    fn rebuild(base: &Arc<dyn FileApi>, layers: &[Installed]) -> Arc<dyn FileApi> {
        let mut chain = Arc::clone(base);
        for installed in layers {
            chain = installed.layer.wrap(chain);
        }
        chain
    }
}

/// The application's view of the file API: a stable handle that always
/// dispatches through the connector's *current* chain.
#[derive(Clone)]
pub struct ApiHandle {
    state: Arc<RwLock<State>>,
}

impl ApiHandle {
    fn chain(&self) -> Arc<dyn FileApi> {
        Arc::clone(&self.state.read().chain)
    }
}

impl fmt::Debug for ApiHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ApiHandle").finish_non_exhaustive()
    }
}

impl FileApi for ApiHandle {
    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.chain().create_file(path, access, disposition)
    }

    fn create_file_shared(
        &self,
        path: &str,
        access: Access,
        share: ShareMode,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.chain()
            .create_file_shared(path, access, share, disposition)
    }

    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        self.chain().read_file(handle, buf)
    }

    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        self.chain().write_file(handle, data)
    }

    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        self.chain().close_handle(handle)
    }

    fn get_file_size(&self, handle: Handle) -> ApiResult<u64> {
        self.chain().get_file_size(handle)
    }

    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64> {
        self.chain().set_file_pointer(handle, offset, method)
    }

    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize> {
        self.chain().read_file_scatter(handle, bufs)
    }

    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize> {
        self.chain().write_file_gather(handle, bufs)
    }

    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()> {
        self.chain().flush_file_buffers(handle)
    }

    fn lock_file(&self, handle: Handle, offset: u64, len: u64, exclusive: bool) -> ApiResult<()> {
        self.chain().lock_file(handle, offset, len, exclusive)
    }

    fn unlock_file(&self, handle: Handle, offset: u64, len: u64) -> ApiResult<()> {
        self.chain().unlock_file(handle, offset, len)
    }

    fn delete_file(&self, path: &str) -> ApiResult<()> {
        self.chain().delete_file(path)
    }

    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.chain().copy_file(from, to)
    }

    fn move_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.chain().move_file(from, to)
    }

    fn get_file_attributes(&self, path: &str) -> ApiResult<FileAttributes> {
        self.chain().get_file_attributes(path)
    }

    fn find_files(&self, dir: &str) -> ApiResult<Vec<DirEntry>> {
        self.chain().find_files(dir)
    }

    fn create_directory(&self, path: &str) -> ApiResult<()> {
        self.chain().create_directory(path)
    }

    fn get_file_information(&self, handle: Handle) -> ApiResult<FileInformation> {
        self.chain().get_file_information(handle)
    }

    fn set_end_of_file(&self, handle: Handle) -> ApiResult<()> {
        self.chain().set_end_of_file(handle)
    }

    fn device_io_control(&self, handle: Handle, code: u32, input: &[u8]) -> ApiResult<Vec<u8>> {
        self.chain().device_io_control(handle, code, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;
    use afs_vfs::Vfs;
    use afs_winapi::PassiveFileApi;

    /// Test layer: uppercases everything read through it.
    struct Shout;

    struct ShoutApi {
        inner: Arc<dyn FileApi>,
    }

    impl ApiLayer for Shout {
        fn name(&self) -> &str {
            "shout"
        }

        fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi> {
            Arc::new(ShoutApi { inner })
        }
    }

    impl FileApi for ShoutApi {
        fn create_file(&self, p: &str, a: Access, d: Disposition) -> ApiResult<Handle> {
            self.inner.create_file(p, a, d)
        }
        fn read_file(&self, h: Handle, buf: &mut [u8]) -> ApiResult<usize> {
            let n = self.inner.read_file(h, buf)?;
            buf[..n].make_ascii_uppercase();
            Ok(n)
        }
        fn write_file(&self, h: Handle, d: &[u8]) -> ApiResult<usize> {
            self.inner.write_file(h, d)
        }
        fn close_handle(&self, h: Handle) -> ApiResult<()> {
            self.inner.close_handle(h)
        }
        fn get_file_size(&self, h: Handle) -> ApiResult<u64> {
            self.inner.get_file_size(h)
        }
        fn set_file_pointer(&self, h: Handle, o: i64, m: SeekMethod) -> ApiResult<u64> {
            self.inner.set_file_pointer(h, o, m)
        }
        fn read_file_scatter(&self, h: Handle, b: &mut [&mut [u8]]) -> ApiResult<usize> {
            self.inner.read_file_scatter(h, b)
        }
        fn write_file_gather(&self, h: Handle, b: &[&[u8]]) -> ApiResult<usize> {
            self.inner.write_file_gather(h, b)
        }
        fn flush_file_buffers(&self, h: Handle) -> ApiResult<()> {
            self.inner.flush_file_buffers(h)
        }
        fn lock_file(&self, h: Handle, o: u64, l: u64, e: bool) -> ApiResult<()> {
            self.inner.lock_file(h, o, l, e)
        }
        fn unlock_file(&self, h: Handle, o: u64, l: u64) -> ApiResult<()> {
            self.inner.unlock_file(h, o, l)
        }
        fn delete_file(&self, p: &str) -> ApiResult<()> {
            self.inner.delete_file(p)
        }
        fn copy_file(&self, f: &str, t: &str) -> ApiResult<()> {
            self.inner.copy_file(f, t)
        }
        fn move_file(&self, f: &str, t: &str) -> ApiResult<()> {
            self.inner.move_file(f, t)
        }
        fn get_file_attributes(&self, p: &str) -> ApiResult<FileAttributes> {
            self.inner.get_file_attributes(p)
        }
        fn find_files(&self, d: &str) -> ApiResult<Vec<DirEntry>> {
            self.inner.find_files(d)
        }
        fn create_directory(&self, p: &str) -> ApiResult<()> {
            self.inner.create_directory(p)
        }
        fn get_file_information(&self, h: Handle) -> ApiResult<FileInformation> {
            self.inner.get_file_information(h)
        }
        fn set_end_of_file(&self, h: Handle) -> ApiResult<()> {
            self.inner.set_end_of_file(h)
        }
    }

    fn connector() -> MediatingConnector {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        MediatingConnector::new(base)
    }

    fn seed(api: &dyn FileApi, path: &str, data: &[u8]) {
        let h = api
            .create_file(path, Access::read_write(), Disposition::CreateAlways)
            .expect("create");
        api.write_file(h, data).expect("write");
        api.close_handle(h).expect("close");
    }

    fn read_all(api: &dyn FileApi, path: &str) -> Vec<u8> {
        let h = api
            .create_file(path, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut out = Vec::new();
        let mut buf = [0u8; 8];
        loop {
            let n = api.read_file(h, &mut buf).expect("read");
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        api.close_handle(h).expect("close");
        out
    }

    #[test]
    fn handles_observe_runtime_installs() {
        let conn = connector();
        let api = conn.api();
        seed(&api, "/f", b"quiet");
        assert_eq!(read_all(&api, "/f"), b"quiet");
        conn.install(Arc::new(Shout)).expect("install");
        // Same ApiHandle, new behaviour — the IAT was patched underneath.
        assert_eq!(read_all(&api, "/f"), b"QUIET");
        conn.uninstall("shout").expect("uninstall");
        assert_eq!(read_all(&api, "/f"), b"quiet");
    }

    #[test]
    fn duplicate_install_rejected() {
        let conn = connector();
        conn.install(Arc::new(Shout)).expect("first");
        assert_eq!(
            conn.install(Arc::new(Shout)).expect_err("dup"),
            InterposeError::DuplicateLayer("shout".into())
        );
    }

    #[test]
    fn unknown_uninstall_rejected() {
        let conn = connector();
        assert_eq!(
            conn.uninstall("ghost").expect_err("unknown"),
            InterposeError::UnknownLayer("ghost".into())
        );
    }

    #[test]
    fn secure_layer_cannot_be_removed() {
        let conn = connector();
        conn.install_secure(Arc::new(Shout))
            .expect("secure install");
        assert_eq!(
            conn.uninstall("shout").expect_err("secured"),
            InterposeError::SecuredLayer("shout".into())
        );
        let api = conn.api();
        seed(&api, "/f", b"abc");
        assert_eq!(read_all(&api, "/f"), b"ABC", "diversion stays in force");
    }

    #[test]
    fn installed_lists_layers_in_order() {
        let conn = connector();
        conn.install(Arc::new(Shout)).expect("install");
        assert_eq!(conn.installed(), vec!["shout".to_owned()]);
    }

    #[test]
    fn cloned_handles_share_the_chain() {
        let conn = connector();
        let a = conn.api();
        let b = a.clone();
        seed(&a, "/f", b"x");
        conn.install(Arc::new(Shout)).expect("install");
        assert_eq!(read_all(&b, "/f"), b"X");
    }
}
