#![warn(missing_docs)]
//! User-level API interception, modelling the Mediating Connectors
//! toolkit.
//!
//! The prototype rediverts, at runtime, "the file system API calls
//! initially intended for the Kernel32 DLL, to stub functions that
//! implement the features of the active files", using import-address-table
//! (IAT) patching, and notes that "interception can be done in a secure
//! fashion such that the application cannot undo it" (§4).
//!
//! In this reproduction an application holds an [`ApiHandle`] — the
//! analogue of its IAT: a stable object whose every [`FileApi`](afs_winapi::FileApi) method
//! forwards to whatever interception chain is currently installed in the
//! owning [`MediatingConnector`]. Installing a layer at runtime changes the
//! behaviour of *already-distributed* handles, exactly as IAT patching
//! changes the behaviour of already-loaded call sites; the application
//! cannot tell and does not participate.
//!
//! * [`MediatingConnector::install`] pushes an [`ApiLayer`] onto the chain
//!   (innermost first).
//! * [`MediatingConnector::uninstall`] removes it — unless the layer was
//!   installed with [`MediatingConnector::install_secure`], in which case
//!   removal fails: the secure interception of the paper.
//! * [`CallCounters`] provides the per-API-call accounting used by tests
//!   and the benchmark harness to verify who handled which call.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use afs_interpose::{ApiLayer, MediatingConnector};
//! use afs_winapi::{Access, Disposition, FileApi, PassiveFileApi};
//! use afs_vfs::Vfs;
//! use afs_sim::CostModel;
//!
//! # fn main() -> Result<(), afs_winapi::Win32Error> {
//! let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
//! let connector = MediatingConnector::new(base);
//! let app_api = connector.api(); // the application's "IAT"
//! let h = app_api.create_file("/f", Access::read_write(), Disposition::CreateAlways)?;
//! app_api.close_handle(h)?;
//! # Ok(())
//! # }
//! ```

mod connector;
mod counters;

pub use connector::{ApiHandle, ApiLayer, InterposeError, MediatingConnector};
pub use counters::{CallCounters, CountersSnapshot, CountingLayer};
