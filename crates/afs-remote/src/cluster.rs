//! The replica-aware cluster client: one [`FileClient`]-shaped surface
//! over a fleet of [`FileServer`](crate::FileServer)s.
//!
//! Placement comes from a consistent-hash [`Placement`]: every path has
//! a primary and `copies - 1` replicas, stable under membership churn.
//! The write path is **primary-ack with asynchronous replication**: the
//! write round-trips to the primary (which allocates the replication
//! sequence number by bumping the file version) and fans out to the
//! replicas as fire-and-forget casts carrying that sequence. Replicas
//! apply casts strictly in sequence order — a copy's version never
//! claims writes whose bytes it does not hold — and an ack carries the
//! session's floor, so an owner that missed casts refuses to allocate
//! a sequence (no split-brain re-issue across failover). The client
//! remembers the last sequence it was acknowledged per path, so reads
//! are **read-your-writes**: a read walks the owners in placement order
//! and only accepts a copy whose version has caught up to the session's
//! sequence.
//!
//! When every reachable owner is behind — a replica missed a cast and
//! the primary then failed — the `staleness_ms` budget decides the
//! outcome: the reader burns virtual time in bounded waits, re-polling
//! the owners, and surfaces an error once the budget is spent. This
//! tightens the single-service degraded mode's "stale allowed" into
//! *bounded* staleness: the application never observes data older than
//! its own acknowledged writes plus the configured bound.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{cluster::Placement, NetError, Network};
use afs_telemetry::ClusterGauges;

use crate::file_server::FileClient;

/// How long one bounded-staleness wait round burns before re-polling
/// the owners (virtual time).
const STALE_WAIT_STEP_NS: u64 = 1_000_000; // 1 ms

/// Whether an error means "try the next owner" (transport-level fault)
/// rather than "the service answered no".
fn failover_worthy(err: &NetError) -> bool {
    matches!(
        err,
        NetError::Dropped(_)
            | NetError::Partitioned(_)
            | NetError::ServiceNotFound(_)
            | NetError::CircuitOpen(_)
    )
}

/// A fleet-routing file client: consistent-hash placement, primary-ack
/// writes with async replication, and bounded-staleness
/// read-your-writes reads.
pub struct ClusterClient {
    net: Network,
    placement: Mutex<Placement>,
    /// Read-your-writes floor: per path, the highest replication
    /// sequence this session has been acknowledged.
    acked: Mutex<HashMap<String, u64>>,
    /// Bounded-staleness budget for reads (`None`: a lagging fleet is
    /// surfaced immediately).
    staleness_budget_ns: Option<u64>,
    gauges: Arc<ClusterGauges>,
}

impl ClusterClient {
    /// Creates a client over `net` keeping `copies` total copies per
    /// file. `staleness_ms` bounds how long a read may wait for a
    /// lagging owner to catch up to the session's own writes.
    pub fn new(net: Network, copies: usize, staleness_ms: Option<u64>) -> ClusterClient {
        ClusterClient {
            net,
            placement: Mutex::new(Placement::new(copies)),
            acked: Mutex::new(HashMap::new()),
            staleness_budget_ns: staleness_ms.map(|ms| ms.saturating_mul(1_000_000)),
            gauges: Arc::new(ClusterGauges::default()),
        }
    }

    /// Shares `gauges` as the client's metrics sink (e.g. the world
    /// telemetry hub's cluster gauges).
    pub fn with_gauges(mut self, gauges: Arc<ClusterGauges>) -> ClusterClient {
        self.gauges = gauges;
        self
    }

    /// The gauges this client feeds.
    pub fn gauges(&self) -> &Arc<ClusterGauges> {
        &self.gauges
    }

    /// Adds a member service to the fleet (placement rebalances
    /// deterministically; at most `1/N` of keys move).
    pub fn add_node(&self, name: &str) {
        let mut placement = self.placement.lock();
        placement.add_node(name);
        self.gauges.membership(placement.nodes().len() as u64);
    }

    /// Removes a member service from the fleet.
    pub fn remove_node(&self, name: &str) {
        let mut placement = self.placement.lock();
        placement.remove_node(name);
        self.gauges.membership(placement.nodes().len() as u64);
    }

    /// The current owner list for `path`: `[primary, replicas...]`.
    pub fn owners(&self, path: &str) -> Vec<String> {
        self.placement.lock().owners(path)
    }

    /// The session's read-your-writes floor for `path` (0 when this
    /// session has not written it).
    pub fn acked_seq(&self, path: &str) -> u64 {
        *self.acked.lock().get(path).unwrap_or(&0)
    }

    fn client_for(&self, node: &str) -> FileClient {
        FileClient::new(self.net.clone(), node)
    }

    /// Writes `data` at `offset`: acknowledged by the first owner in
    /// placement order (normally the primary) whose copy has caught up
    /// to this session's acknowledged floor, then fanned out to the
    /// remaining owners as replication casts carrying the acknowledged
    /// sequence. Sending the floor with the ack keeps sequence
    /// allocation monotonic across failover: an owner behind the floor
    /// refuses (it would re-issue an already-acknowledged sequence) and
    /// the write moves on to a caught-up owner. Returns bytes written.
    ///
    /// # Errors
    ///
    /// The last owner's transport fault when none is reachable, or
    /// [`NetError::Rejected`] when every reachable owner is behind the
    /// session's floor.
    pub fn write(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<u64> {
        let owners = self.owners(path);
        if owners.is_empty() {
            return Err(NetError::ServiceNotFound("empty cluster".to_owned()));
        }
        let floor = self.acked_seq(path);
        let mut last_err = None;
        for (idx, owner) in owners.iter().enumerate() {
            match self.client_for(owner).put_acked(path, offset, data, floor) {
                Ok((n, seq)) => {
                    let mut acked = self.acked.lock();
                    let floor = acked.entry(path.to_owned()).or_insert(0);
                    *floor = (*floor).max(seq);
                    drop(acked);
                    let mut failed = 0u64;
                    let others = owners
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != idx)
                        .map(|(_, o)| o);
                    let mut fanned = 0u64;
                    for other in others {
                        fanned += 1;
                        if self
                            .client_for(other)
                            .replicate(path, offset, seq, data)
                            .is_err()
                        {
                            failed += 1;
                        }
                    }
                    self.gauges.write(fanned, failed);
                    return Ok(n);
                }
                // A rejection here is a lagging copy refusing to
                // allocate a sequence behind the session's floor —
                // failover-worthy, like a transport fault.
                Err(e) if failover_worthy(&e) || matches!(e, NetError::Rejected(_)) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("at least one owner attempted"))
    }

    /// Reads up to `len` bytes at `offset` from the first owner (in
    /// placement order) whose copy has caught up to this session's
    /// acknowledged writes, waiting out replication lag within the
    /// staleness budget.
    ///
    /// # Errors
    ///
    /// A transport fault when no owner is reachable; [`NetError::
    /// Rejected`] when reachable owners stayed behind the session's
    /// sequence past the staleness budget.
    pub fn read(&self, path: &str, offset: u64, len: usize) -> afs_net::Result<Vec<u8>> {
        let required = self.acked_seq(path);
        let mut budget = self.staleness_budget_ns.unwrap_or(0);
        loop {
            let owners = self.owners(path);
            if owners.is_empty() {
                return Err(NetError::ServiceNotFound("empty cluster".to_owned()));
            }
            let mut last_err = None;
            let mut missing = None;
            let mut behind = 0usize;
            for (idx, owner) in owners.iter().enumerate() {
                let client = self.client_for(owner);
                match client.stat(path) {
                    Ok(stat) if stat.version >= required => {
                        // The stat said fresh, but the get itself can
                        // still hit a transport fault (the owner died
                        // in between): fail over to the remaining
                        // owners like any other fault.
                        match client.get(path, offset, len) {
                            Ok(data) => {
                                self.gauges.read(idx != 0);
                                return Ok(data);
                            }
                            Err(e) if failover_worthy(&e) => last_err = Some(e),
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(_) => behind += 1,
                    // A rejected stat means this owner holds no copy.
                    // With a non-zero floor that is replication lag (a
                    // joiner the casts have not caught up) — wait for
                    // it. With no floor the file may simply live on a
                    // later owner (written by another session): keep
                    // walking, and only surface the rejection if no
                    // owner serves the read.
                    Err(e @ NetError::Rejected(_)) => {
                        if required > 0 {
                            behind += 1;
                        } else {
                            missing = Some(e);
                        }
                    }
                    Err(e) if failover_worthy(&e) => last_err = Some(e),
                    Err(e) => return Err(e),
                }
            }
            if behind == 0 {
                // No owner is lagging: the failure is a transport fault
                // or a genuinely absent file, not staleness — surface
                // it rather than burning the staleness budget.
                return Err(last_err.or(missing).expect("owners existed"));
            }
            // Every reachable owner is behind the session's writes. Burn
            // bounded-staleness budget and re-poll; once it is spent the
            // lag becomes the application's problem — bounded, never
            // silent.
            if budget < STALE_WAIT_STEP_NS {
                self.gauges.stale_reject();
                return Err(NetError::Rejected(format!(
                    "staleness bound exceeded for {path}: no replica at seq {required}"
                )));
            }
            budget -= STALE_WAIT_STEP_NS;
            self.gauges.stale_wait();
            afs_sim::clock::advance(STALE_WAIT_STEP_NS);
        }
    }

    /// Length and version of the freshest reachable copy of `path`,
    /// walking owners in placement order.
    ///
    /// # Errors
    ///
    /// A transport fault when no owner is reachable.
    pub fn stat(&self, path: &str) -> afs_net::Result<crate::RemoteStat> {
        let owners = self.owners(path);
        if owners.is_empty() {
            return Err(NetError::ServiceNotFound("empty cluster".to_owned()));
        }
        let mut best: Option<crate::RemoteStat> = None;
        let mut last_err = None;
        for owner in &owners {
            match self.client_for(owner).stat(path) {
                Ok(stat) => {
                    best = Some(match best {
                        Some(b) if b.version >= stat.version => b,
                        _ => stat,
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some(stat) => Ok(stat),
            None => Err(last_err.expect("owners existed")),
        }
    }
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("nodes", &self.placement.lock().nodes().len())
            .field("copies", &self.placement.lock().copies())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileServer;
    use afs_net::Service;
    use afs_sim::CostModel;

    fn fleet(n: usize) -> (Network, Vec<Arc<FileServer>>, ClusterClient) {
        let net = Network::new(CostModel::free());
        let mut servers = Vec::new();
        let client = ClusterClient::new(net.clone(), 2, Some(10));
        for i in 0..n {
            let name = format!("files-{i}");
            let server = FileServer::new();
            net.register(&name, Arc::clone(&server) as Arc<dyn Service>);
            client.add_node(&name);
            servers.push(server);
        }
        (net, servers, client)
    }

    #[test]
    fn write_acks_on_primary_and_replicates() {
        let (_net, servers, client) = fleet(3);
        let path = "/data/a.af";
        client.write(path, 0, b"hello").expect("write");
        assert_eq!(client.acked_seq(path), 1);
        let owners = client.owners(path);
        assert_eq!(owners.len(), 2);
        // Both owners hold the bytes at the same version; the third
        // server holds nothing.
        let by_name = |name: &str| {
            servers[name
                .strip_prefix("files-")
                .and_then(|s| s.parse::<usize>().ok())
                .expect("node index")]
            .clone()
        };
        for owner in &owners {
            assert_eq!(by_name(owner).version(path), 1, "{owner}");
        }
        let outsiders: Vec<_> = (0..3)
            .map(|i| format!("files-{i}"))
            .filter(|n| !owners.contains(n))
            .collect();
        for outsider in outsiders {
            assert_eq!(by_name(&outsider).version(path), 0, "{outsider}");
        }
        assert_eq!(client.read(path, 0, 5).expect("read"), b"hello");
        let snap = client.gauges().snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.replications, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.read_failovers, 0);
    }

    #[test]
    fn read_your_writes_survives_primary_failure() {
        let (net, _servers, client) = fleet(3);
        let path = "/data/b.af";
        client.write(path, 0, b"durable").expect("write");
        let primary = client.owners(path)[0].clone();
        net.plan(&primary).expect("plan").set_partitioned(true);
        // The replica acknowledged the same sequence, so the session's
        // floor is satisfied by the failover copy.
        assert_eq!(client.read(path, 0, 7).expect("failover read"), b"durable");
        assert!(client.gauges().snapshot().read_failovers >= 1);
    }

    #[test]
    fn lagging_replica_is_rejected_within_the_budget() {
        let _clock = afs_sim::clock::install(0);
        let (net, _servers, client) = fleet(3);
        let path = "/data/c.af";
        client.write(path, 0, b"v1").expect("warm");
        let owners = client.owners(path);
        // The replica misses the next write's cast, then the primary
        // dies: every reachable copy is behind the session's ack.
        net.plan(&owners[1]).expect("plan").drop_next(1);
        client
            .write(path, 0, b"v2")
            .expect("write acked by primary");
        assert_eq!(client.acked_seq(path), 2);
        net.plan(&owners[0]).expect("plan").set_partitioned(true);
        let err = client.read(path, 0, 2).expect_err("bounded staleness");
        assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
        let snap = client.gauges().snapshot();
        assert!(snap.stale_waits >= 1, "{snap:?}");
        assert_eq!(snap.stale_rejects, 1);
        // The budget was burned in virtual time, not wall-clock.
        assert!(afs_sim::clock::now() >= 10_000_000);
    }

    #[test]
    fn write_failover_never_acks_on_a_lagging_replica() {
        let (net, _servers, client) = fleet(3);
        let path = "/data/s.af";
        client.write(path, 0, b"w1").expect("w1");
        let owners = client.owners(path);
        // The replica misses the second write's cast, then the primary
        // partitions: the only reachable owner is behind the floor.
        net.plan(&owners[1]).expect("plan").drop_next(1);
        client.write(path, 0, b"w2").expect("w2");
        assert_eq!(client.acked_seq(path), 2);
        net.plan(&owners[0]).expect("plan").set_partitioned(true);
        // A failover ack on the laggard would re-issue seq 2 — a
        // sequence the session already holds — so the write must fail
        // rather than split the sequence space.
        let err = client
            .write(path, 0, b"w3")
            .expect_err("lagging ack refused");
        assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
        assert_eq!(client.acked_seq(path), 2, "floor unmoved by the failure");
    }

    #[test]
    fn write_fails_over_to_a_caught_up_replica() {
        let (net, _servers, client) = fleet(3);
        let path = "/data/t.af";
        client.write(path, 0, b"w1").expect("w1");
        let owners = client.owners(path);
        net.plan(&owners[0]).expect("plan").set_partitioned(true);
        // The replica holds seq 1 = the session's floor, so it may
        // allocate seq 2 and acknowledge.
        client.write(path, 0, b"w2").expect("failover write");
        assert_eq!(client.acked_seq(path), 2);
        assert_eq!(client.read(path, 0, 2).expect("read"), b"w2");
    }

    #[test]
    fn read_fails_over_when_the_get_itself_faults() {
        use std::sync::atomic::{AtomicBool, Ordering};

        // Wraps a file server, failing the next OP_GET (op byte 1)
        // with a transport fault — the owner "dies" between the stat
        // and the get.
        struct GetFlaky {
            inner: Arc<FileServer>,
            fail_next_get: Arc<AtomicBool>,
        }
        impl Service for GetFlaky {
            fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
                if request.first() == Some(&1) && self.fail_next_get.swap(false, Ordering::SeqCst) {
                    return Err(NetError::Dropped("get lost in flight".to_owned()));
                }
                self.inner.handle(request)
            }
        }

        let net = Network::new(CostModel::free());
        let fail_next_get = Arc::new(AtomicBool::new(false));
        let client = ClusterClient::new(net.clone(), 2, Some(10));
        for i in 0..3 {
            let wrapped = GetFlaky {
                inner: FileServer::new(),
                fail_next_get: Arc::clone(&fail_next_get),
            };
            net.register(&format!("files-{i}"), Arc::new(wrapped) as Arc<dyn Service>);
            client.add_node(&format!("files-{i}"));
        }
        let path = "/data/g.af";
        client.write(path, 0, b"payload").expect("write");
        fail_next_get.store(true, Ordering::SeqCst);
        // The primary's stat answers fresh, then its get faults: the
        // read must fail over to the replica, not surface the fault.
        assert_eq!(client.read(path, 0, 7).expect("read"), b"payload");
        assert!(client.gauges().snapshot().read_failovers >= 1);
    }

    #[test]
    fn fresh_session_read_walks_past_owners_without_a_copy() {
        let (net, _servers, client) = fleet(3);
        let paths: Vec<String> = (0..64).map(|i| format!("/data/j{i}.af")).collect();
        for path in &paths {
            client.write(path, 0, b"seeded").expect("write");
        }
        let joiner = FileServer::new();
        net.register("files-3", joiner as Arc<dyn Service>);
        client.add_node("files-3");
        let moved = paths
            .iter()
            .find(|p| client.owners(p)[0] == "files-3")
            .expect("some path's primary moved to the joiner");
        // A session that never wrote the path (floor 0) reads it: the
        // new primary holds no copy and rejects the stat — the walk
        // must continue to the owner that has the bytes instead of
        // surfacing the joiner's rejection.
        let fresh = ClusterClient::new(net.clone(), 2, Some(10));
        for i in 0..4 {
            fresh.add_node(&format!("files-{i}"));
        }
        assert_eq!(
            fresh.read(moved, 0, 6).expect("read via replica"),
            b"seeded"
        );
        assert!(fresh.gauges().snapshot().read_failovers >= 1);
        // A path no owner holds still rejects promptly — absence is
        // not staleness, no budget is burned.
        let err = fresh.read("/data/never.af", 0, 4).expect_err("absent");
        assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
        assert_eq!(fresh.gauges().snapshot().stale_waits, 0);
    }

    #[test]
    fn membership_change_keeps_files_readable() {
        let (net, _servers, client) = fleet(3);
        let paths: Vec<String> = (0..40).map(|i| format!("/data/m{i}.af")).collect();
        for path in &paths {
            client.write(path, 0, path.as_bytes()).expect("seed");
        }
        let joiner = FileServer::new();
        net.register("files-3", joiner as Arc<dyn Service>);
        client.add_node("files-3");
        // Keys that moved to the joiner read through replicas (their old
        // primary is still an owner or holds the only copy); nothing is
        // lost, reads stay within the session's floor.
        for path in &paths {
            let got = client.read(path, 0, path.len());
            // A key whose *entire* owner set rotated away from the old
            // copies would be unreadable; with copies=2 and one joiner
            // at most one owner slot changes, so the old primary or old
            // replica is still in the set.
            assert_eq!(got.expect("read"), path.as_bytes(), "{path}");
        }
        assert_eq!(client.gauges().snapshot().rebalances, 4);
    }
}
