//! POP3-style mailboxes and an SMTP-style relay.
//!
//! §3 of the paper: "an inbox file of an E-mail program can be such that
//! reading it causes new messages to be retrieved possibly from multiple
//! remote POP servers", and on the distribution side "the outbox-file can
//! be programmed to send email to a particular recipient, every time some
//! data is written to it … the sentinel process parses the data written to
//! the file to extract the 'To' addresses".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{Network, Service, WireWriter};

use crate::{check_status, err_response, ok_response};

const OP_STAT: u8 = 1;
const OP_LIST: u8 = 2;
const OP_RETR: u8 = 3;
const OP_DELE: u8 = 4;
const OP_SEND: u8 = 10;

/// One stored e-mail message. Plain data; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Server-assigned id, unique per store.
    pub id: u64,
    /// Sender address.
    pub from: String,
    /// Recipient address this copy was delivered to.
    pub to: String,
    /// Subject line.
    pub subject: String,
    /// Body text.
    pub body: String,
}

/// The shared mail store behind one or more POP servers and one SMTP
/// relay. Cloning shares the store.
#[derive(Debug, Clone, Default)]
pub struct MailStore {
    boxes: Arc<Mutex<HashMap<String, Vec<Message>>>>,
    next_id: Arc<AtomicU64>,
}

impl MailStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MailStore::default()
    }

    /// Delivers one message copy to `to`'s mailbox, returning its id.
    pub fn deliver(&self, from: &str, to: &str, subject: &str, body: &str) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.boxes
            .lock()
            .entry(to.to_owned())
            .or_default()
            .push(Message {
                id,
                from: from.to_owned(),
                to: to.to_owned(),
                subject: subject.to_owned(),
                body: body.to_owned(),
            });
        id
    }

    /// Number of messages waiting for `user`.
    pub fn count(&self, user: &str) -> usize {
        self.boxes.lock().get(user).map_or(0, Vec::len)
    }

    fn with_box<R>(&self, user: &str, f: impl FnOnce(&mut Vec<Message>) -> R) -> R {
        f(self.boxes.lock().entry(user.to_owned()).or_default())
    }
}

/// A POP3-style server over a [`MailStore`].
pub struct PopServer {
    store: MailStore,
}

impl PopServer {
    /// Creates a server over `store`.
    pub fn new(store: MailStore) -> Arc<Self> {
        Arc::new(PopServer { store })
    }
}

impl Service for PopServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        let user = r.str()?.to_owned();
        Ok(match op {
            OP_STAT => {
                let (count, octets) = self.store.with_box(&user, |mbox| {
                    (
                        mbox.len() as u64,
                        mbox.iter().map(|m| m.body.len() as u64).sum::<u64>(),
                    )
                });
                ok_response(|w| {
                    w.u64(count).u64(octets);
                })
            }
            OP_LIST => {
                let ids: Vec<u64> = self
                    .store
                    .with_box(&user, |mbox| mbox.iter().map(|m| m.id).collect());
                ok_response(|w| {
                    w.seq(ids.len());
                    for id in ids {
                        w.u64(id);
                    }
                })
            }
            OP_RETR => {
                let id = r.u64()?;
                let msg = self
                    .store
                    .with_box(&user, |mbox| mbox.iter().find(|m| m.id == id).cloned());
                match msg {
                    Some(m) => ok_response(|w| {
                        w.u64(m.id)
                            .str(&m.from)
                            .str(&m.to)
                            .str(&m.subject)
                            .str(&m.body);
                    }),
                    None => err_response("no such message"),
                }
            }
            OP_DELE => {
                let id = r.u64()?;
                let removed = self.store.with_box(&user, |mbox| {
                    let before = mbox.len();
                    mbox.retain(|m| m.id != id);
                    before != mbox.len()
                });
                if removed {
                    ok_response(|_| {})
                } else {
                    err_response("no such message")
                }
            }
            t => err_response(&format!("unknown pop op {t}")),
        })
    }
}

/// An SMTP-style relay delivering into a [`MailStore`].
pub struct SmtpServer {
    store: MailStore,
}

impl SmtpServer {
    /// Creates a relay over `store`.
    pub fn new(store: MailStore) -> Arc<Self> {
        Arc::new(SmtpServer { store })
    }
}

impl Service for SmtpServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        if op != OP_SEND {
            return Ok(err_response(&format!("unknown smtp op {op}")));
        }
        let from = r.str()?.to_owned();
        let n = r.seq()?;
        // The count is untrusted wire data: clamp the reservation (a
        // bogus huge count would abort on capacity overflow); the decode
        // loop below still fails cleanly when the bytes run out.
        let mut recipients = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            recipients.push(r.str()?.to_owned());
        }
        let subject = r.str()?.to_owned();
        let body = r.str()?.to_owned();
        if recipients.is_empty() {
            return Ok(err_response("no recipients"));
        }
        for to in &recipients {
            self.store.deliver(&from, to, &subject, &body);
        }
        Ok(ok_response(|w| {
            w.u64(recipients.len() as u64);
        }))
    }
}

/// Typed client speaking both POP (to one or more servers) and SMTP.
#[derive(Debug, Clone)]
pub struct MailClient {
    net: Network,
}

impl MailClient {
    /// Creates a client over `net`.
    pub fn new(net: Network) -> Self {
        MailClient { net }
    }

    /// POP `STAT`: message count and total octets for `user` on `server`.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn stat(&self, server: &str, user: &str) -> afs_net::Result<(u64, u64)> {
        let mut w = WireWriter::new();
        w.u8(OP_STAT).str(user);
        let resp = self.net.rpc(server, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok((r.u64()?, r.u64()?))
    }

    /// POP `LIST`: ids of waiting messages.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn list(&self, server: &str, user: &str) -> afs_net::Result<Vec<u64>> {
        let mut w = WireWriter::new();
        w.u8(OP_LIST).str(user);
        let resp = self.net.rpc(server, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        (0..n).map(|_| Ok(r.u64()?)).collect()
    }

    /// POP `RETR`: fetches one message.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] for unknown ids.
    pub fn retrieve(&self, server: &str, user: &str, id: u64) -> afs_net::Result<Message> {
        let mut w = WireWriter::new();
        w.u8(OP_RETR).str(user).u64(id);
        let resp = self.net.rpc(server, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(Message {
            id: r.u64()?,
            from: r.str()?.to_owned(),
            to: r.str()?.to_owned(),
            subject: r.str()?.to_owned(),
            body: r.str()?.to_owned(),
        })
    }

    /// POP `DELE`: deletes one message.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] for unknown ids.
    pub fn delete(&self, server: &str, user: &str, id: u64) -> afs_net::Result<()> {
        let mut w = WireWriter::new();
        w.u8(OP_DELE).str(user).u64(id);
        let resp = self.net.rpc(server, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// SMTP send to every recipient; returns copies delivered.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if the recipient list is empty.
    pub fn send(
        &self,
        server: &str,
        from: &str,
        recipients: &[&str],
        subject: &str,
        body: &str,
    ) -> afs_net::Result<u64> {
        let mut w = WireWriter::new();
        w.u8(OP_SEND).str(from).seq(recipients.len());
        for r in recipients {
            w.str(r);
        }
        w.str(subject).str(body);
        let resp = self.net.rpc(server, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (MailStore, MailClient, Network) {
        let net = Network::new(CostModel::free());
        let store = MailStore::new();
        net.register("pop1", PopServer::new(store.clone()) as Arc<dyn Service>);
        net.register("smtp", SmtpServer::new(store.clone()) as Arc<dyn Service>);
        (store, MailClient::new(net.clone()), net)
    }

    #[test]
    fn send_then_pop_roundtrip() {
        let (_store, client, _net) = setup();
        let delivered = client
            .send("smtp", "alice@example", &["bob@example"], "hi", "hello bob")
            .expect("send");
        assert_eq!(delivered, 1);
        let ids = client.list("pop1", "bob@example").expect("list");
        assert_eq!(ids.len(), 1);
        let msg = client
            .retrieve("pop1", "bob@example", ids[0])
            .expect("retr");
        assert_eq!(msg.from, "alice@example");
        assert_eq!(msg.subject, "hi");
        assert_eq!(msg.body, "hello bob");
    }

    #[test]
    fn multiple_recipients_get_copies() {
        let (store, client, _net) = setup();
        client
            .send("smtp", "a@x", &["b@x", "c@x", "d@x"], "s", "body")
            .expect("send");
        assert_eq!(store.count("b@x"), 1);
        assert_eq!(store.count("c@x"), 1);
        assert_eq!(store.count("d@x"), 1);
    }

    #[test]
    fn stat_counts_messages_and_octets() {
        let (store, client, _net) = setup();
        store.deliver("a@x", "u@x", "s1", "12345");
        store.deliver("a@x", "u@x", "s2", "67");
        let (count, octets) = client.stat("pop1", "u@x").expect("stat");
        assert_eq!(count, 2);
        assert_eq!(octets, 7);
    }

    #[test]
    fn delete_removes_message() {
        let (store, client, _net) = setup();
        let id = store.deliver("a@x", "u@x", "s", "b");
        client.delete("pop1", "u@x", id).expect("dele");
        assert_eq!(store.count("u@x"), 0);
        assert!(
            client.delete("pop1", "u@x", id).is_err(),
            "second delete fails"
        );
    }

    #[test]
    fn retrieve_unknown_id_rejected() {
        let (_store, client, _net) = setup();
        assert!(client.retrieve("pop1", "u@x", 999).is_err());
    }

    #[test]
    fn empty_recipient_list_rejected() {
        let (_store, client, _net) = setup();
        assert!(client.send("smtp", "a@x", &[], "s", "b").is_err());
    }

    #[test]
    fn multiple_pop_servers_share_nothing_unless_same_store() {
        let (_store, client, net) = setup();
        let other = MailStore::new();
        other.deliver("x@y", "u@z", "s", "b");
        net.register("pop2", PopServer::new(other) as Arc<dyn Service>);
        assert_eq!(client.list("pop1", "u@z").expect("pop1").len(), 0);
        assert_eq!(client.list("pop2", "u@z").expect("pop2").len(), 1);
    }
}
