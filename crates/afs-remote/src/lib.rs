#![warn(missing_docs)]
//! Simulated remote information sources.
//!
//! Section 3 of the paper grounds active files in concrete distributed
//! scenarios: fetching remote files "using a standard protocol (e.g., FTP
//! or HTTP)", merging "multiple remote files into a single local file", an
//! inbox whose reads retrieve messages "possibly from multiple remote POP
//! servers", an outbox that mails whatever is written to it, "the latest
//! stock quotes (downloaded by the sentinel from a server)", a file-based
//! view of the Windows registry, and searches over "a collection of
//! distributed databases" whose changes the intermediary approach cannot
//! see.
//!
//! This crate implements each of those sources as an [`afs_net::Service`]
//! with a small length-prefixed wire protocol, plus a typed client for
//! sentinel code:
//!
//! | Source                     | Server                       | Client            |
//! |----------------------------|------------------------------|-------------------|
//! | FTP/HTTP-style file server | [`FileServer`]               | [`FileClient`]    |
//! | POP3 mailbox + SMTP relay  | [`PopServer`], [`SmtpServer`]| [`MailClient`]    |
//! | Stock quote feed           | [`QuoteServer`]              | [`QuoteClient`]   |
//! | System registry            | [`RegistryServer`]           | [`RegistryClient`]|
//! | Key-value database         | [`DbServer`]                 | [`DbClient`]      |
//!
//! Servers are deterministic (the quote feed is a seeded random walk) so
//! experiments replay exactly.

pub mod cluster;
pub mod db;
pub mod file_server;
pub mod mail;
pub mod quotes;
pub mod registry;

pub use cluster::ClusterClient;
pub use db::{DbClient, DbEvent, DbOp, DbServer};
pub use file_server::{FileClient, FileServer, RemoteStat};
pub use mail::{MailClient, MailStore, Message, PopServer, SmtpServer};
pub use quotes::{Quote, QuoteClient, QuoteServer};
pub use registry::{RegistryClient, RegistryServer, RegistryValue};

/// Status byte prefixed to every response: request succeeded.
pub(crate) const STATUS_OK: u8 = 0;
/// Status byte prefixed to every response: request failed; a UTF-8 error
/// message follows.
pub(crate) const STATUS_ERR: u8 = 1;

pub(crate) fn ok_response(body: impl FnOnce(&mut afs_net::WireWriter)) -> Vec<u8> {
    let mut w = afs_net::WireWriter::new();
    w.u8(STATUS_OK);
    body(&mut w);
    w.finish()
}

pub(crate) fn err_response(msg: &str) -> Vec<u8> {
    let mut w = afs_net::WireWriter::new();
    w.u8(STATUS_ERR).str(msg);
    w.finish()
}

/// Decodes the status byte of a response, turning server-side failures
/// into [`afs_net::NetError::Rejected`].
pub(crate) fn check_status<'a>(
    response: &'a [u8],
) -> Result<afs_net::WireReader<'a>, afs_net::NetError> {
    let mut r = afs_net::WireReader::new(response);
    match r.u8()? {
        STATUS_OK => Ok(r),
        STATUS_ERR => {
            let msg = r.str()?.to_owned();
            Err(afs_net::NetError::Rejected(msg))
        }
        t => Err(afs_net::NetError::Malformed(afs_net::WireError::BadTag(t))),
    }
}
