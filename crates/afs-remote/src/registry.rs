//! A Windows-registry-like hierarchical configuration store.
//!
//! §3: "Filtering can also be used to provide a file-based interface to
//! the Windows system registry … The sentinel checks the registry,
//! providing a simplified version (e.g., a plain text file) to the client
//! application. Any modifications by the client application can in turn be
//! parsed by the sentinel process and translated into appropriate registry
//! modifications."
//!
//! Keys are `/`-separated paths under root hives (e.g.
//! `HKLM/Software/Afs`); each key holds named values.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{Network, Service, WireWriter};

use crate::{check_status, err_response, ok_response};

const OP_GET_VALUE: u8 = 1;
const OP_SET_VALUE: u8 = 2;
const OP_DELETE_VALUE: u8 = 3;
const OP_ENUM_KEYS: u8 = 4;
const OP_ENUM_VALUES: u8 = 5;
const OP_CREATE_KEY: u8 = 6;
const OP_DELETE_KEY: u8 = 7;

const TAG_STR: u8 = 1;
const TAG_U32: u8 = 2;
const TAG_BIN: u8 = 3;

/// A registry value (`REG_SZ`, `REG_DWORD`, `REG_BINARY`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryValue {
    /// A string value.
    Str(String),
    /// A 32-bit integer value.
    U32(u32),
    /// An opaque binary value.
    Bin(Vec<u8>),
}

impl RegistryValue {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RegistryValue::Str(s) => {
                w.u8(TAG_STR).str(s);
            }
            RegistryValue::U32(v) => {
                w.u8(TAG_U32).u32(*v);
            }
            RegistryValue::Bin(b) => {
                w.u8(TAG_BIN).bytes(b);
            }
        }
    }

    fn decode(r: &mut afs_net::WireReader<'_>) -> Result<Self, afs_net::WireError> {
        match r.u8()? {
            TAG_STR => Ok(RegistryValue::Str(r.str()?.to_owned())),
            TAG_U32 => Ok(RegistryValue::U32(r.u32()?)),
            TAG_BIN => Ok(RegistryValue::Bin(r.bytes()?.to_vec())),
            t => Err(afs_net::WireError::BadTag(t)),
        }
    }
}

#[derive(Debug, Default)]
struct Key {
    values: BTreeMap<String, RegistryValue>,
    subkeys: BTreeMap<String, Key>,
}

impl Key {
    fn walk(&self, path: &str) -> Option<&Key> {
        let mut cur = self;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur = cur.subkeys.get(comp)?;
        }
        Some(cur)
    }

    fn walk_mut(&mut self, path: &str, create: bool) -> Option<&mut Key> {
        let mut cur = self;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            if create {
                cur = cur.subkeys.entry(comp.to_owned()).or_default();
            } else {
                cur = cur.subkeys.get_mut(comp)?;
            }
        }
        Some(cur)
    }
}

/// The registry service.
pub struct RegistryServer {
    root: Mutex<Key>,
}

impl RegistryServer {
    /// Creates an empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(RegistryServer {
            root: Mutex::new(Key::default()),
        })
    }

    /// Sets a value directly (experiment setup).
    pub fn set(&self, key: &str, name: &str, value: RegistryValue) {
        let mut root = self.root.lock();
        let k = root.walk_mut(key, true).expect("create walks infallibly");
        k.values.insert(name.to_owned(), value);
    }

    /// Reads a value directly (test/diagnostic access).
    pub fn get(&self, key: &str, name: &str) -> Option<RegistryValue> {
        self.root
            .lock()
            .walk(key)
            .and_then(|k| k.values.get(name).cloned())
    }
}

impl Service for RegistryServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        let key_path = r.str()?.to_owned();
        let mut root = self.root.lock();
        Ok(match op {
            OP_GET_VALUE => {
                let name = r.str()?.to_owned();
                match root.walk(&key_path).and_then(|k| k.values.get(&name)) {
                    Some(v) => ok_response(|w| v.encode(w)),
                    None => err_response("value not found"),
                }
            }
            OP_SET_VALUE => {
                let name = r.str()?.to_owned();
                let value = RegistryValue::decode(&mut r)?;
                let key = root
                    .walk_mut(&key_path, true)
                    .expect("create walks infallibly");
                key.values.insert(name, value);
                ok_response(|_| {})
            }
            OP_DELETE_VALUE => {
                let name = r.str()?.to_owned();
                match root.walk_mut(&key_path, false) {
                    Some(k) => {
                        if k.values.remove(&name).is_some() {
                            ok_response(|_| {})
                        } else {
                            err_response("value not found")
                        }
                    }
                    None => err_response("value not found"),
                }
            }
            OP_ENUM_KEYS => match root.walk(&key_path) {
                Some(k) => ok_response(|w| {
                    w.seq(k.subkeys.len());
                    for name in k.subkeys.keys() {
                        w.str(name);
                    }
                }),
                None => err_response("key not found"),
            },
            OP_ENUM_VALUES => match root.walk(&key_path) {
                Some(k) => ok_response(|w| {
                    w.seq(k.values.len());
                    for (name, v) in &k.values {
                        w.str(name);
                        v.encode(w);
                    }
                }),
                None => err_response("key not found"),
            },
            OP_CREATE_KEY => {
                root.walk_mut(&key_path, true);
                ok_response(|_| {})
            }
            OP_DELETE_KEY => {
                let Some((parent, leaf)) = key_path.rsplit_once('/') else {
                    return Ok(match root.subkeys.remove(&key_path) {
                        Some(_) => ok_response(|_| {}),
                        None => err_response("key not found"),
                    });
                };
                match root.walk_mut(parent, false) {
                    Some(k) => {
                        if k.subkeys.remove(leaf).is_some() {
                            ok_response(|_| {})
                        } else {
                            err_response("key not found")
                        }
                    }
                    None => err_response("key not found"),
                }
            }
            t => err_response(&format!("unknown registry op {t}")),
        })
    }
}

/// Typed client for [`RegistryServer`].
#[derive(Debug, Clone)]
pub struct RegistryClient {
    net: Network,
    service: String,
}

impl RegistryClient {
    /// Creates a client for `service` over `net`.
    pub fn new(net: Network, service: &str) -> Self {
        RegistryClient {
            net,
            service: service.to_owned(),
        }
    }

    /// Reads one value.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if key or value is missing.
    pub fn get_value(&self, key: &str, name: &str) -> afs_net::Result<RegistryValue> {
        let mut w = WireWriter::new();
        w.u8(OP_GET_VALUE).str(key).str(name);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(RegistryValue::decode(&mut r)?)
    }

    /// Sets one value, creating the key path as needed.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn set_value(&self, key: &str, name: &str, value: &RegistryValue) -> afs_net::Result<()> {
        let mut w = WireWriter::new();
        w.u8(OP_SET_VALUE).str(key).str(name);
        value.encode(&mut w);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// Deletes one value.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if missing.
    pub fn delete_value(&self, key: &str, name: &str) -> afs_net::Result<()> {
        let mut w = WireWriter::new();
        w.u8(OP_DELETE_VALUE).str(key).str(name);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// Lists subkey names of `key`.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if the key is missing.
    pub fn enum_keys(&self, key: &str) -> afs_net::Result<Vec<String>> {
        let mut w = WireWriter::new();
        w.u8(OP_ENUM_KEYS).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        (0..n).map(|_| Ok(r.str()?.to_owned())).collect()
    }

    /// Lists `(name, value)` pairs of `key`.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if the key is missing.
    pub fn enum_values(&self, key: &str) -> afs_net::Result<Vec<(String, RegistryValue)>> {
        let mut w = WireWriter::new();
        w.u8(OP_ENUM_VALUES).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = r.str()?.to_owned();
            let value = RegistryValue::decode(&mut r)?;
            out.push((name, value));
        }
        Ok(out)
    }

    /// Creates a key path.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn create_key(&self, key: &str) -> afs_net::Result<()> {
        let mut w = WireWriter::new();
        w.u8(OP_CREATE_KEY).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// Deletes a key (and its subtree).
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if missing.
    pub fn delete_key(&self, key: &str) -> afs_net::Result<()> {
        let mut w = WireWriter::new();
        w.u8(OP_DELETE_KEY).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (Arc<RegistryServer>, RegistryClient) {
        let net = Network::new(CostModel::free());
        let server = RegistryServer::new();
        net.register("registry", Arc::clone(&server) as Arc<dyn Service>);
        (server, RegistryClient::new(net, "registry"))
    }

    #[test]
    fn set_get_roundtrip_all_types() {
        let (_server, client) = setup();
        for (name, value) in [
            ("s", RegistryValue::Str("text".into())),
            ("d", RegistryValue::U32(7)),
            ("b", RegistryValue::Bin(vec![1, 2, 3])),
        ] {
            client
                .set_value("HKLM/Software/Afs", name, &value)
                .expect("set");
            assert_eq!(
                client.get_value("HKLM/Software/Afs", name).expect("get"),
                value
            );
        }
    }

    #[test]
    fn missing_value_rejected() {
        let (_server, client) = setup();
        assert!(client.get_value("HKLM", "nope").is_err());
    }

    #[test]
    fn enum_keys_and_values() {
        let (server, client) = setup();
        server.set("HKLM/A", "v1", RegistryValue::U32(1));
        server.set("HKLM/B", "v2", RegistryValue::U32(2));
        assert_eq!(
            client.enum_keys("HKLM").expect("keys"),
            vec!["A".to_owned(), "B".to_owned()]
        );
        let values = client.enum_values("HKLM/A").expect("values");
        assert_eq!(values, vec![("v1".to_owned(), RegistryValue::U32(1))]);
    }

    #[test]
    fn delete_value_and_key() {
        let (server, client) = setup();
        server.set("HKLM/X", "v", RegistryValue::U32(1));
        client.delete_value("HKLM/X", "v").expect("del value");
        assert!(client.get_value("HKLM/X", "v").is_err());
        client.delete_key("HKLM/X").expect("del key");
        assert!(client.enum_values("HKLM/X").is_err());
    }

    #[test]
    fn create_key_makes_empty_key_visible() {
        let (_server, client) = setup();
        client.create_key("HKCU/Deep/Nested/Key").expect("create");
        assert_eq!(
            client.enum_keys("HKCU/Deep/Nested").expect("keys"),
            vec!["Key".to_owned()]
        );
    }

    #[test]
    fn top_level_key_delete() {
        let (server, client) = setup();
        server.set("Top", "v", RegistryValue::U32(9));
        client.delete_key("Top").expect("delete");
        assert!(client.enum_values("Top").is_err());
    }
}
