//! The FTP/HTTP-style remote file server.
//!
//! "The sentinel accesses the remote file using a standard protocol (e.g.,
//! FTP or HTTP), creates a local copy, and makes the copy available to the
//! client application" (§3, Aggregation). The server stores its files in
//! its own [`Vfs`] instance and keeps a per-file **version counter** so
//! consistency-tracking sentinels can detect remote updates — the ability
//! the paper's intermediary approach lacks.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{NetError, Network, Service, WireWriter};
use afs_telemetry::backend_span;
use afs_vfs::{VPath, Vfs};

use crate::{check_status, err_response, ok_response};

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_APPEND: u8 = 3;
const OP_STAT: u8 = 4;
const OP_LIST: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_REPLACE: u8 = 7;
const OP_PUT_ACK: u8 = 8;
const OP_REPL: u8 = 9;

/// Largest single GET transfer the server satisfies (1 MiB).
pub const MAX_TRANSFER: usize = 1 << 20;

/// Most replication casts held back per path waiting for a sequence
/// gap to fill. Beyond this the newest cast is dropped — safe, because
/// the copy simply stays behind and reads detect that via the version.
const MAX_PENDING_REPL: usize = 256;

/// Held-back replication casts for one path: sequence → `(offset,
/// bytes)`, drained in order as the gaps fill in.
type PendingCasts = BTreeMap<u64, (u64, Vec<u8>)>;

/// Remote file metadata returned by [`FileClient::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStat {
    /// File length in bytes.
    pub len: u64,
    /// Monotonic version, bumped on every mutation.
    pub version: u64,
}

/// A remote file store speaking a GET/PUT/STAT/LIST protocol.
pub struct FileServer {
    vfs: Arc<Vfs>,
    versions: Mutex<HashMap<String, u64>>,
    /// Replication casts that arrived ahead of a sequence gap, held
    /// back until the missing sequences fill in ([`MAX_PENDING_REPL`]
    /// per path).
    pending_repl: Mutex<HashMap<String, PendingCasts>>,
}

impl FileServer {
    /// Creates an empty server.
    pub fn new() -> Arc<Self> {
        Arc::new(FileServer {
            vfs: Arc::new(Vfs::new()),
            versions: Mutex::new(HashMap::new()),
            pending_repl: Mutex::new(HashMap::new()),
        })
    }

    /// Direct (out-of-band) access to the server's file system, used by
    /// tests and examples to seed content or mutate it "behind the
    /// sentinel's back".
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// Seeds a file, creating parent directories. Intended for experiment
    /// setup.
    ///
    /// # Panics
    ///
    /// Panics on invalid paths — setup code should fail loudly.
    pub fn seed(&self, path: &str, data: &[u8]) {
        let vpath = VPath::parse(path).expect("valid seed path");
        if let Some(parent) = vpath.parent() {
            self.vfs.create_dir_all(&parent).expect("seed parents");
        }
        if !self.vfs.is_file(&vpath) {
            self.vfs.create_file(&vpath).expect("seed create");
        }
        self.vfs
            .write_stream_replace(&vpath, data)
            .expect("seed write");
        self.bump(path);
    }

    /// Current version of a path (0 if never written).
    pub fn version(&self, path: &str) -> u64 {
        *self.versions.lock().get(path).unwrap_or(&0)
    }

    fn bump(&self, path: &str) -> u64 {
        let mut versions = self.versions.lock();
        let v = versions.entry(path.to_owned()).or_insert(0);
        *v += 1;
        *v
    }

    /// Applies one replication cast. Bytes apply **only in sequence
    /// order**: a stale or re-delivered cast (`seq <= version`) is
    /// skipped entirely (old bytes never overwrite newer ones), and a
    /// cast that arrived ahead of a gap is held back until the missing
    /// sequences fill in. The version therefore never advances past the
    /// writes this copy actually holds — the invariant the cluster's
    /// read-your-writes floor check relies on: `version >= floor`
    /// implies every acknowledged write up to `floor` is present.
    fn apply_repl(&self, path: &str, offset: u64, seq: u64, data: Vec<u8>) -> Result<u64, String> {
        let vpath = Self::parse(path)?;
        let mut versions = self.versions.lock();
        let v = versions.entry(path.to_owned()).or_insert(0);
        if seq <= *v {
            return Ok(*v);
        }
        let mut pending = self.pending_repl.lock();
        let queue = pending.entry(path.to_owned()).or_default();
        if queue.len() < MAX_PENDING_REPL || queue.contains_key(&seq) {
            queue.insert(seq, (offset, data));
        }
        while let Some((off, bytes)) = queue.remove(&(*v + 1)) {
            self.ensure_file(&vpath)?;
            self.vfs
                .write_stream(&vpath, off, &bytes)
                .map_err(|e| e.to_string())?;
            *v += 1;
        }
        if queue.is_empty() {
            pending.remove(path);
        }
        Ok(*v)
    }

    fn parse(path: &str) -> Result<VPath, String> {
        VPath::parse(path).map_err(|e| e.to_string())
    }

    fn ensure_file(&self, vpath: &VPath) -> Result<(), String> {
        if self.vfs.is_file(vpath) {
            return Ok(());
        }
        if let Some(parent) = vpath.parent() {
            self.vfs
                .create_dir_all(&parent)
                .map_err(|e| e.to_string())?;
        }
        self.vfs.create_file(vpath).map_err(|e| e.to_string())
    }

    fn dispatch(&self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        let reply = match op {
            OP_GET => {
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                // The requested length is untrusted: cap the transfer
                // unit so a bogus request cannot force a giant
                // allocation. Clients split larger reads.
                let len = (r.u32()? as usize).min(MAX_TRANSFER);
                match Self::parse(&path).and_then(|vp| {
                    let mut buf = vec![0u8; len];
                    let n = self
                        .vfs
                        .read_stream(&vp, offset, &mut buf)
                        .map_err(|e| e.to_string())?;
                    buf.truncate(n);
                    Ok(buf)
                }) {
                    Ok(data) => ok_response(|w| {
                        w.bytes(&data);
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_PUT => {
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream(&vp, offset, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(n) => {
                        self.bump(&path);
                        ok_response(|w| {
                            w.u64(n as u64);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_PUT_ACK => {
                // A cluster primary write: same mutation as OP_PUT, but
                // the request carries the session's acknowledged floor
                // and the acknowledgement carries the new version — the
                // replication sequence number the writer fans out to the
                // replicas and remembers for read-your-writes. A copy
                // behind the floor refuses the ack: letting a laggard
                // allocate a sequence would collide with sequences
                // already acknowledged elsewhere (split-brain) and would
                // acknowledge a copy missing earlier acked writes.
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let floor = r.u64()?;
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    let mut versions = self.versions.lock();
                    let v = versions.entry(path.clone()).or_insert(0);
                    if *v < floor {
                        return Err(format!(
                            "copy at version {v} is behind session floor {floor}"
                        ));
                    }
                    self.ensure_file(&vp)?;
                    let n = self
                        .vfs
                        .write_stream(&vp, offset, &data)
                        .map_err(|e| e.to_string())?;
                    *v += 1;
                    Ok((n, *v))
                }) {
                    Ok((n, seq)) => ok_response(|w| {
                        w.u64(n as u64).u64(seq);
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_REPL => {
                // Replication apply: the write plus the primary's
                // sequence number, applied strictly in sequence order
                // (stale casts skipped, gap casts held back) — see
                // [`FileServer::apply_repl`].
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let seq = r.u64()?;
                let data = r.bytes()?.to_vec();
                match self.apply_repl(&path, offset, seq, data) {
                    Ok(version) => ok_response(|w| {
                        w.u64(version);
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_APPEND => {
                let path = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    let len = self.vfs.stream_len(&vp).map_err(|e| e.to_string())?;
                    self.vfs
                        .write_stream(&vp, len, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(n) => {
                        self.bump(&path);
                        ok_response(|w| {
                            w.u64(n as u64);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_REPLACE => {
                let path = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream_replace(&vp, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(()) => {
                        self.bump(&path);
                        ok_response(|_| {})
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_STAT => {
                let path = r.str()?.to_owned();
                match Self::parse(&path)
                    .and_then(|vp| self.vfs.stream_len(&vp).map_err(|e| e.to_string()))
                {
                    Ok(len) => {
                        let version = self.version(&path);
                        ok_response(|w| {
                            w.u64(len).u64(version);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_LIST => {
                let dir = r.str()?.to_owned();
                match Self::parse(&dir)
                    .and_then(|vp| self.vfs.list_dir(&vp).map_err(|e| e.to_string()))
                {
                    Ok(entries) => ok_response(|w| {
                        w.seq(entries.len());
                        for e in &entries {
                            w.str(&e.name)
                                .bool(e.kind == afs_vfs::NodeKind::Directory)
                                .u64(e.len);
                        }
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_DELETE => {
                let path = r.str()?.to_owned();
                match Self::parse(&path)
                    .and_then(|vp| self.vfs.delete(&vp).map_err(|e| e.to_string()))
                {
                    Ok(()) => {
                        self.bump(&path);
                        ok_response(|_| {})
                    }
                    Err(e) => err_response(&e),
                }
            }
            t => err_response(&format!("unknown file-server op {t}")),
        };
        Ok(reply)
    }
}

impl Default for FileServer {
    fn default() -> Self {
        FileServer {
            vfs: Arc::new(Vfs::new()),
            versions: Mutex::new(HashMap::new()),
            pending_repl: Mutex::new(HashMap::new()),
        }
    }
}

impl Service for FileServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        self.dispatch(request)
    }
}

/// Typed client for [`FileServer`], used from sentinel code.
#[derive(Debug, Clone)]
pub struct FileClient {
    net: Network,
    service: String,
}

impl FileClient {
    /// Creates a client talking to `service` over `net`.
    pub fn new(net: Network, service: &str) -> Self {
        FileClient {
            net,
            service: service.to_owned(),
        }
    }

    /// The service name this client targets.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Reads up to `len` bytes at `offset` (FTP `REST`+`RETR` / HTTP range
    /// GET).
    ///
    /// # Errors
    ///
    /// Network faults, or [`NetError::Rejected`] if the file is missing.
    pub fn get(&self, path: &str, offset: u64, len: usize) -> afs_net::Result<Vec<u8>> {
        let _bk = backend_span("remote-get");
        let mut w = WireWriter::new();
        w.u8(OP_GET).str(path).u64(offset).u32(len as u32);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.bytes()?.to_vec())
    }

    /// Fetches a whole file by statting then reading, splitting the
    /// transfer into [`MAX_TRANSFER`]-sized chunks.
    ///
    /// # Errors
    ///
    /// As [`FileClient::get`].
    pub fn get_all(&self, path: &str) -> afs_net::Result<Vec<u8>> {
        let stat = self.stat(path)?;
        let total = stat.len as usize;
        let mut out = Vec::with_capacity(total.min(MAX_TRANSFER));
        while out.len() < total {
            let want = (total - out.len()).min(MAX_TRANSFER);
            let chunk = self.get(path, out.len() as u64, want)?;
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Writes `data` at `offset`, creating the file if needed. Returns
    /// bytes written. Synchronous (waits for the server).
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn put(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<u64> {
        let _bk = backend_span("remote-put");
        let mut w = WireWriter::new();
        w.u8(OP_PUT).str(path).u64(offset).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Writes `data` at `offset` like [`FileClient::put`], but the
    /// acknowledgement also returns the file's new version — the
    /// replication sequence number a cluster writer fans out to replicas
    /// via [`FileClient::replicate`]. `floor` is the session's highest
    /// previously acknowledged sequence for the path: a server whose
    /// copy is behind it refuses the ack (it missed replicated writes
    /// and must not allocate a colliding sequence), so the returned
    /// sequence is always `> floor`. Returns `(bytes_written, seq)`.
    ///
    /// # Errors
    ///
    /// Network faults, or [`NetError::Rejected`] when this server's
    /// copy is behind `floor`.
    pub fn put_acked(
        &self,
        path: &str,
        offset: u64,
        data: &[u8],
        floor: u64,
    ) -> afs_net::Result<(u64, u64)> {
        let _bk = backend_span("remote-put-acked");
        let mut w = WireWriter::new();
        w.u8(OP_PUT_ACK)
            .str(path)
            .u64(offset)
            .u64(floor)
            .bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok((r.u64()?, r.u64()?))
    }

    /// Fans a primary-acknowledged write out to a replica without
    /// waiting: the replica applies the bytes in sequence order (stale
    /// casts skipped, gap casts held until the missing sequences
    /// arrive) and its version tracks the highest contiguously applied
    /// sequence. Fire-and-forget, like [`FileClient::put_async`].
    ///
    /// # Errors
    ///
    /// Only local faults (unknown service, injected drops).
    pub fn replicate(&self, path: &str, offset: u64, seq: u64, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-replicate");
        let mut w = WireWriter::new();
        w.u8(OP_REPL).str(path).u64(offset).u64(seq).bytes(data);
        self.net.cast(&self.service, &w.finish())
    }

    /// Streams `data` at `offset` without waiting for acknowledgement —
    /// the sentinel's write-behind path ("the sentinel … sends an update
    /// message to the remote service", §6).
    ///
    /// # Errors
    ///
    /// Only local faults (unknown service, injected drops).
    pub fn put_async(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-put-async");
        let mut w = WireWriter::new();
        w.u8(OP_PUT).str(path).u64(offset).bytes(data);
        self.net.cast(&self.service, &w.finish())
    }

    /// Appends `data`, returning bytes written.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn append(&self, path: &str, data: &[u8]) -> afs_net::Result<u64> {
        let _bk = backend_span("remote-append");
        let mut w = WireWriter::new();
        w.u8(OP_APPEND).str(path).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Replaces a file's contents.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn replace(&self, path: &str, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-replace");
        let mut w = WireWriter::new();
        w.u8(OP_REPLACE).str(path).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// Returns length and version.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] if the file is missing.
    pub fn stat(&self, path: &str) -> afs_net::Result<RemoteStat> {
        let _bk = backend_span("remote-stat");
        let mut w = WireWriter::new();
        w.u8(OP_STAT).str(path);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(RemoteStat {
            len: r.u64()?,
            version: r.u64()?,
        })
    }

    /// Lists a directory: `(name, is_dir, len)` triples.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn list(&self, dir: &str) -> afs_net::Result<Vec<(String, bool, u64)>> {
        let _bk = backend_span("remote-list");
        let mut w = WireWriter::new();
        w.u8(OP_LIST).str(dir);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = r.str()?.to_owned();
            let is_dir = r.bool()?;
            let len = r.u64()?;
            out.push((name, is_dir, len));
        }
        Ok(out)
    }

    /// Deletes a file.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn delete(&self, path: &str) -> afs_net::Result<()> {
        let _bk = backend_span("remote-delete");
        let mut w = WireWriter::new();
        w.u8(OP_DELETE).str(path);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (Arc<FileServer>, FileClient) {
        let net = Network::new(CostModel::free());
        let server = FileServer::new();
        net.register("files", Arc::clone(&server) as Arc<dyn Service>);
        (server, FileClient::new(net, "files"))
    }

    #[test]
    fn get_after_seed() {
        let (server, client) = setup();
        server.seed("/pub/readme.txt", b"remote content");
        assert_eq!(
            client.get_all("/pub/readme.txt").expect("get"),
            b"remote content"
        );
        assert_eq!(client.get("/pub/readme.txt", 7, 4).expect("range"), b"cont");
    }

    #[test]
    fn get_missing_is_rejected() {
        let (_server, client) = setup();
        assert!(matches!(
            client.get("/nope", 0, 4),
            Err(NetError::Rejected(_))
        ));
    }

    #[test]
    fn put_creates_and_bumps_version() {
        let (server, client) = setup();
        assert_eq!(server.version("/data/x"), 0);
        client.put("/data/x", 0, b"v1").expect("put");
        assert_eq!(server.version("/data/x"), 1);
        client.put("/data/x", 2, b"v2").expect("put2");
        assert_eq!(server.version("/data/x"), 2);
        assert_eq!(client.get_all("/data/x").expect("get"), b"v1v2");
    }

    #[test]
    fn append_and_stat() {
        let (_server, client) = setup();
        client.append("/log", b"a").expect("a");
        client.append("/log", b"bc").expect("bc");
        let stat = client.stat("/log").expect("stat");
        assert_eq!(stat.len, 3);
        assert_eq!(stat.version, 2);
    }

    #[test]
    fn replace_overwrites() {
        let (_server, client) = setup();
        client.put("/f", 0, b"0123456789").expect("put");
        client.replace("/f", b"xy").expect("replace");
        assert_eq!(client.get_all("/f").expect("get"), b"xy");
    }

    #[test]
    fn list_and_delete() {
        let (server, client) = setup();
        server.seed("/d/a", b"1");
        server.seed("/d/b", b"22");
        let listing = client.list("/d").expect("list");
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0], ("a".to_owned(), false, 1));
        assert_eq!(listing[1], ("b".to_owned(), false, 2));
        client.delete("/d/a").expect("delete");
        assert_eq!(client.list("/d").expect("list").len(), 1);
    }

    #[test]
    fn put_async_is_delivered() {
        let (server, client) = setup();
        client
            .put_async("/bg", 0, b"fire-and-forget")
            .expect("cast");
        // Cast delivers synchronously in simulation; check server state.
        assert_eq!(
            server
                .vfs()
                .read_stream_to_end(&VPath::parse("/bg").expect("p"))
                .expect("read"),
            b"fire-and-forget"
        );
    }

    #[test]
    fn put_acked_returns_the_replication_seq() {
        let (server, client) = setup();
        let (n, seq) = client.put_acked("/c/x", 0, b"v1", 0).expect("put-ack");
        assert_eq!((n, seq), (2, 1));
        let (_, seq) = client.put_acked("/c/x", 0, b"v2", 1).expect("put-ack");
        assert_eq!(seq, 2);
        assert_eq!(server.version("/c/x"), 2);
    }

    #[test]
    fn put_acked_refuses_a_copy_behind_the_floor() {
        let (server, client) = setup();
        client.put_acked("/c/f", 0, b"v1", 0).expect("put-ack");
        // A session acked seq 3 elsewhere; this copy only holds seq 1.
        // Acking here would allocate seq 2 — a sequence the session
        // already holds — so the server must refuse.
        let err = client
            .put_acked("/c/f", 0, b"v4", 3)
            .expect_err("behind floor");
        assert!(matches!(err, NetError::Rejected(_)), "{err:?}");
        assert_eq!(server.version("/c/f"), 1, "no sequence allocated");
        assert_eq!(client.get_all("/c/f").expect("get"), b"v1");
    }

    #[test]
    fn replicate_applies_in_sequence_order() {
        let (server, client) = setup();
        client.replicate("/c/y", 0, 1, b"fresh").expect("repl");
        assert_eq!(server.version("/c/y"), 1);
        assert_eq!(client.get_all("/c/y").expect("get"), b"fresh");
        // A stale or re-delivered cast is skipped entirely: neither
        // the version nor the bytes regress.
        client.replicate("/c/y", 0, 1, b"dup!!").expect("repl");
        assert_eq!(server.version("/c/y"), 1);
        assert_eq!(client.get_all("/c/y").expect("get"), b"fresh");
    }

    #[test]
    fn gap_casts_are_held_until_the_sequence_fills_in() {
        let (server, client) = setup();
        // Seq 2 arrives before seq 1: the version must not claim a
        // write whose bytes this copy does not hold yet.
        client.replicate("/c/z", 3, 2, b"bbb").expect("repl");
        assert_eq!(server.version("/c/z"), 0);
        client.replicate("/c/z", 0, 1, b"aaa").expect("repl");
        assert_eq!(server.version("/c/z"), 2);
        assert_eq!(client.get_all("/c/z").expect("get"), b"aaabbb");
    }

    #[test]
    fn a_missed_cast_keeps_the_version_behind() {
        let (server, client) = setup();
        client.replicate("/c/w", 0, 1, b"one").expect("repl");
        // Seq 2 was dropped in flight; seq 3 arrives. The version must
        // stay at 1 — advancing to 3 would make a read-your-writes
        // floor check accept a copy missing write 2's bytes.
        client.replicate("/c/w", 0, 3, b"three").expect("repl");
        assert_eq!(server.version("/c/w"), 1);
        assert_eq!(client.get_all("/c/w").expect("get"), b"one");
    }

    #[test]
    fn behind_the_back_updates_change_version() {
        let (server, client) = setup();
        server.seed("/shared", b"v1");
        let v1 = client.stat("/shared").expect("stat").version;
        server.seed("/shared", b"v2");
        let v2 = client.stat("/shared").expect("stat").version;
        assert!(
            v2 > v1,
            "sentinels can track changes in the original source"
        );
    }
}
