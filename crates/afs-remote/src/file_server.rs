//! The FTP/HTTP-style remote file server.
//!
//! "The sentinel accesses the remote file using a standard protocol (e.g.,
//! FTP or HTTP), creates a local copy, and makes the copy available to the
//! client application" (§3, Aggregation). The server stores its files in
//! its own [`Vfs`] instance and keeps a per-file **version counter** so
//! consistency-tracking sentinels can detect remote updates — the ability
//! the paper's intermediary approach lacks.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{NetError, Network, Service, WireWriter};
use afs_telemetry::backend_span;
use afs_vfs::{VPath, Vfs};

use crate::{check_status, err_response, ok_response};

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_APPEND: u8 = 3;
const OP_STAT: u8 = 4;
const OP_LIST: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_REPLACE: u8 = 7;
const OP_PUT_ACK: u8 = 8;
const OP_REPL: u8 = 9;

/// Largest single GET transfer the server satisfies (1 MiB).
pub const MAX_TRANSFER: usize = 1 << 20;

/// Remote file metadata returned by [`FileClient::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteStat {
    /// File length in bytes.
    pub len: u64,
    /// Monotonic version, bumped on every mutation.
    pub version: u64,
}

/// A remote file store speaking a GET/PUT/STAT/LIST protocol.
pub struct FileServer {
    vfs: Arc<Vfs>,
    versions: Mutex<HashMap<String, u64>>,
}

impl FileServer {
    /// Creates an empty server.
    pub fn new() -> Arc<Self> {
        Arc::new(FileServer {
            vfs: Arc::new(Vfs::new()),
            versions: Mutex::new(HashMap::new()),
        })
    }

    /// Direct (out-of-band) access to the server's file system, used by
    /// tests and examples to seed content or mutate it "behind the
    /// sentinel's back".
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// Seeds a file, creating parent directories. Intended for experiment
    /// setup.
    ///
    /// # Panics
    ///
    /// Panics on invalid paths — setup code should fail loudly.
    pub fn seed(&self, path: &str, data: &[u8]) {
        let vpath = VPath::parse(path).expect("valid seed path");
        if let Some(parent) = vpath.parent() {
            self.vfs.create_dir_all(&parent).expect("seed parents");
        }
        if !self.vfs.is_file(&vpath) {
            self.vfs.create_file(&vpath).expect("seed create");
        }
        self.vfs
            .write_stream_replace(&vpath, data)
            .expect("seed write");
        self.bump(path);
    }

    /// Current version of a path (0 if never written).
    pub fn version(&self, path: &str) -> u64 {
        *self.versions.lock().get(path).unwrap_or(&0)
    }

    fn bump(&self, path: &str) -> u64 {
        let mut versions = self.versions.lock();
        let v = versions.entry(path.to_owned()).or_insert(0);
        *v += 1;
        *v
    }

    /// Raises a path's version to at least `seq` (replication apply: the
    /// primary allocated the sequence number, replicas catch up to it;
    /// `max` keeps out-of-order casts idempotent).
    fn bump_to(&self, path: &str, seq: u64) -> u64 {
        let mut versions = self.versions.lock();
        let v = versions.entry(path.to_owned()).or_insert(0);
        *v = (*v).max(seq);
        *v
    }

    fn parse(path: &str) -> Result<VPath, String> {
        VPath::parse(path).map_err(|e| e.to_string())
    }

    fn ensure_file(&self, vpath: &VPath) -> Result<(), String> {
        if self.vfs.is_file(vpath) {
            return Ok(());
        }
        if let Some(parent) = vpath.parent() {
            self.vfs
                .create_dir_all(&parent)
                .map_err(|e| e.to_string())?;
        }
        self.vfs.create_file(vpath).map_err(|e| e.to_string())
    }

    fn dispatch(&self, request: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        let reply = match op {
            OP_GET => {
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                // The requested length is untrusted: cap the transfer
                // unit so a bogus request cannot force a giant
                // allocation. Clients split larger reads.
                let len = (r.u32()? as usize).min(MAX_TRANSFER);
                match Self::parse(&path).and_then(|vp| {
                    let mut buf = vec![0u8; len];
                    let n = self
                        .vfs
                        .read_stream(&vp, offset, &mut buf)
                        .map_err(|e| e.to_string())?;
                    buf.truncate(n);
                    Ok(buf)
                }) {
                    Ok(data) => ok_response(|w| {
                        w.bytes(&data);
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_PUT => {
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream(&vp, offset, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(n) => {
                        self.bump(&path);
                        ok_response(|w| {
                            w.u64(n as u64);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_PUT_ACK => {
                // A cluster primary write: same mutation as OP_PUT, but
                // the acknowledgement carries the new version — the
                // replication sequence number the writer fans out to the
                // replicas and remembers for read-your-writes.
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream(&vp, offset, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(n) => {
                        let seq = self.bump(&path);
                        ok_response(|w| {
                            w.u64(n as u64).u64(seq);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_REPL => {
                // Replication apply: the write plus the primary's
                // sequence number. The version catches *up* to the seq
                // (never past it), so re-delivered or out-of-order casts
                // are idempotent.
                let path = r.str()?.to_owned();
                let offset = r.u64()?;
                let seq = r.u64()?;
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream(&vp, offset, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(_) => {
                        let version = self.bump_to(&path, seq);
                        ok_response(|w| {
                            w.u64(version);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_APPEND => {
                let path = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    let len = self.vfs.stream_len(&vp).map_err(|e| e.to_string())?;
                    self.vfs
                        .write_stream(&vp, len, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(n) => {
                        self.bump(&path);
                        ok_response(|w| {
                            w.u64(n as u64);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_REPLACE => {
                let path = r.str()?.to_owned();
                let data = r.bytes()?.to_vec();
                match Self::parse(&path).and_then(|vp| {
                    self.ensure_file(&vp)?;
                    self.vfs
                        .write_stream_replace(&vp, &data)
                        .map_err(|e| e.to_string())
                }) {
                    Ok(()) => {
                        self.bump(&path);
                        ok_response(|_| {})
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_STAT => {
                let path = r.str()?.to_owned();
                match Self::parse(&path)
                    .and_then(|vp| self.vfs.stream_len(&vp).map_err(|e| e.to_string()))
                {
                    Ok(len) => {
                        let version = self.version(&path);
                        ok_response(|w| {
                            w.u64(len).u64(version);
                        })
                    }
                    Err(e) => err_response(&e),
                }
            }
            OP_LIST => {
                let dir = r.str()?.to_owned();
                match Self::parse(&dir)
                    .and_then(|vp| self.vfs.list_dir(&vp).map_err(|e| e.to_string()))
                {
                    Ok(entries) => ok_response(|w| {
                        w.seq(entries.len());
                        for e in &entries {
                            w.str(&e.name)
                                .bool(e.kind == afs_vfs::NodeKind::Directory)
                                .u64(e.len);
                        }
                    }),
                    Err(e) => err_response(&e),
                }
            }
            OP_DELETE => {
                let path = r.str()?.to_owned();
                match Self::parse(&path)
                    .and_then(|vp| self.vfs.delete(&vp).map_err(|e| e.to_string()))
                {
                    Ok(()) => {
                        self.bump(&path);
                        ok_response(|_| {})
                    }
                    Err(e) => err_response(&e),
                }
            }
            t => err_response(&format!("unknown file-server op {t}")),
        };
        Ok(reply)
    }
}

impl Default for FileServer {
    fn default() -> Self {
        FileServer {
            vfs: Arc::new(Vfs::new()),
            versions: Mutex::new(HashMap::new()),
        }
    }
}

impl Service for FileServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        self.dispatch(request)
    }
}

/// Typed client for [`FileServer`], used from sentinel code.
#[derive(Debug, Clone)]
pub struct FileClient {
    net: Network,
    service: String,
}

impl FileClient {
    /// Creates a client talking to `service` over `net`.
    pub fn new(net: Network, service: &str) -> Self {
        FileClient {
            net,
            service: service.to_owned(),
        }
    }

    /// The service name this client targets.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// Reads up to `len` bytes at `offset` (FTP `REST`+`RETR` / HTTP range
    /// GET).
    ///
    /// # Errors
    ///
    /// Network faults, or [`NetError::Rejected`] if the file is missing.
    pub fn get(&self, path: &str, offset: u64, len: usize) -> afs_net::Result<Vec<u8>> {
        let _bk = backend_span("remote-get");
        let mut w = WireWriter::new();
        w.u8(OP_GET).str(path).u64(offset).u32(len as u32);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.bytes()?.to_vec())
    }

    /// Fetches a whole file by statting then reading, splitting the
    /// transfer into [`MAX_TRANSFER`]-sized chunks.
    ///
    /// # Errors
    ///
    /// As [`FileClient::get`].
    pub fn get_all(&self, path: &str) -> afs_net::Result<Vec<u8>> {
        let stat = self.stat(path)?;
        let total = stat.len as usize;
        let mut out = Vec::with_capacity(total.min(MAX_TRANSFER));
        while out.len() < total {
            let want = (total - out.len()).min(MAX_TRANSFER);
            let chunk = self.get(path, out.len() as u64, want)?;
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        Ok(out)
    }

    /// Writes `data` at `offset`, creating the file if needed. Returns
    /// bytes written. Synchronous (waits for the server).
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn put(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<u64> {
        let _bk = backend_span("remote-put");
        let mut w = WireWriter::new();
        w.u8(OP_PUT).str(path).u64(offset).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Writes `data` at `offset` like [`FileClient::put`], but the
    /// acknowledgement also returns the file's new version — the
    /// replication sequence number a cluster writer fans out to replicas
    /// via [`FileClient::replicate`]. Returns `(bytes_written, seq)`.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn put_acked(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<(u64, u64)> {
        let _bk = backend_span("remote-put-acked");
        let mut w = WireWriter::new();
        w.u8(OP_PUT_ACK).str(path).u64(offset).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok((r.u64()?, r.u64()?))
    }

    /// Fans a primary-acknowledged write out to a replica without
    /// waiting: the replica applies the bytes and raises its version to
    /// `seq`. Fire-and-forget, like [`FileClient::put_async`].
    ///
    /// # Errors
    ///
    /// Only local faults (unknown service, injected drops).
    pub fn replicate(&self, path: &str, offset: u64, seq: u64, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-replicate");
        let mut w = WireWriter::new();
        w.u8(OP_REPL).str(path).u64(offset).u64(seq).bytes(data);
        self.net.cast(&self.service, &w.finish())
    }

    /// Streams `data` at `offset` without waiting for acknowledgement —
    /// the sentinel's write-behind path ("the sentinel … sends an update
    /// message to the remote service", §6).
    ///
    /// # Errors
    ///
    /// Only local faults (unknown service, injected drops).
    pub fn put_async(&self, path: &str, offset: u64, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-put-async");
        let mut w = WireWriter::new();
        w.u8(OP_PUT).str(path).u64(offset).bytes(data);
        self.net.cast(&self.service, &w.finish())
    }

    /// Appends `data`, returning bytes written.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn append(&self, path: &str, data: &[u8]) -> afs_net::Result<u64> {
        let _bk = backend_span("remote-append");
        let mut w = WireWriter::new();
        w.u8(OP_APPEND).str(path).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Replaces a file's contents.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn replace(&self, path: &str, data: &[u8]) -> afs_net::Result<()> {
        let _bk = backend_span("remote-replace");
        let mut w = WireWriter::new();
        w.u8(OP_REPLACE).str(path).bytes(data);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }

    /// Returns length and version.
    ///
    /// # Errors
    ///
    /// [`NetError::Rejected`] if the file is missing.
    pub fn stat(&self, path: &str) -> afs_net::Result<RemoteStat> {
        let _bk = backend_span("remote-stat");
        let mut w = WireWriter::new();
        w.u8(OP_STAT).str(path);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(RemoteStat {
            len: r.u64()?,
            version: r.u64()?,
        })
    }

    /// Lists a directory: `(name, is_dir, len)` triples.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn list(&self, dir: &str) -> afs_net::Result<Vec<(String, bool, u64)>> {
        let _bk = backend_span("remote-list");
        let mut w = WireWriter::new();
        w.u8(OP_LIST).str(dir);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let name = r.str()?.to_owned();
            let is_dir = r.bool()?;
            let len = r.u64()?;
            out.push((name, is_dir, len));
        }
        Ok(out)
    }

    /// Deletes a file.
    ///
    /// # Errors
    ///
    /// Network faults or server rejection.
    pub fn delete(&self, path: &str) -> afs_net::Result<()> {
        let _bk = backend_span("remote-delete");
        let mut w = WireWriter::new();
        w.u8(OP_DELETE).str(path);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        check_status(&resp)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (Arc<FileServer>, FileClient) {
        let net = Network::new(CostModel::free());
        let server = FileServer::new();
        net.register("files", Arc::clone(&server) as Arc<dyn Service>);
        (server, FileClient::new(net, "files"))
    }

    #[test]
    fn get_after_seed() {
        let (server, client) = setup();
        server.seed("/pub/readme.txt", b"remote content");
        assert_eq!(
            client.get_all("/pub/readme.txt").expect("get"),
            b"remote content"
        );
        assert_eq!(client.get("/pub/readme.txt", 7, 4).expect("range"), b"cont");
    }

    #[test]
    fn get_missing_is_rejected() {
        let (_server, client) = setup();
        assert!(matches!(
            client.get("/nope", 0, 4),
            Err(NetError::Rejected(_))
        ));
    }

    #[test]
    fn put_creates_and_bumps_version() {
        let (server, client) = setup();
        assert_eq!(server.version("/data/x"), 0);
        client.put("/data/x", 0, b"v1").expect("put");
        assert_eq!(server.version("/data/x"), 1);
        client.put("/data/x", 2, b"v2").expect("put2");
        assert_eq!(server.version("/data/x"), 2);
        assert_eq!(client.get_all("/data/x").expect("get"), b"v1v2");
    }

    #[test]
    fn append_and_stat() {
        let (_server, client) = setup();
        client.append("/log", b"a").expect("a");
        client.append("/log", b"bc").expect("bc");
        let stat = client.stat("/log").expect("stat");
        assert_eq!(stat.len, 3);
        assert_eq!(stat.version, 2);
    }

    #[test]
    fn replace_overwrites() {
        let (_server, client) = setup();
        client.put("/f", 0, b"0123456789").expect("put");
        client.replace("/f", b"xy").expect("replace");
        assert_eq!(client.get_all("/f").expect("get"), b"xy");
    }

    #[test]
    fn list_and_delete() {
        let (server, client) = setup();
        server.seed("/d/a", b"1");
        server.seed("/d/b", b"22");
        let listing = client.list("/d").expect("list");
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0], ("a".to_owned(), false, 1));
        assert_eq!(listing[1], ("b".to_owned(), false, 2));
        client.delete("/d/a").expect("delete");
        assert_eq!(client.list("/d").expect("list").len(), 1);
    }

    #[test]
    fn put_async_is_delivered() {
        let (server, client) = setup();
        client
            .put_async("/bg", 0, b"fire-and-forget")
            .expect("cast");
        // Cast delivers synchronously in simulation; check server state.
        assert_eq!(
            server
                .vfs()
                .read_stream_to_end(&VPath::parse("/bg").expect("p"))
                .expect("read"),
            b"fire-and-forget"
        );
    }

    #[test]
    fn put_acked_returns_the_replication_seq() {
        let (server, client) = setup();
        let (n, seq) = client.put_acked("/c/x", 0, b"v1").expect("put-ack");
        assert_eq!((n, seq), (2, 1));
        let (_, seq) = client.put_acked("/c/x", 0, b"v2").expect("put-ack");
        assert_eq!(seq, 2);
        assert_eq!(server.version("/c/x"), 2);
    }

    #[test]
    fn replicate_applies_bytes_and_catches_version_up() {
        let (server, client) = setup();
        client
            .replicate("/c/y", 0, 7, b"from primary")
            .expect("repl");
        assert_eq!(server.version("/c/y"), 7);
        assert_eq!(client.get_all("/c/y").expect("get"), b"from primary");
        // Re-delivery and stale casts are idempotent: version never
        // regresses.
        client
            .replicate("/c/y", 0, 3, b"older write!")
            .expect("repl");
        assert_eq!(server.version("/c/y"), 7);
    }

    #[test]
    fn behind_the_back_updates_change_version() {
        let (server, client) = setup();
        server.seed("/shared", b"v1");
        let v1 = client.stat("/shared").expect("stat").version;
        server.seed("/shared", b"v2");
        let v2 = client.stat("/shared").expect("stat").version;
        assert!(
            v2 > v1,
            "sentinels can track changes in the original source"
        );
    }
}
