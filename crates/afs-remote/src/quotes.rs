//! Deterministic stock-quote feed.
//!
//! §3: "an active file that reflects the latest stock quotes (downloaded
//! by the sentinel from a server) every time the file is opened". Prices
//! follow a seeded random walk; [`QuoteServer::advance`] moves the market
//! forward one tick, so experiments control exactly when quotes change.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use afs_net::{Network, Service, WireWriter};

use crate::{check_status, err_response, ok_response};

const OP_GET: u8 = 1;
const OP_TICK: u8 = 2;

/// One quoted price. Plain data; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    /// Ticker symbol.
    pub symbol: String,
    /// Price in cents.
    pub cents: u64,
    /// Market tick the price belongs to.
    pub tick: u64,
}

/// A quote server with a seeded random-walk market.
pub struct QuoteServer {
    prices: Mutex<BTreeMap<String, u64>>,
    rng: Mutex<SmallRng>,
    tick: AtomicU64,
}

impl QuoteServer {
    /// Creates a market over `symbols` with deterministic prices derived
    /// from `seed`.
    pub fn new(seed: u64, symbols: &[&str]) -> Arc<Self> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prices = symbols
            .iter()
            .map(|s| ((*s).to_owned(), rng.gen_range(1_000..50_000)))
            .collect();
        Arc::new(QuoteServer {
            prices: Mutex::new(prices),
            rng: Mutex::new(rng),
            tick: AtomicU64::new(0),
        })
    }

    /// Advances the market one tick, nudging every price by up to ±5%.
    pub fn advance(&self) {
        let mut prices = self.prices.lock();
        let mut rng = self.rng.lock();
        for price in prices.values_mut() {
            let delta = rng.gen_range(-5i64..=5) * (*price as i64) / 100;
            *price = (*price as i64 + delta).max(1) as u64;
        }
        self.tick.fetch_add(1, Ordering::SeqCst);
    }

    /// Current market tick.
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::SeqCst)
    }

    /// Current price of one symbol (test/diagnostic access).
    pub fn price(&self, symbol: &str) -> Option<u64> {
        self.prices.lock().get(symbol).copied()
    }
}

impl Service for QuoteServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        Ok(match op {
            OP_GET => {
                let n = r.seq()?;
                let mut symbols = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    symbols.push(r.str()?.to_owned());
                }
                let prices = self.prices.lock();
                let tick = self.tick.load(Ordering::SeqCst);
                let mut found = Vec::new();
                for sym in &symbols {
                    match prices.get(sym) {
                        Some(&cents) => found.push((sym.clone(), cents)),
                        None => return Ok(err_response(&format!("unknown symbol {sym}"))),
                    }
                }
                ok_response(|w| {
                    w.u64(tick).seq(found.len());
                    for (sym, cents) in &found {
                        w.str(sym).u64(*cents);
                    }
                })
            }
            OP_TICK => {
                self.advance();
                ok_response(|w| {
                    w.u64(self.tick.load(Ordering::SeqCst));
                })
            }
            t => err_response(&format!("unknown quote op {t}")),
        })
    }
}

/// Typed client for [`QuoteServer`].
#[derive(Debug, Clone)]
pub struct QuoteClient {
    net: Network,
    service: String,
}

impl QuoteClient {
    /// Creates a client for `service` over `net`.
    pub fn new(net: Network, service: &str) -> Self {
        QuoteClient {
            net,
            service: service.to_owned(),
        }
    }

    /// Fetches current quotes for `symbols`.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] for unknown symbols.
    pub fn quotes(&self, symbols: &[&str]) -> afs_net::Result<Vec<Quote>> {
        let mut w = WireWriter::new();
        w.u8(OP_GET).seq(symbols.len());
        for s in symbols {
            w.str(s);
        }
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let tick = r.u64()?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let symbol = r.str()?.to_owned();
            let cents = r.u64()?;
            out.push(Quote {
                symbol,
                cents,
                tick,
            });
        }
        Ok(out)
    }

    /// Asks the server to advance one market tick (experiment control).
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn advance(&self) -> afs_net::Result<u64> {
        let mut w = WireWriter::new();
        w.u8(OP_TICK);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (Arc<QuoteServer>, QuoteClient) {
        let net = Network::new(CostModel::free());
        let server = QuoteServer::new(42, &["ACME", "INIT"]);
        net.register("quotes", Arc::clone(&server) as Arc<dyn Service>);
        (server, QuoteClient::new(net, "quotes"))
    }

    #[test]
    fn quotes_are_deterministic_for_a_seed() {
        let a = QuoteServer::new(7, &["X"]);
        let b = QuoteServer::new(7, &["X"]);
        assert_eq!(a.price("X"), b.price("X"));
        a.advance();
        b.advance();
        assert_eq!(a.price("X"), b.price("X"));
    }

    #[test]
    fn client_fetches_quotes() {
        let (server, client) = setup();
        let quotes = client.quotes(&["ACME", "INIT"]).expect("quotes");
        assert_eq!(quotes.len(), 2);
        assert_eq!(quotes[0].symbol, "ACME");
        assert_eq!(Some(quotes[0].cents), server.price("ACME"));
        assert_eq!(quotes[0].tick, 0);
    }

    #[test]
    fn unknown_symbol_rejected() {
        let (_server, client) = setup();
        assert!(client.quotes(&["NOPE"]).is_err());
    }

    #[test]
    fn advance_changes_tick_and_usually_prices() {
        let (server, client) = setup();
        let before = server.price("ACME").expect("price");
        let tick = client.advance().expect("tick");
        assert_eq!(tick, 1);
        let quotes = client.quotes(&["ACME"]).expect("quotes");
        assert_eq!(quotes[0].tick, 1);
        // The walk may coincidentally return the same price; ticks always
        // move.
        let _ = before;
    }

    #[test]
    fn prices_stay_positive() {
        let server = QuoteServer::new(1, &["P"]);
        for _ in 0..500 {
            server.advance();
        }
        assert!(server.price("P").expect("price") >= 1);
    }
}
