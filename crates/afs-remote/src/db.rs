//! A key-value database with a change feed.
//!
//! The paper's introduction motivates active files with "an end
//! application that searches through a collection of distributed
//! databases" which, behind an intermediary, "cannot see changes in these
//! databases". [`DbServer`] keeps a monotonic change log so a sentinel can
//! poll [`DbClient::changes_since`] and keep its cached view live.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use afs_net::{Network, Service, WireWriter};

use crate::{check_status, err_response, ok_response};

const OP_PUT: u8 = 1;
const OP_GET: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_SCAN: u8 = 4;
const OP_CHANGES: u8 = 5;
const OP_SEQ: u8 = 6;

/// The kind of mutation recorded in the change log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbOp {
    /// Key inserted or updated.
    Put,
    /// Key removed.
    Delete,
}

/// One change-log entry. Plain data; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DbEvent {
    /// Monotonic sequence number (1-based).
    pub seq: u64,
    /// What happened.
    pub op: DbOp,
    /// The affected key.
    pub key: String,
}

#[derive(Debug, Default)]
struct DbState {
    data: BTreeMap<String, Vec<u8>>,
    log: Vec<DbEvent>,
}

/// The database service.
#[derive(Debug, Default)]
pub struct DbServer {
    state: Mutex<DbState>,
}

impl DbServer {
    /// Creates an empty database.
    pub fn new() -> Arc<Self> {
        Arc::new(DbServer::default())
    }

    /// Inserts directly (experiment setup / out-of-band mutation).
    pub fn put(&self, key: &str, value: &[u8]) {
        let mut state = self.state.lock();
        state.data.insert(key.to_owned(), value.to_vec());
        let seq = state.log.len() as u64 + 1;
        state.log.push(DbEvent {
            seq,
            op: DbOp::Put,
            key: key.to_owned(),
        });
    }

    /// Deletes directly; `true` if the key existed.
    pub fn delete(&self, key: &str) -> bool {
        let mut state = self.state.lock();
        if state.data.remove(key).is_none() {
            return false;
        }
        let seq = state.log.len() as u64 + 1;
        state.log.push(DbEvent {
            seq,
            op: DbOp::Delete,
            key: key.to_owned(),
        });
        true
    }

    /// Highest sequence number issued.
    pub fn seq(&self) -> u64 {
        self.state.lock().log.len() as u64
    }
}

impl Service for DbServer {
    fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
        let mut r = afs_net::WireReader::new(request);
        let op = r.u8()?;
        Ok(match op {
            OP_PUT => {
                let key = r.str()?.to_owned();
                let value = r.bytes()?.to_vec();
                self.put(&key, &value);
                ok_response(|w| {
                    w.u64(self.seq());
                })
            }
            OP_GET => {
                let key = r.str()?.to_owned();
                match self.state.lock().data.get(&key) {
                    Some(v) => {
                        let v = v.clone();
                        ok_response(|w| {
                            w.bytes(&v);
                        })
                    }
                    None => err_response("key not found"),
                }
            }
            OP_DELETE => {
                let key = r.str()?.to_owned();
                if self.delete(&key) {
                    ok_response(|w| {
                        w.u64(self.seq());
                    })
                } else {
                    err_response("key not found")
                }
            }
            OP_SCAN => {
                let prefix = r.str()?.to_owned();
                let state = self.state.lock();
                let hits: Vec<(String, Vec<u8>)> = state
                    .data
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                ok_response(|w| {
                    w.seq(hits.len());
                    for (k, v) in &hits {
                        w.str(k).bytes(v);
                    }
                })
            }
            OP_CHANGES => {
                let since = r.u64()?;
                let state = self.state.lock();
                let events: Vec<DbEvent> = state
                    .log
                    .iter()
                    .filter(|e| e.seq > since)
                    .cloned()
                    .collect();
                ok_response(|w| {
                    w.seq(events.len());
                    for e in &events {
                        w.u64(e.seq).u8(match e.op {
                            DbOp::Put => 0,
                            DbOp::Delete => 1,
                        });
                        w.str(&e.key);
                    }
                })
            }
            OP_SEQ => ok_response(|w| {
                w.u64(self.seq());
            }),
            t => err_response(&format!("unknown db op {t}")),
        })
    }
}

/// Typed client for [`DbServer`].
#[derive(Debug, Clone)]
pub struct DbClient {
    net: Network,
    service: String,
}

impl DbClient {
    /// Creates a client for `service` over `net`.
    pub fn new(net: Network, service: &str) -> Self {
        DbClient {
            net,
            service: service.to_owned(),
        }
    }

    /// Inserts or updates a key; returns the new change sequence.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn put(&self, key: &str, value: &[u8]) -> afs_net::Result<u64> {
        let mut w = WireWriter::new();
        w.u8(OP_PUT).str(key).bytes(value);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Reads a key.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if missing.
    pub fn get(&self, key: &str) -> afs_net::Result<Vec<u8>> {
        let mut w = WireWriter::new();
        w.u8(OP_GET).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.bytes()?.to_vec())
    }

    /// Deletes a key; returns the new change sequence.
    ///
    /// # Errors
    ///
    /// [`afs_net::NetError::Rejected`] if missing.
    pub fn delete(&self, key: &str) -> afs_net::Result<u64> {
        let mut w = WireWriter::new();
        w.u8(OP_DELETE).str(key);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }

    /// Returns `(key, value)` pairs whose keys start with `prefix`, in key
    /// order.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn scan(&self, prefix: &str) -> afs_net::Result<Vec<(String, Vec<u8>)>> {
        let mut w = WireWriter::new();
        w.u8(OP_SCAN).str(prefix);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let k = r.str()?.to_owned();
            let v = r.bytes()?.to_vec();
            out.push((k, v));
        }
        Ok(out)
    }

    /// Returns every change with `seq > since` — the polling hook a
    /// consistency-tracking sentinel uses.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn changes_since(&self, since: u64) -> afs_net::Result<Vec<DbEvent>> {
        let mut w = WireWriter::new();
        w.u8(OP_CHANGES).u64(since);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        let n = r.seq()?;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            let seq = r.u64()?;
            let op = match r.u8()? {
                0 => DbOp::Put,
                1 => DbOp::Delete,
                t => return Err(afs_net::NetError::Malformed(afs_net::WireError::BadTag(t))),
            };
            let key = r.str()?.to_owned();
            out.push(DbEvent { seq, op, key });
        }
        Ok(out)
    }

    /// Current change sequence number.
    ///
    /// # Errors
    ///
    /// Network faults.
    pub fn seq(&self) -> afs_net::Result<u64> {
        let mut w = WireWriter::new();
        w.u8(OP_SEQ);
        let resp = self.net.rpc(&self.service, &w.finish())?;
        let mut r = check_status(&resp)?;
        Ok(r.u64()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;

    fn setup() -> (Arc<DbServer>, DbClient) {
        let net = Network::new(CostModel::free());
        let server = DbServer::new();
        net.register("db", Arc::clone(&server) as Arc<dyn Service>);
        (server, DbClient::new(net, "db"))
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (_server, client) = setup();
        client.put("user:1", b"alice").expect("put");
        assert_eq!(client.get("user:1").expect("get"), b"alice");
        client.delete("user:1").expect("delete");
        assert!(client.get("user:1").is_err());
        assert!(client.delete("user:1").is_err());
    }

    #[test]
    fn scan_returns_prefix_matches_in_order() {
        let (_server, client) = setup();
        client.put("user:2", b"b").expect("put");
        client.put("user:1", b"a").expect("put");
        client.put("group:1", b"g").expect("put");
        let hits = client.scan("user:").expect("scan");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, "user:1");
        assert_eq!(hits[1].0, "user:2");
    }

    #[test]
    fn change_feed_reports_out_of_band_mutations() {
        let (server, client) = setup();
        let baseline = client.seq().expect("seq");
        // Mutations performed directly on the server — "behind the
        // intermediary's back".
        server.put("k", b"v");
        server.delete("k");
        let events = client.changes_since(baseline).expect("changes");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].op, DbOp::Put);
        assert_eq!(events[1].op, DbOp::Delete);
        assert_eq!(events[1].key, "k");
        assert!(events[1].seq > events[0].seq);
    }

    #[test]
    fn changes_since_latest_is_empty() {
        let (_server, client) = setup();
        client.put("a", b"1").expect("put");
        let seq = client.seq().expect("seq");
        assert!(client.changes_since(seq).expect("changes").is_empty());
    }

    #[test]
    fn empty_prefix_scans_everything() {
        let (_server, client) = setup();
        client.put("x", b"1").expect("put");
        client.put("y", b"2").expect("put");
        assert_eq!(client.scan("").expect("scan").len(), 2);
    }
}
