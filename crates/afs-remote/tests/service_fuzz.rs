//! Robustness property tests: every service must survive arbitrary
//! request bytes — returning an error payload or a wire error, never
//! panicking — because in the paper's threat model the sentinel is just
//! another network client.

use std::sync::Arc;

use afs_net::Service;
use afs_remote::{
    DbServer, FileServer, MailStore, PopServer, QuoteServer, RegistryServer, SmtpServer,
};
use proptest::prelude::*;

fn services() -> Vec<(&'static str, Arc<dyn Service>)> {
    let store = MailStore::new();
    vec![
        ("file", FileServer::new() as Arc<dyn Service>),
        ("pop", PopServer::new(store.clone()) as Arc<dyn Service>),
        ("smtp", SmtpServer::new(store) as Arc<dyn Service>),
        ("quotes", QuoteServer::new(1, &["A"]) as Arc<dyn Service>),
        ("registry", RegistryServer::new() as Arc<dyn Service>),
        ("db", DbServer::new() as Arc<dyn Service>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn garbage_requests_never_panic_any_service(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        for (name, service) in services() {
            // Ok(err-response) or Err(wire error) are both fine; a panic
            // would abort the test.
            let _ = service.handle(&bytes);
            let _name = name;
        }
    }

    #[test]
    fn truncated_valid_requests_never_panic(cut in 0usize..32) {
        // Take a well-formed file-server GET and truncate it at every
        // prefix length.
        let mut w = afs_net::WireWriter::new();
        w.u8(1).str("/some/path").u64(42).u32(100);
        let valid = w.finish();
        let end = cut.min(valid.len());
        for (_, service) in services() {
            let _ = service.handle(&valid[..end]);
        }
    }
}
