#![warn(missing_docs)]
//! In-memory virtual file system for the Active Files reproduction.
//!
//! The paper's prototype stores an active file as a single NTFS file whose
//! *data part* and *active part* live in separate NTFS streams, "which
//! exhibits compatible behavior for standard file operations such as
//! copying and renaming" (Appendix A). This crate provides exactly that
//! substrate:
//!
//! * hierarchical directories and files ([`Vfs`]),
//! * **named streams** per file (the default stream is the empty name;
//!   `"/x/report.af:active"` addresses the `active` stream — see
//!   [`VPath`]),
//! * whole-file copy/rename/delete that carry *all* streams, which is what
//!   makes "a copy operation produce a second active file with the same
//!   data and executable components" (§2.1),
//! * NT-style byte-range locks ([`Vfs::lock_range`]) checked by the file
//!   API layer, and
//! * read-only/hidden attributes plus logical timestamps.
//!
//! The VFS is deliberately time-free: simulated disk costs are charged by
//! the layers that decide whether a particular access models a disk (the
//! sentinel's on-disk cache) or not.
//!
//! # Examples
//!
//! ```
//! use afs_vfs::{Vfs, VPath};
//!
//! # fn main() -> Result<(), afs_vfs::VfsError> {
//! let vfs = Vfs::new();
//! vfs.create_dir_all(&VPath::parse("/docs")?)?;
//! let p = VPath::parse("/docs/hello.txt")?;
//! vfs.create_file(&p)?;
//! vfs.write_stream(&p, 0, b"hi")?;
//! assert_eq!(vfs.read_stream_to_end(&p)?, b"hi");
//! # Ok(())
//! # }
//! ```

mod error;
mod node;
mod path;
mod vfs;

pub use error::VfsError;
pub use node::{DirEntry, FileAttributes, Metadata, NodeKind};
pub use path::VPath;
pub use vfs::{LockKind, LockOwner, Vfs};

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, VfsError>;

/// Name of the default (anonymous) data stream, matching NTFS's unnamed
/// `$DATA` stream.
pub const DEFAULT_STREAM: &str = "";

/// Conventional name of the stream holding an active file's active part.
pub const ACTIVE_STREAM: &str = "active";
