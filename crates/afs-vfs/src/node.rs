//! On-"disk" node representation: directories, files, streams, attributes.

use std::collections::BTreeMap;

/// Whether a directory entry is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A regular file (possibly with multiple streams).
    File,
    /// A directory.
    Directory,
}

/// NT-style file attribute bits. Plain data; fields are public.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FileAttributes {
    /// Writes and deletes are refused.
    pub readonly: bool,
    /// Excluded from default directory listings.
    pub hidden: bool,
    /// Marked as an operating-system file.
    pub system: bool,
}

/// Metadata reported by [`crate::Vfs::stat`]. Plain data; fields are
/// public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// File or directory.
    pub kind: NodeKind,
    /// Length of the default stream in bytes (0 for directories).
    pub len: u64,
    /// Sum of all stream lengths in bytes (0 for directories).
    pub total_len: u64,
    /// Names of all streams, sorted; empty for directories.
    pub streams: Vec<String>,
    /// Attribute bits.
    pub attributes: FileAttributes,
    /// Logical creation tick.
    pub created: u64,
    /// Logical tick of the last mutation.
    pub modified: u64,
}

/// One row of a directory listing. Plain data; fields are public.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Component name within the parent directory.
    pub name: String,
    /// File or directory.
    pub kind: NodeKind,
    /// Length of the default stream (0 for directories).
    pub len: u64,
    /// Attribute bits.
    pub attributes: FileAttributes,
}

#[derive(Debug, Clone)]
pub(crate) struct FileNode {
    pub(crate) streams: BTreeMap<String, Vec<u8>>,
    pub(crate) attributes: FileAttributes,
    pub(crate) created: u64,
    pub(crate) modified: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct DirNode {
    pub(crate) children: BTreeMap<String, usize>,
    pub(crate) created: u64,
    pub(crate) modified: u64,
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    File(FileNode),
    Dir(DirNode),
}

impl Node {
    pub(crate) fn kind(&self) -> NodeKind {
        match self {
            Node::File(_) => NodeKind::File,
            Node::Dir(_) => NodeKind::Directory,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_correctly() {
        let f = Node::File(FileNode {
            streams: BTreeMap::new(),
            attributes: FileAttributes::default(),
            created: 0,
            modified: 0,
        });
        let d = Node::Dir(DirNode {
            children: BTreeMap::new(),
            created: 0,
            modified: 0,
        });
        assert_eq!(f.kind(), NodeKind::File);
        assert_eq!(d.kind(), NodeKind::Directory);
    }

    #[test]
    fn default_attributes_are_clear() {
        let a = FileAttributes::default();
        assert!(!a.readonly && !a.hidden && !a.system);
    }
}
