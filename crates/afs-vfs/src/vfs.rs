//! The virtual file system proper.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::node::{DirNode, FileNode, Node};
use crate::{
    DirEntry, FileAttributes, Metadata, NodeKind, Result, VPath, VfsError, DEFAULT_STREAM,
};

/// Identifies the holder of byte-range locks (a handle, in the file API
/// layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockOwner(pub u64);

/// Shared (read) or exclusive (write) byte-range lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// Concurrent readers allowed.
    Shared,
    /// No other lock may overlap.
    Exclusive,
}

#[derive(Debug, Clone)]
struct RangeLock {
    stream: String,
    start: u64,
    end: u64, // exclusive
    owner: LockOwner,
    kind: LockKind,
}

impl RangeLock {
    fn overlaps(&self, stream: &str, start: u64, end: u64) -> bool {
        self.stream == stream && self.start < end && start < self.end
    }
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    root: usize,
    locks: HashMap<usize, Vec<RangeLock>>,
}

/// A thread-safe in-memory file system with NTFS-style named streams.
///
/// All methods take `&self`; interior locking uses a reader-writer lock.
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug)]
pub struct Vfs {
    inner: RwLock<Inner>,
    ticks: AtomicU64,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

impl Vfs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> Self {
        let root = Node::Dir(DirNode {
            children: Default::default(),
            created: 0,
            modified: 0,
        });
        Vfs {
            inner: RwLock::new(Inner {
                nodes: vec![Some(root)],
                free: Vec::new(),
                root: 0,
                locks: HashMap::new(),
            }),
            ticks: AtomicU64::new(1),
        }
    }

    fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    // ---- resolution helpers -------------------------------------------------

    fn resolve(inner: &Inner, path: &VPath) -> Result<usize> {
        let mut idx = inner.root;
        for comp in path.components() {
            let node = inner.nodes[idx].as_ref().expect("live node");
            match node {
                Node::Dir(dir) => {
                    idx = *dir
                        .children
                        .get(comp)
                        .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
                }
                Node::File(_) => return Err(VfsError::NotADirectory(path.to_string())),
            }
        }
        Ok(idx)
    }

    fn resolve_parent<'p>(inner: &Inner, path: &'p VPath) -> Result<(usize, &'p str)> {
        let name = path
            .file_name()
            .ok_or_else(|| VfsError::InvalidPath(path.to_string()))?;
        let parent = path.parent().expect("non-root has parent");
        let idx = Self::resolve(inner, &parent)?;
        match inner.nodes[idx].as_ref().expect("live node") {
            Node::Dir(_) => Ok((idx, name)),
            Node::File(_) => Err(VfsError::NotADirectory(parent.to_string())),
        }
    }

    fn file_node<'a>(inner: &'a Inner, path: &VPath) -> Result<(usize, &'a FileNode)> {
        let idx = Self::resolve(inner, path)?;
        match inner.nodes[idx].as_ref().expect("live node") {
            Node::File(f) => Ok((idx, f)),
            Node::Dir(_) => Err(VfsError::IsADirectory(path.to_string())),
        }
    }

    fn file_node_mut<'a>(inner: &'a mut Inner, path: &VPath) -> Result<(usize, &'a mut FileNode)> {
        let idx = Self::resolve(inner, path)?;
        match inner.nodes[idx].as_mut().expect("live node") {
            Node::File(f) => Ok((idx, f)),
            Node::Dir(_) => Err(VfsError::IsADirectory(path.to_string())),
        }
    }

    fn alloc(inner: &mut Inner, node: Node) -> usize {
        if let Some(idx) = inner.free.pop() {
            inner.nodes[idx] = Some(node);
            idx
        } else {
            inner.nodes.push(Some(node));
            inner.nodes.len() - 1
        }
    }

    // ---- namespace operations ----------------------------------------------

    /// Creates a directory. The parent must exist.
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken,
    /// [`VfsError::NotFound`]/[`VfsError::NotADirectory`] if the parent is
    /// missing or not a directory.
    pub fn create_dir(&self, path: &VPath) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        if let Node::Dir(dir) = inner.nodes[parent].as_ref().expect("live node") {
            if dir.children.contains_key(name) {
                return Err(VfsError::AlreadyExists(path.to_string()));
            }
        }
        let idx = Self::alloc(
            &mut inner,
            Node::Dir(DirNode {
                children: Default::default(),
                created: tick,
                modified: tick,
            }),
        );
        let name = name.to_owned();
        if let Node::Dir(dir) = inner.nodes[parent].as_mut().expect("live node") {
            dir.children.insert(name, idx);
            dir.modified = tick;
        }
        Ok(())
    }

    /// Creates a directory and all missing ancestors. Existing directories
    /// are not an error.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if a prefix names a file.
    pub fn create_dir_all(&self, path: &VPath) -> Result<()> {
        let mut cur = VPath::root();
        for comp in path.components() {
            cur = cur.join(comp)?;
            match self.create_dir(&cur) {
                Ok(()) => {}
                Err(VfsError::AlreadyExists(_)) => {
                    if !self.is_dir(&cur) {
                        return Err(VfsError::NotADirectory(cur.to_string()));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Creates an empty file (with an empty default stream).
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if the name is taken.
    pub fn create_file(&self, path: &VPath) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        if let Node::Dir(dir) = inner.nodes[parent].as_ref().expect("live node") {
            if dir.children.contains_key(name) {
                return Err(VfsError::AlreadyExists(path.to_string()));
            }
        }
        let mut streams = std::collections::BTreeMap::new();
        streams.insert(DEFAULT_STREAM.to_owned(), Vec::new());
        let idx = Self::alloc(
            &mut inner,
            Node::File(FileNode {
                streams,
                attributes: FileAttributes::default(),
                created: tick,
                modified: tick,
            }),
        );
        let name = name.to_owned();
        if let Node::Dir(dir) = inner.nodes[parent].as_mut().expect("live node") {
            dir.children.insert(name, idx);
            dir.modified = tick;
        }
        Ok(())
    }

    /// Deletes a file or an *empty* directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotEmpty`] for non-empty directories,
    /// [`VfsError::AccessDenied`] for read-only files.
    pub fn delete(&self, path: &VPath) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let idx = match inner.nodes[parent].as_ref().expect("live node") {
            Node::Dir(dir) => *dir
                .children
                .get(name)
                .ok_or_else(|| VfsError::NotFound(path.to_string()))?,
            Node::File(_) => unreachable!("parent checked to be a directory"),
        };
        match inner.nodes[idx].as_ref().expect("live node") {
            Node::Dir(dir) if !dir.children.is_empty() => {
                return Err(VfsError::NotEmpty(path.to_string()));
            }
            Node::File(f) if f.attributes.readonly => {
                return Err(VfsError::AccessDenied(path.to_string()));
            }
            _ => {}
        }
        let name = name.to_owned();
        if let Node::Dir(dir) = inner.nodes[parent].as_mut().expect("live node") {
            dir.children.remove(&name);
            dir.modified = tick;
        }
        inner.nodes[idx] = None;
        inner.free.push(idx);
        inner.locks.remove(&idx);
        Ok(())
    }

    /// Renames/moves a file or directory. The destination must not exist.
    ///
    /// Because all streams travel with the node, renaming an active file
    /// keeps its data and active parts together (Appendix A).
    ///
    /// # Errors
    ///
    /// [`VfsError::AlreadyExists`] if `to` exists, plus the usual
    /// resolution errors for either path.
    pub fn rename(&self, from: &VPath, to: &VPath) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (to_parent, to_name) = Self::resolve_parent(&inner, to)?;
        if let Node::Dir(dir) = inner.nodes[to_parent].as_ref().expect("live node") {
            if dir.children.contains_key(to_name) {
                return Err(VfsError::AlreadyExists(to.to_string()));
            }
        }
        let (from_parent, from_name) = Self::resolve_parent(&inner, from)?;
        let idx = match inner.nodes[from_parent].as_ref().expect("live node") {
            Node::Dir(dir) => *dir
                .children
                .get(from_name)
                .ok_or_else(|| VfsError::NotFound(from.to_string()))?,
            Node::File(_) => unreachable!("parent checked to be a directory"),
        };
        let from_name = from_name.to_owned();
        let to_name = to_name.to_owned();
        if let Node::Dir(dir) = inner.nodes[from_parent].as_mut().expect("live node") {
            dir.children.remove(&from_name);
            dir.modified = tick;
        }
        if let Node::Dir(dir) = inner.nodes[to_parent].as_mut().expect("live node") {
            dir.children.insert(to_name, idx);
            dir.modified = tick;
        }
        Ok(())
    }

    /// Copies a file, carrying **all** streams and attributes — this is
    /// what makes a copy of an active file another active file with the
    /// same data and executable components (§2.1). Locks do not copy.
    ///
    /// # Errors
    ///
    /// [`VfsError::IsADirectory`] if `from` is a directory,
    /// [`VfsError::AlreadyExists`] if `to` exists.
    pub fn copy_file(&self, from: &VPath, to: &VPath) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node(&inner, from)?;
        let mut copied = file.clone();
        copied.created = tick;
        copied.modified = tick;
        let (to_parent, to_name) = Self::resolve_parent(&inner, to)?;
        if let Node::Dir(dir) = inner.nodes[to_parent].as_ref().expect("live node") {
            if dir.children.contains_key(to_name) {
                return Err(VfsError::AlreadyExists(to.to_string()));
            }
        }
        let idx = Self::alloc(&mut inner, Node::File(copied));
        let to_name = to_name.to_owned();
        if let Node::Dir(dir) = inner.nodes[to_parent].as_mut().expect("live node") {
            dir.children.insert(to_name, idx);
            dir.modified = tick;
        }
        Ok(())
    }

    /// Lists a directory, sorted by name. Hidden entries are included;
    /// filtering is the caller's policy.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotADirectory`] if the path names a file.
    pub fn list_dir(&self, path: &VPath) -> Result<Vec<DirEntry>> {
        let inner = self.inner.read();
        let idx = Self::resolve(&inner, path)?;
        let Node::Dir(dir) = inner.nodes[idx].as_ref().expect("live node") else {
            return Err(VfsError::NotADirectory(path.to_string()));
        };
        Ok(dir
            .children
            .iter()
            .map(|(name, &child)| {
                let node = inner.nodes[child].as_ref().expect("live node");
                match node {
                    Node::File(f) => DirEntry {
                        name: name.clone(),
                        kind: NodeKind::File,
                        len: f.streams.get(DEFAULT_STREAM).map_or(0, |s| s.len() as u64),
                        attributes: f.attributes,
                    },
                    Node::Dir(_) => DirEntry {
                        name: name.clone(),
                        kind: NodeKind::Directory,
                        len: 0,
                        attributes: FileAttributes::default(),
                    },
                }
            })
            .collect())
    }

    /// Returns metadata for a file or directory.
    ///
    /// # Errors
    ///
    /// [`VfsError::NotFound`] if the path does not resolve.
    pub fn stat(&self, path: &VPath) -> Result<Metadata> {
        let inner = self.inner.read();
        let idx = Self::resolve(&inner, path)?;
        Ok(match inner.nodes[idx].as_ref().expect("live node") {
            Node::File(f) => Metadata {
                kind: NodeKind::File,
                len: f.streams.get(DEFAULT_STREAM).map_or(0, |s| s.len() as u64),
                total_len: f.streams.values().map(|s| s.len() as u64).sum(),
                streams: f.streams.keys().cloned().collect(),
                attributes: f.attributes,
                created: f.created,
                modified: f.modified,
            },
            Node::Dir(d) => Metadata {
                kind: NodeKind::Directory,
                len: 0,
                total_len: 0,
                streams: Vec::new(),
                attributes: FileAttributes::default(),
                created: d.created,
                modified: d.modified,
            },
        })
    }

    /// `true` if the path resolves to anything.
    pub fn exists(&self, path: &VPath) -> bool {
        Self::resolve(&self.inner.read(), path).is_ok()
    }

    /// `true` if the path resolves to a directory.
    pub fn is_dir(&self, path: &VPath) -> bool {
        let inner = self.inner.read();
        Self::resolve(&inner, path)
            .map(|idx| inner.nodes[idx].as_ref().expect("live node").kind() == NodeKind::Directory)
            .unwrap_or(false)
    }

    /// `true` if the path resolves to a file.
    pub fn is_file(&self, path: &VPath) -> bool {
        let inner = self.inner.read();
        Self::resolve(&inner, path)
            .map(|idx| inner.nodes[idx].as_ref().expect("live node").kind() == NodeKind::File)
            .unwrap_or(false)
    }

    // ---- stream I/O ----------------------------------------------------------

    /// Reads from the stream addressed by `path` (default stream unless the
    /// path carries a `:stream` suffix) starting at `offset`, filling as
    /// much of `buf` as the stream allows. Returns the bytes read (0 at or
    /// past end-of-stream).
    ///
    /// # Errors
    ///
    /// [`VfsError::StreamNotFound`] if the named stream does not exist.
    pub fn read_stream(&self, path: &VPath, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let inner = self.inner.read();
        let (_, file) = Self::file_node(&inner, path)?;
        let data = file
            .streams
            .get(path.stream())
            .ok_or_else(|| VfsError::StreamNotFound(path.to_string()))?;
        let start = (offset as usize).min(data.len());
        let n = buf.len().min(data.len() - start);
        buf[..n].copy_from_slice(&data[start..start + n]);
        Ok(n)
    }

    /// Reads an entire stream into a vector.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::read_stream`].
    pub fn read_stream_to_end(&self, path: &VPath) -> Result<Vec<u8>> {
        let inner = self.inner.read();
        let (_, file) = Self::file_node(&inner, path)?;
        file.streams
            .get(path.stream())
            .cloned()
            .ok_or_else(|| VfsError::StreamNotFound(path.to_string()))
    }

    /// Writes `data` at `offset`, zero-filling any gap and creating the
    /// named stream on first write. Returns the bytes written.
    ///
    /// # Errors
    ///
    /// [`VfsError::AccessDenied`] if the file is read-only.
    pub fn write_stream(&self, path: &VPath, offset: u64, data: &[u8]) -> Result<usize> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        if file.attributes.readonly {
            return Err(VfsError::AccessDenied(path.to_string()));
        }
        let stream = file.streams.entry(path.stream().to_owned()).or_default();
        let end = offset as usize + data.len();
        if stream.len() < end {
            stream.resize(end, 0);
        }
        stream[offset as usize..end].copy_from_slice(data);
        file.modified = tick;
        Ok(data.len())
    }

    /// Replaces the stream's entire contents.
    ///
    /// # Errors
    ///
    /// Same as [`Vfs::write_stream`].
    pub fn write_stream_replace(&self, path: &VPath, data: &[u8]) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        if file.attributes.readonly {
            return Err(VfsError::AccessDenied(path.to_string()));
        }
        file.streams.insert(path.stream().to_owned(), data.to_vec());
        file.modified = tick;
        Ok(())
    }

    /// Current length of the stream addressed by `path`.
    ///
    /// # Errors
    ///
    /// [`VfsError::StreamNotFound`] if the stream does not exist.
    pub fn stream_len(&self, path: &VPath) -> Result<u64> {
        let inner = self.inner.read();
        let (_, file) = Self::file_node(&inner, path)?;
        file.streams
            .get(path.stream())
            .map(|s| s.len() as u64)
            .ok_or_else(|| VfsError::StreamNotFound(path.to_string()))
    }

    /// Truncates or zero-extends the stream to `len`.
    ///
    /// # Errors
    ///
    /// [`VfsError::AccessDenied`] if the file is read-only;
    /// [`VfsError::StreamNotFound`] if the stream does not exist.
    pub fn set_stream_len(&self, path: &VPath, len: u64) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        if file.attributes.readonly {
            return Err(VfsError::AccessDenied(path.to_string()));
        }
        let stream = file
            .streams
            .get_mut(path.stream())
            .ok_or_else(|| VfsError::StreamNotFound(path.to_string()))?;
        stream.resize(len as usize, 0);
        file.modified = tick;
        Ok(())
    }

    /// Deletes a named stream (the default stream cannot be deleted).
    ///
    /// # Errors
    ///
    /// [`VfsError::InvalidPath`] when addressing the default stream,
    /// [`VfsError::StreamNotFound`] if the stream does not exist.
    pub fn delete_stream(&self, path: &VPath) -> Result<()> {
        if path.stream() == DEFAULT_STREAM {
            return Err(VfsError::InvalidPath(path.to_string()));
        }
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        if file.streams.remove(path.stream()).is_none() {
            return Err(VfsError::StreamNotFound(path.to_string()));
        }
        file.modified = tick;
        Ok(())
    }

    /// Sets or clears the read-only attribute.
    ///
    /// # Errors
    ///
    /// Resolution errors if the path is not a file.
    pub fn set_readonly(&self, path: &VPath, readonly: bool) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        file.attributes.readonly = readonly;
        file.modified = tick;
        Ok(())
    }

    /// Sets or clears the hidden attribute.
    ///
    /// # Errors
    ///
    /// Resolution errors if the path is not a file.
    pub fn set_hidden(&self, path: &VPath, hidden: bool) -> Result<()> {
        let tick = self.tick();
        let mut inner = self.inner.write();
        let (_, file) = Self::file_node_mut(&mut inner, path)?;
        file.attributes.hidden = hidden;
        file.modified = tick;
        Ok(())
    }

    // ---- byte-range locks -----------------------------------------------------

    /// Acquires a byte-range lock on the stream addressed by `path`.
    ///
    /// Lock semantics follow NT `LockFile`: exclusive locks conflict with
    /// any overlapping lock by another owner; shared locks conflict only
    /// with overlapping exclusive locks. Locking never blocks — callers
    /// poll or fail, as the Win32 API does.
    ///
    /// # Errors
    ///
    /// [`VfsError::LockConflict`] on overlap.
    pub fn lock_range(
        &self,
        path: &VPath,
        owner: LockOwner,
        start: u64,
        len: u64,
        kind: LockKind,
    ) -> Result<()> {
        let mut inner = self.inner.write();
        let (idx, _) = Self::file_node(&inner, path)?;
        let end = start.saturating_add(len);
        let locks = inner.locks.entry(idx).or_default();
        for lock in locks.iter() {
            if lock.owner != owner && lock.overlaps(path.stream(), start, end) {
                let conflict = kind == LockKind::Exclusive || lock.kind == LockKind::Exclusive;
                if conflict {
                    return Err(VfsError::LockConflict(path.to_string()));
                }
            }
        }
        locks.push(RangeLock {
            stream: path.stream().to_owned(),
            start,
            end,
            owner,
            kind,
        });
        Ok(())
    }

    /// Releases one previously acquired lock with identical coordinates.
    ///
    /// # Errors
    ///
    /// [`VfsError::LockConflict`] if no matching lock is held by `owner`.
    pub fn unlock_range(&self, path: &VPath, owner: LockOwner, start: u64, len: u64) -> Result<()> {
        let mut inner = self.inner.write();
        let (idx, _) = Self::file_node(&inner, path)?;
        let end = start.saturating_add(len);
        let locks = inner.locks.entry(idx).or_default();
        let pos = locks
            .iter()
            .position(|l| {
                l.owner == owner && l.stream == path.stream() && l.start == start && l.end == end
            })
            .ok_or_else(|| VfsError::LockConflict(path.to_string()))?;
        locks.remove(pos);
        Ok(())
    }

    /// Releases every lock held by `owner` on the file (handle close).
    pub fn unlock_all(&self, path: &VPath, owner: LockOwner) {
        let mut inner = self.inner.write();
        if let Ok((idx, _)) = Self::file_node(&inner, path) {
            if let Some(locks) = inner.locks.get_mut(&idx) {
                locks.retain(|l| l.owner != owner);
            }
        }
    }

    /// Checks whether `owner` may access `[start, start+len)` of the stream
    /// for reading (`kind == Shared`) or writing (`kind == Exclusive`)
    /// given current locks by *other* owners.
    ///
    /// # Errors
    ///
    /// [`VfsError::LockConflict`] if a conflicting lock exists.
    pub fn check_access(
        &self,
        path: &VPath,
        owner: LockOwner,
        start: u64,
        len: u64,
        kind: LockKind,
    ) -> Result<()> {
        let inner = self.inner.read();
        let (idx, _) = Self::file_node(&inner, path)?;
        let end = start.saturating_add(len);
        if let Some(locks) = inner.locks.get(&idx) {
            for lock in locks {
                if lock.owner != owner && lock.overlaps(path.stream(), start, end) {
                    let conflict = kind == LockKind::Exclusive || lock.kind == LockKind::Exclusive;
                    if conflict {
                        return Err(VfsError::LockConflict(path.to_string()));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> VPath {
        VPath::parse(s).expect("valid path")
    }

    fn vfs_with_file(path: &str) -> Vfs {
        let vfs = Vfs::new();
        let vp = p(path);
        if let Some(parent) = vp.parent() {
            vfs.create_dir_all(&parent).expect("mkdirs");
        }
        vfs.create_file(&vp).expect("create");
        vfs
    }

    #[test]
    fn create_read_write_roundtrip() {
        let vfs = vfs_with_file("/a/b/f.txt");
        vfs.write_stream(&p("/a/b/f.txt"), 0, b"hello")
            .expect("write");
        assert_eq!(
            vfs.read_stream_to_end(&p("/a/b/f.txt")).expect("read"),
            b"hello"
        );
    }

    #[test]
    fn offset_write_zero_fills_gap() {
        let vfs = vfs_with_file("/f");
        vfs.write_stream(&p("/f"), 4, b"xy").expect("write");
        assert_eq!(
            vfs.read_stream_to_end(&p("/f")).expect("read"),
            vec![0, 0, 0, 0, b'x', b'y']
        );
    }

    #[test]
    fn partial_read_past_end() {
        let vfs = vfs_with_file("/f");
        vfs.write_stream(&p("/f"), 0, b"abc").expect("write");
        let mut buf = [0u8; 8];
        assert_eq!(vfs.read_stream(&p("/f"), 1, &mut buf).expect("read"), 2);
        assert_eq!(&buf[..2], b"bc");
        assert_eq!(vfs.read_stream(&p("/f"), 10, &mut buf).expect("read"), 0);
    }

    #[test]
    fn named_streams_are_independent() {
        let vfs = vfs_with_file("/x.af");
        vfs.write_stream(&p("/x.af"), 0, b"data part")
            .expect("write data");
        vfs.write_stream(&p("/x.af:active"), 0, b"active part")
            .expect("write active");
        assert_eq!(
            vfs.read_stream_to_end(&p("/x.af")).expect("read"),
            b"data part"
        );
        assert_eq!(
            vfs.read_stream_to_end(&p("/x.af:active")).expect("read"),
            b"active part"
        );
        let meta = vfs.stat(&p("/x.af")).expect("stat");
        assert_eq!(meta.streams, vec![String::new(), "active".to_owned()]);
        assert_eq!(meta.len, 9);
        assert_eq!(meta.total_len, 9 + 11);
    }

    #[test]
    fn copy_carries_all_streams() {
        let vfs = vfs_with_file("/orig.af");
        vfs.write_stream(&p("/orig.af"), 0, b"d").expect("w");
        vfs.write_stream(&p("/orig.af:active"), 0, b"sentinel-spec")
            .expect("w");
        vfs.copy_file(&p("/orig.af"), &p("/copy.af")).expect("copy");
        assert_eq!(
            vfs.read_stream_to_end(&p("/copy.af:active")).expect("read"),
            b"sentinel-spec"
        );
        // Independent after copy.
        vfs.write_stream(&p("/copy.af"), 0, b"X").expect("w");
        assert_eq!(vfs.read_stream_to_end(&p("/orig.af")).expect("read"), b"d");
    }

    #[test]
    fn rename_preserves_streams() {
        let vfs = vfs_with_file("/a.af");
        vfs.write_stream(&p("/a.af:active"), 0, b"s").expect("w");
        vfs.rename(&p("/a.af"), &p("/b.af")).expect("rename");
        assert!(!vfs.exists(&p("/a.af")));
        assert_eq!(
            vfs.read_stream_to_end(&p("/b.af:active")).expect("read"),
            b"s"
        );
    }

    #[test]
    fn delete_file_and_empty_dir() {
        let vfs = Vfs::new();
        vfs.create_dir(&p("/d")).expect("mkdir");
        vfs.create_file(&p("/d/f")).expect("touch");
        assert_eq!(vfs.delete(&p("/d")), Err(VfsError::NotEmpty("/d".into())));
        vfs.delete(&p("/d/f")).expect("rm file");
        vfs.delete(&p("/d")).expect("rm dir");
        assert!(!vfs.exists(&p("/d")));
    }

    #[test]
    fn readonly_blocks_writes_and_delete() {
        let vfs = vfs_with_file("/ro");
        vfs.set_readonly(&p("/ro"), true).expect("set ro");
        assert!(matches!(
            vfs.write_stream(&p("/ro"), 0, b"x"),
            Err(VfsError::AccessDenied(_))
        ));
        assert!(matches!(
            vfs.delete(&p("/ro")),
            Err(VfsError::AccessDenied(_))
        ));
        vfs.set_readonly(&p("/ro"), false).expect("clear ro");
        vfs.write_stream(&p("/ro"), 0, b"x")
            .expect("write after clear");
    }

    #[test]
    fn list_dir_is_sorted_and_typed() {
        let vfs = Vfs::new();
        vfs.create_file(&p("/b")).expect("b");
        vfs.create_dir(&p("/a")).expect("a");
        let entries = vfs.list_dir(&VPath::root()).expect("list");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a");
        assert_eq!(entries[0].kind, NodeKind::Directory);
        assert_eq!(entries[1].name, "b");
        assert_eq!(entries[1].kind, NodeKind::File);
    }

    #[test]
    fn node_slots_are_reused() {
        let vfs = Vfs::new();
        for i in 0..100 {
            let path = p(&format!("/f{}", i % 3));
            vfs.create_file(&path).expect("create");
            vfs.delete(&path).expect("delete");
        }
        let inner = vfs.inner.read();
        assert!(
            inner.nodes.len() < 10,
            "free list should bound arena growth"
        );
    }

    #[test]
    fn exclusive_lock_conflicts() {
        let vfs = vfs_with_file("/log");
        let a = LockOwner(1);
        let b = LockOwner(2);
        vfs.lock_range(&p("/log"), a, 0, 10, LockKind::Exclusive)
            .expect("lock a");
        assert!(matches!(
            vfs.lock_range(&p("/log"), b, 5, 10, LockKind::Exclusive),
            Err(VfsError::LockConflict(_))
        ));
        // Non-overlapping is fine.
        vfs.lock_range(&p("/log"), b, 10, 5, LockKind::Exclusive)
            .expect("lock b disjoint");
        // Same owner may re-lock.
        vfs.lock_range(&p("/log"), a, 0, 10, LockKind::Exclusive)
            .expect("re-lock a");
    }

    #[test]
    fn shared_locks_coexist_but_block_writers() {
        let vfs = vfs_with_file("/f");
        let a = LockOwner(1);
        let b = LockOwner(2);
        vfs.lock_range(&p("/f"), a, 0, 100, LockKind::Shared)
            .expect("shared a");
        vfs.lock_range(&p("/f"), b, 0, 100, LockKind::Shared)
            .expect("shared b");
        assert!(vfs
            .check_access(&p("/f"), b, 0, 10, LockKind::Shared)
            .is_ok());
        assert!(matches!(
            vfs.check_access(&p("/f"), b, 0, 10, LockKind::Exclusive),
            Err(VfsError::LockConflict(_))
        ));
    }

    #[test]
    fn unlock_and_unlock_all() {
        let vfs = vfs_with_file("/f");
        let a = LockOwner(1);
        vfs.lock_range(&p("/f"), a, 0, 10, LockKind::Exclusive)
            .expect("lock");
        assert!(
            vfs.unlock_range(&p("/f"), a, 0, 5).is_err(),
            "coordinates must match"
        );
        vfs.unlock_range(&p("/f"), a, 0, 10).expect("unlock");
        vfs.lock_range(&p("/f"), a, 0, 10, LockKind::Exclusive)
            .expect("relock");
        vfs.unlock_all(&p("/f"), a);
        assert!(vfs
            .check_access(&p("/f"), LockOwner(2), 0, 10, LockKind::Exclusive)
            .is_ok());
    }

    #[test]
    fn locks_vanish_with_the_file() {
        let vfs = vfs_with_file("/f");
        vfs.lock_range(&p("/f"), LockOwner(1), 0, 10, LockKind::Exclusive)
            .expect("lock");
        vfs.delete(&p("/f")).expect("delete");
        vfs.create_file(&p("/f")).expect("recreate");
        vfs.check_access(&p("/f"), LockOwner(2), 0, 10, LockKind::Exclusive)
            .expect("fresh file has no locks");
    }

    #[test]
    fn stream_len_and_truncate() {
        let vfs = vfs_with_file("/f");
        vfs.write_stream(&p("/f"), 0, b"0123456789").expect("w");
        assert_eq!(vfs.stream_len(&p("/f")).expect("len"), 10);
        vfs.set_stream_len(&p("/f"), 4).expect("truncate");
        assert_eq!(vfs.read_stream_to_end(&p("/f")).expect("read"), b"0123");
        vfs.set_stream_len(&p("/f"), 6).expect("extend");
        assert_eq!(
            vfs.read_stream_to_end(&p("/f")).expect("read"),
            vec![b'0', b'1', b'2', b'3', 0, 0]
        );
    }

    #[test]
    fn delete_stream_rules() {
        let vfs = vfs_with_file("/f");
        vfs.write_stream(&p("/f:meta"), 0, b"m").expect("w");
        assert!(
            vfs.delete_stream(&p("/f")).is_err(),
            "default stream protected"
        );
        vfs.delete_stream(&p("/f:meta")).expect("drop stream");
        assert!(matches!(
            vfs.read_stream_to_end(&p("/f:meta")),
            Err(VfsError::StreamNotFound(_))
        ));
    }

    #[test]
    fn modified_tick_advances() {
        let vfs = vfs_with_file("/f");
        let before = vfs.stat(&p("/f")).expect("stat").modified;
        vfs.write_stream(&p("/f"), 0, b"x").expect("w");
        let after = vfs.stat(&p("/f")).expect("stat").modified;
        assert!(after > before);
    }

    #[test]
    fn file_as_directory_component_errors() {
        let vfs = vfs_with_file("/f");
        assert!(matches!(
            vfs.create_file(&p("/f/child")),
            Err(VfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn concurrent_writers_to_distinct_files() {
        let vfs = std::sync::Arc::new(Vfs::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let vfs = std::sync::Arc::clone(&vfs);
            handles.push(std::thread::spawn(move || {
                let path = p(&format!("/t{i}"));
                vfs.create_file(&path).expect("create");
                for round in 0..50u64 {
                    vfs.write_stream(&path, round * 4, &(round as u32).to_le_bytes())
                        .expect("write");
                }
                assert_eq!(vfs.stream_len(&path).expect("len"), 200);
            }));
        }
        for h in handles {
            h.join().expect("join");
        }
    }
}
