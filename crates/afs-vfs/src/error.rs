//! VFS error type.

use std::error::Error;
use std::fmt;

/// Errors produced by [`crate::Vfs`] operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VfsError {
    /// The path (or one of its parents) does not exist.
    NotFound(String),
    /// A path component that must be a directory is a file.
    NotADirectory(String),
    /// The operation requires a file but the path names a directory.
    IsADirectory(String),
    /// The target already exists.
    AlreadyExists(String),
    /// The path is syntactically invalid.
    InvalidPath(String),
    /// The file's read-only attribute forbids the operation.
    AccessDenied(String),
    /// A byte-range lock held by another owner conflicts.
    LockConflict(String),
    /// The requested named stream does not exist.
    StreamNotFound(String),
    /// A directory slated for non-recursive deletion is not empty.
    NotEmpty(String),
}

impl VfsError {
    /// The path the error refers to.
    pub fn path(&self) -> &str {
        match self {
            VfsError::NotFound(p)
            | VfsError::NotADirectory(p)
            | VfsError::IsADirectory(p)
            | VfsError::AlreadyExists(p)
            | VfsError::InvalidPath(p)
            | VfsError::AccessDenied(p)
            | VfsError::LockConflict(p)
            | VfsError::StreamNotFound(p)
            | VfsError::NotEmpty(p) => p,
        }
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "path not found: {p}"),
            VfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            VfsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            VfsError::AccessDenied(p) => write!(f, "access denied: {p}"),
            VfsError::LockConflict(p) => write!(f, "byte-range lock conflict: {p}"),
            VfsError::StreamNotFound(p) => write!(f, "stream not found: {p}"),
            VfsError::NotEmpty(p) => write!(f, "directory not empty: {p}"),
        }
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_accessor_returns_offending_path() {
        assert_eq!(VfsError::NotFound("/a".into()).path(), "/a");
        assert_eq!(VfsError::LockConflict("/b".into()).path(), "/b");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<VfsError>();
    }

    #[test]
    fn display_contains_path() {
        let msg = VfsError::AlreadyExists("/x/y".into()).to_string();
        assert!(msg.contains("/x/y"));
    }
}
