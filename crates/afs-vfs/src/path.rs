//! Absolute paths with NTFS-style stream suffixes.
//!
//! A [`VPath`] is always absolute and normalised. The final component may
//! carry a `:stream` suffix addressing a named stream of the file, mirroring
//! NTFS alternate data stream syntax: `/inbox/mail.af:active`.

use std::fmt;

use crate::{Result, VfsError, DEFAULT_STREAM};

/// An absolute, normalised VFS path, optionally naming a stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VPath {
    components: Vec<String>,
    stream: String,
}

impl VPath {
    /// The root directory.
    pub fn root() -> Self {
        VPath {
            components: Vec::new(),
            stream: DEFAULT_STREAM.to_owned(),
        }
    }

    /// Parses an absolute path like `/a/b/c` or `/a/b/c:stream`.
    ///
    /// Empty components (`//`), `.` and `..` are rejected rather than
    /// resolved — the simulated applications always use clean absolute
    /// paths, and rejecting keeps path handling predictable.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] if the path is relative, contains
    /// empty/dot components, contains more than one `:`, or names a stream
    /// on the root directory.
    pub fn parse(raw: &str) -> Result<Self> {
        if !raw.starts_with('/') {
            return Err(VfsError::InvalidPath(raw.to_owned()));
        }
        let (path_part, stream) = match raw.split_once(':') {
            None => (raw, DEFAULT_STREAM.to_owned()),
            Some((p, s)) => {
                if s.is_empty() || s.contains(':') || s.contains('/') {
                    return Err(VfsError::InvalidPath(raw.to_owned()));
                }
                (p, s.to_owned())
            }
        };
        let mut components = Vec::new();
        for comp in path_part.split('/').skip(1) {
            if comp.is_empty() {
                // Allow a single trailing slash on the root ("/").
                if components.is_empty() && path_part == "/" {
                    break;
                }
                return Err(VfsError::InvalidPath(raw.to_owned()));
            }
            if comp == "." || comp == ".." {
                return Err(VfsError::InvalidPath(raw.to_owned()));
            }
            components.push(comp.to_owned());
        }
        if components.is_empty() && stream != DEFAULT_STREAM {
            return Err(VfsError::InvalidPath(raw.to_owned()));
        }
        Ok(VPath { components, stream })
    }

    /// The directory components of this path (no stream).
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// The named stream this path addresses; [`DEFAULT_STREAM`] for the
    /// default data stream.
    pub fn stream(&self) -> &str {
        &self.stream
    }

    /// Returns the same file path addressing `stream` instead.
    pub fn with_stream(&self, stream: &str) -> VPath {
        VPath {
            components: self.components.clone(),
            stream: stream.to_owned(),
        }
    }

    /// Returns the same path without any stream suffix.
    pub fn file_path(&self) -> VPath {
        self.with_stream(DEFAULT_STREAM)
    }

    /// The final component, or `None` for the root.
    pub fn file_name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The extension of the final component (text after the last `.`),
    /// if any. Active files are recognised by extension, as in the
    /// prototype's `OpenFile` stub.
    pub fn extension(&self) -> Option<&str> {
        let name = self.file_name()?;
        let (_, ext) = name.rsplit_once('.')?;
        if ext.is_empty() {
            None
        } else {
            Some(ext)
        }
    }

    /// The parent directory, or `None` for the root.
    pub fn parent(&self) -> Option<VPath> {
        if self.components.is_empty() {
            return None;
        }
        Some(VPath {
            components: self.components[..self.components.len() - 1].to_vec(),
            stream: DEFAULT_STREAM.to_owned(),
        })
    }

    /// Appends a single component.
    ///
    /// # Errors
    ///
    /// Returns [`VfsError::InvalidPath`] if `name` is empty or contains
    /// `/` or `:`.
    pub fn join(&self, name: &str) -> Result<VPath> {
        if name.is_empty()
            || name.contains('/')
            || name.contains(':')
            || name == "."
            || name == ".."
        {
            return Err(VfsError::InvalidPath(name.to_owned()));
        }
        let mut components = self.components.clone();
        components.push(name.to_owned());
        Ok(VPath {
            components,
            stream: DEFAULT_STREAM.to_owned(),
        })
    }

    /// `true` if this is the root directory path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Number of components.
    pub fn depth(&self) -> usize {
        self.components.len()
    }
}

impl fmt::Display for VPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            f.write_str("/")?;
        } else {
            for comp in &self.components {
                write!(f, "/{comp}")?;
            }
        }
        if self.stream != DEFAULT_STREAM {
            write!(f, ":{}", self.stream)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for VPath {
    type Err = VfsError;

    fn from_str(s: &str) -> Result<Self> {
        VPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_absolute_path() {
        let p = VPath::parse("/a/b/c.txt").expect("parse");
        assert_eq!(p.components(), &["a", "b", "c.txt"]);
        assert_eq!(p.stream(), DEFAULT_STREAM);
        assert_eq!(p.to_string(), "/a/b/c.txt");
    }

    #[test]
    fn parses_stream_suffix() {
        let p = VPath::parse("/mail/in.af:active").expect("parse");
        assert_eq!(p.file_name(), Some("in.af"));
        assert_eq!(p.stream(), "active");
        assert_eq!(p.to_string(), "/mail/in.af:active");
        assert_eq!(p.file_path().to_string(), "/mail/in.af");
    }

    #[test]
    fn root_parses_and_displays() {
        let p = VPath::parse("/").expect("parse");
        assert!(p.is_root());
        assert_eq!(p.to_string(), "/");
        assert_eq!(p.parent(), None);
        assert_eq!(p.file_name(), None);
    }

    #[test]
    fn rejects_bad_paths() {
        for bad in [
            "relative", "", "/a//b", "/a/./b", "/a/../b", "/a:b:c", "/:s", "/a/b:", "/a/b:x/y",
        ] {
            assert!(VPath::parse(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn extension_detection() {
        assert_eq!(
            VPath::parse("/x/report.af").expect("p").extension(),
            Some("af")
        );
        assert_eq!(VPath::parse("/x/noext").expect("p").extension(), None);
        assert_eq!(VPath::parse("/x/trailing.").expect("p").extension(), None);
        assert_eq!(
            VPath::parse("/x/a.tar.gz").expect("p").extension(),
            Some("gz")
        );
    }

    #[test]
    fn parent_and_join_are_inverse() {
        let p = VPath::parse("/a/b").expect("p");
        let child = p.join("c").expect("join");
        assert_eq!(child.to_string(), "/a/b/c");
        assert_eq!(child.parent().expect("parent"), p);
    }

    #[test]
    fn join_rejects_bad_components() {
        let root = VPath::root();
        for bad in ["", "a/b", "a:b", ".", ".."] {
            assert!(root.join(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn with_stream_round_trips() {
        let p = VPath::parse("/f.af").expect("p");
        let s = p.with_stream("active");
        assert_eq!(s.stream(), "active");
        assert_eq!(s.file_path(), p);
    }

    #[test]
    fn ordering_is_stable() {
        let a = VPath::parse("/a").expect("a");
        let b = VPath::parse("/b").expect("b");
        assert!(a < b);
    }

    #[test]
    fn from_str_works() {
        let p: VPath = "/x/y".parse().expect("fromstr");
        assert_eq!(p.depth(), 2);
    }
}
