//! Model-based property test: the VFS against a naive in-memory model.
//!
//! Random sequences of namespace and stream operations are applied to
//! both the real `Vfs` and a `HashMap`-based model; observable state must
//! agree after every step.

use std::collections::HashMap;

use afs_vfs::{VPath, Vfs, VfsError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    CreateFile(u8),
    Delete(u8),
    WriteAt(u8, u16, Vec<u8>),
    Truncate(u8, u16),
    Copy(u8, u8),
    Rename(u8, u8),
}

fn name(i: u8) -> String {
    format!("/f{}", i % 6)
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::CreateFile),
        any::<u8>().prop_map(Op::Delete),
        (
            any::<u8>(),
            0u16..512,
            proptest::collection::vec(any::<u8>(), 1..32)
        )
            .prop_map(|(f, o, d)| Op::WriteAt(f, o, d)),
        (any::<u8>(), 0u16..512).prop_map(|(f, l)| Op::Truncate(f, l)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Copy(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vfs_agrees_with_model(ops in proptest::collection::vec(op(), 1..60)) {
        let vfs = Vfs::new();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in &ops {
            match op {
                Op::CreateFile(i) => {
                    let path = name(*i);
                    let real = vfs.create_file(&VPath::parse(&path).expect("p"));
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(path) {
                        prop_assert!(real.is_ok());
                        e.insert(Vec::new());
                    } else {
                        prop_assert!(matches!(real, Err(VfsError::AlreadyExists(_))));
                    }
                }
                Op::Delete(i) => {
                    let path = name(*i);
                    let real = vfs.delete(&VPath::parse(&path).expect("p"));
                    if model.remove(&path).is_some() {
                        prop_assert!(real.is_ok());
                    } else {
                        prop_assert!(matches!(real, Err(VfsError::NotFound(_))));
                    }
                }
                Op::WriteAt(i, offset, data) => {
                    let path = name(*i);
                    let real = vfs.write_stream(&VPath::parse(&path).expect("p"), *offset as u64, data);
                    match model.get_mut(&path) {
                        Some(content) => {
                            prop_assert!(real.is_ok());
                            let end = *offset as usize + data.len();
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[*offset as usize..end].copy_from_slice(data);
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Truncate(i, len) => {
                    let path = name(*i);
                    let real = vfs.set_stream_len(&VPath::parse(&path).expect("p"), *len as u64);
                    match model.get_mut(&path) {
                        Some(content) => {
                            prop_assert!(real.is_ok());
                            content.resize(*len as usize, 0);
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Copy(a, b) => {
                    let (from, to) = (name(*a), name(*b));
                    let real = vfs.copy_file(
                        &VPath::parse(&from).expect("p"),
                        &VPath::parse(&to).expect("p"),
                    );
                    if from == to {
                        prop_assert!(real.is_err());
                    } else {
                        match (model.get(&from).cloned(), model.contains_key(&to)) {
                            (Some(content), false) => {
                                prop_assert!(real.is_ok());
                                model.insert(to, content);
                            }
                            _ => prop_assert!(real.is_err()),
                        }
                    }
                }
                Op::Rename(a, b) => {
                    let (from, to) = (name(*a), name(*b));
                    let real = vfs.rename(
                        &VPath::parse(&from).expect("p"),
                        &VPath::parse(&to).expect("p"),
                    );
                    if from == to {
                        prop_assert!(real.is_err());
                    } else {
                        match (model.contains_key(&from), model.contains_key(&to)) {
                            (true, false) => {
                                prop_assert!(real.is_ok());
                                let content = model.remove(&from).expect("present");
                                model.insert(to, content);
                            }
                            _ => prop_assert!(real.is_err()),
                        }
                    }
                }
            }

            // Full-state agreement after every step.
            for (path, content) in &model {
                let got = vfs
                    .read_stream_to_end(&VPath::parse(path).expect("p"))
                    .expect("model file exists in vfs");
                prop_assert_eq!(&got, content, "content mismatch at {}", path);
            }
            let listing = vfs.list_dir(&VPath::root()).expect("list");
            prop_assert_eq!(listing.len(), model.len(), "entry count mismatch");
        }
    }
}
