//! Benchmark harness regenerating the paper's evaluation (Figure 6).
//!
//! §6 of the paper measures "an application that reads and writes
//! fixed-size blocks from an active file", for block sizes 8–2048 bytes,
//! timing 1000 calls per configuration, across three implementations
//! (process-with-control, DLL-with-thread, DLL-only) and three critical
//! caching paths (remote source, on-disk cache, in-memory cache).
//!
//! [`measure`] runs exactly that experiment over the real runtime with the
//! calibrated Pentium-II cost model and per-thread virtual clocks; the
//! `figure6` binary prints the six panels, and `tests/figure6_shape.rs`
//! asserts the reproduction claims (ordering, growth, read/write
//! asymmetry).

pub mod cluster;
pub mod gate;
pub mod workload;

pub use cluster::{
    cluster_cell_label, cluster_panel_clients, gate_cluster_clients, measure_cluster,
    measure_cluster_rebalance, render_cluster_panel, ClusterMeasurement, RebalanceMeasurement,
    CLUSTER_BLOCK, CLUSTER_COPIES, CLUSTER_FILES, CLUSTER_FLEET, CLUSTER_REBALANCE_KEYS,
};
pub use gate::{bench_json, compare, parse_bench_doc, BenchDoc, StrategyStats};

use std::sync::Arc;

use afs_core::{AfsWorld, Backing, SentinelSpec, Strategy};
use afs_net::Service;
use afs_remote::{FileClient, FileServer};
use afs_sim::{clock, CostSnapshot, HardwareProfile, Series};
use afs_vfs::VPath;
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

/// The block sizes of Figure 6.
pub const BLOCK_SIZES: [usize; 5] = [8, 32, 128, 512, 2048];

/// Calls per configuration ("time 1000 calls of each", §6).
pub const DEFAULT_OPS: usize = 1000;

/// The three implementation series of Figure 6 (the simple process
/// strategy of §4.1 is not plotted in the paper; the harness can still
/// run it for the ablation).
pub const FIGURE6_STRATEGIES: [Strategy; 3] = [
    Strategy::ProcessControl,
    Strategy::DllThread,
    Strategy::DllOnly,
];

/// The critical path the sentinel exercises (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathKind {
    /// Panel (a): the sentinel contacts a remote file server per
    /// operation.
    Remote,
    /// Panel (b): the sentinel uses the on-disk cache (the data part).
    Disk,
    /// Panel (c): the sentinel uses an in-memory cache.
    Memory,
}

impl PathKind {
    /// All panels in paper order.
    pub const ALL: [PathKind; 3] = [PathKind::Remote, PathKind::Disk, PathKind::Memory];

    /// Panel letter used in output ("a", "b", "c").
    pub fn panel(self) -> &'static str {
        match self {
            PathKind::Remote => "a",
            PathKind::Disk => "b",
            PathKind::Memory => "c",
        }
    }

    /// Human description matching the figure caption.
    pub fn describe(self) -> &'static str {
        match self {
            PathKind::Remote => "sentinel uses a remote source",
            PathKind::Disk => "sentinel uses a local on-disk cache",
            PathKind::Memory => "sentinel uses an in-memory cache",
        }
    }
}

/// Read or write direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `ReadFile` latency.
    Read,
    /// `WriteFile` cost.
    Write,
}

/// One measured cell of Figure 6.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-operation virtual durations.
    pub series: Series,
    /// Counter deltas over the whole run (copies, switches, …).
    pub counters: CostSnapshot,
}

impl Measurement {
    /// Mean per-op time in µs — the unit the paper plots.
    pub fn mean_us(&self) -> f64 {
        self.series.summarize().mean_us()
    }
}

/// Builds a world configured for one Figure 6 cell and returns the active
/// file path to drive.
pub(crate) fn build_world(
    path: PathKind,
    strategy: Strategy,
    profile: HardwareProfile,
    total_bytes: usize,
) -> (AfsWorld, &'static str) {
    let world = AfsWorld::builder().profile(profile).build();
    afs_sentinels::register_all(world.sentinels());
    let file = "/bench.af";
    match path {
        PathKind::Remote => {
            let server = FileServer::new();
            server.seed("/blob", &vec![0xA5u8; total_bytes]);
            world
                .net()
                .register("files", Arc::clone(&server) as Arc<dyn Service>);
            world
                .install_active_file(
                    file,
                    &SentinelSpec::new("mirror", strategy)
                        .with("service", "files")
                        .with("remote", "/blob"),
                )
                .expect("install mirror");
        }
        PathKind::Disk | PathKind::Memory => {
            let backing = if path == PathKind::Disk {
                Backing::Disk
            } else {
                Backing::Memory
            };
            world
                .install_active_file(
                    file,
                    &SentinelSpec::new("mirror", strategy).backing(backing),
                )
                .expect("install mirror");
            // Pre-populate the data part so reads have bytes to return
            // (the memory cache warms from it on open).
            world
                .vfs()
                .write_stream_replace(
                    &VPath::parse(file).expect("path"),
                    &vec![0xA5u8; total_bytes],
                )
                .expect("seed data part");
        }
    }
    (world, file)
}

/// Public wrapper over the world construction for external benches: a
/// world + active-file path for one (path, strategy, profile) cell with a
/// pre-seeded extent.
pub fn build_world_for_bench(
    path: PathKind,
    strategy: Strategy,
    profile: HardwareProfile,
    total_bytes: usize,
) -> (AfsWorld, &'static str) {
    build_world(path, strategy, profile, total_bytes)
}

/// Runs one Figure 6 cell: `ops` sequential operations of `block` bytes
/// through the given strategy and path, under the given hardware profile.
/// Returns per-op virtual durations and counter deltas.
pub fn measure(
    path: PathKind,
    strategy: Strategy,
    direction: Direction,
    block: usize,
    ops: usize,
    profile: HardwareProfile,
) -> Measurement {
    let total = block * ops;
    let (world, file) = build_world(path, strategy, profile, total);
    run_cell(&world, file, direction, block, ops)
}

/// Like [`measure`], but also returns the world's per-op trace summary —
/// the observed §4 cost profile (crossings and copies per operation) for
/// the cell, straight from the [`afs_sim::OpTrace`] ring.
pub fn measure_traced(
    path: PathKind,
    strategy: Strategy,
    direction: Direction,
    block: usize,
    ops: usize,
    profile: HardwareProfile,
) -> (Measurement, Vec<afs_sim::OpSummary>) {
    let total = block * ops;
    let (world, file) = build_world(path, strategy, profile, total);
    let m = run_cell(&world, file, direction, block, ops);
    (m, world.trace().summary())
}

/// Runs a small sequential-read workload through all four §4 strategies
/// with telemetry enabled and renders every collected span as one
/// chrome://tracing JSON document (one trace-viewer "process" per
/// strategy). Backs `figure6 --spans out.json`.
pub fn span_trace(ops: usize, profile: HardwareProfile) -> String {
    const BLOCK: usize = 128;
    let strategies = [
        Strategy::Process,
        Strategy::ProcessControl,
        Strategy::DllThread,
        Strategy::DllOnly,
    ];
    let mut groups: Vec<(&str, Vec<afs_telemetry::SpanRecord>)> = Vec::new();
    for strategy in strategies {
        let (world, file) = build_world(PathKind::Memory, strategy, profile.clone(), BLOCK * ops);
        world.telemetry().set_enabled(true);
        let api = world.api();
        let _guard = clock::install(0);
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("open bench file");
        let mut buf = vec![0u8; BLOCK];
        for _ in 0..ops {
            let n = api.read_file(h, &mut buf).expect("read");
            assert_eq!(n, BLOCK, "seeded file must satisfy full blocks");
        }
        api.close_handle(h).expect("close");
        groups.push((strategy.label(), world.telemetry().spans()));
    }
    afs_telemetry::chrome_trace(&groups)
}

/// The tracing-overhead ablation: the same cell measured dark and fully
/// instrumented, plus whether the §4 charge deltas matched bit-for-bit.
#[derive(Debug, Clone)]
pub struct TraceAblation {
    /// Telemetry disabled — the dark baseline.
    pub base: afs_sim::Summary,
    /// Telemetry enabled (spans, slow-op scan, SLO windows, flight rings).
    pub traced: afs_sim::Summary,
    /// Whether both runs charged the cost model identically. Tracing is
    /// observability, not work: any divergence is a §4 accounting bug.
    pub charges_match: bool,
}

/// Measures the observability tax: one gate cell (memory path,
/// DLL-with-thread, 128-byte sequential reads) run dark, then re-run with
/// telemetry fully on — span capture, slow-op scanning, a declared SLO,
/// and the flight-recorder rings all active. Because latency is virtual
/// time and spans charge nothing, the two summaries must agree; the
/// `ablation_trace` gate cell pins the instrumented number.
pub fn measure_trace_ablation(ops: usize, profile: HardwareProfile) -> TraceAblation {
    const BLOCK: usize = 128;
    let run = |instrumented: bool| {
        let world = AfsWorld::builder().profile(profile.clone()).build();
        afs_sentinels::register_all(world.sentinels());
        let file = "/bench.af";
        let mut spec = SentinelSpec::new("mirror", Strategy::DllThread).backing(Backing::Memory);
        if instrumented {
            // Everything the observability layer can switch on at once:
            // spans, a slow-op threshold low enough to scan every op, and
            // a declared SLO so the burn-rate windows tick per operation.
            spec = spec
                .with("slo_p99_us", "1000")
                .with("slo_err_ppm", "100000");
        }
        world
            .install_active_file(file, &spec)
            .expect("install mirror");
        world
            .vfs()
            .write_stream_replace(
                &VPath::parse(file).expect("path"),
                &vec![0xA5u8; BLOCK * ops],
            )
            .expect("seed data part");
        if instrumented {
            world.telemetry().set_enabled(true);
            world.telemetry().set_slow_threshold_ns(1);
        }
        run_cell(&world, file, Direction::Read, BLOCK, ops)
    };
    let base = run(false);
    let traced = run(true);
    TraceAblation {
        charges_match: base.counters == traced.counters,
        base: base.series.summarize(),
        traced: traced.series.summarize(),
    }
}

/// Block size used by the batching ablation (the Figure 6 midpoint).
pub const BATCH_BLOCK: usize = 128;

/// Ring depth used by the batching ablation and the `ablation_batch`
/// gate cells.
pub const BATCH_RING_DEPTH: usize = 8;

/// The ring-batching ablation: the same sequential-read cell measured
/// unbatched and with `batch=on`, plus the crossing counts the ring
/// exists to cut and the transcript-equivalence verdict.
#[derive(Debug, Clone)]
pub struct BatchAblation {
    /// Plain Thread-strategy cell — one round trip per read.
    pub unbatched: afs_sim::Summary,
    /// Ring-batched cell — one doorbell plus one round trip per
    /// [`BATCH_RING_DEPTH`] reads, readahead filling the ring.
    pub batched: afs_sim::Summary,
    /// Protection-domain crossings (process plus thread switches) per
    /// operation, unbatched.
    pub crossings_per_op_unbatched: f64,
    /// Crossings per operation, batched — the ~K× smaller number.
    pub crossings_per_op_batched: f64,
    /// Whether both runs returned byte-identical data for every read.
    /// Batching is a transport optimisation, not a semantic change: any
    /// divergence is a ring bug.
    pub transcripts_match: bool,
}

/// Measures the batching ablation: one gate cell (memory path,
/// DLL-with-thread, [`BATCH_BLOCK`]-byte sequential reads) run over the
/// plain pair transport, then re-run with `batch=on` /
/// `ring_depth=`[`BATCH_RING_DEPTH`] so the boundary is a
/// submission/completion ring. The seeded extent carries a varying byte
/// pattern so the transcript comparison catches offset errors, not just
/// length errors.
pub fn measure_batch_ablation(ops: usize, profile: HardwareProfile) -> BatchAblation {
    let seed: Vec<u8> = (0..BATCH_BLOCK * ops).map(|i| (i % 251) as u8).collect();
    let run = |batched: bool| {
        let world = AfsWorld::builder().profile(profile.clone()).build();
        afs_sentinels::register_all(world.sentinels());
        let file = "/bench.af";
        let mut spec = SentinelSpec::new("mirror", Strategy::DllThread).backing(Backing::Memory);
        if batched {
            spec = spec
                .with("batch", "on")
                .with("ring_depth", &BATCH_RING_DEPTH.to_string());
        }
        world
            .install_active_file(file, &spec)
            .expect("install mirror");
        world
            .vfs()
            .write_stream_replace(&VPath::parse(file).expect("path"), &seed)
            .expect("seed data part");
        let model = world.model().clone();
        let _guard = clock::install(0);
        let api = world.api();
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("open bench file");
        let before = model.snapshot();
        let mut series = Series::with_capacity(ops);
        let mut transcript = Vec::with_capacity(BATCH_BLOCK * ops);
        let mut buf = vec![0u8; BATCH_BLOCK];
        for _ in 0..ops {
            let start = clock::now();
            let n = api.read_file(h, &mut buf).expect("read");
            series.push(clock::now() - start);
            assert_eq!(n, BATCH_BLOCK, "seeded file must satisfy full blocks");
            transcript.extend_from_slice(&buf[..n]);
        }
        let counters = model.snapshot().since(&before);
        api.close_handle(h).expect("close");
        (series.summarize(), counters, transcript)
    };
    let (unbatched, uc, ut) = run(false);
    let (batched, bc, bt) = run(true);
    let per_op =
        |c: &CostSnapshot| (c.process_switches + c.thread_switches) as f64 / ops.max(1) as f64;
    BatchAblation {
        crossings_per_op_unbatched: per_op(&uc),
        crossings_per_op_batched: per_op(&bc),
        transcripts_match: ut == bt,
        unbatched,
        batched,
    }
}

/// Runs the batching ablation and renders it as the text table `figure6
/// --batch` prints.
pub fn render_batch_panel(ops: usize, profile: &HardwareProfile) -> String {
    let a = measure_batch_ablation(ops, profile.clone());
    let mut out = String::new();
    out.push_str(&format!(
        "Batching ablation — submission/completion ring vs per-op round trips \
         (Thread strategy, memory cache, {BATCH_BLOCK}-byte sequential reads, \
         ring_depth={BATCH_RING_DEPTH}, {ops} ops)\n"
    ));
    out.push_str(&format!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}\n",
        "mode", "mean", "p50", "p99", "crossings/op"
    ));
    for (label, s, cross) in [
        ("unbatched", &a.unbatched, a.crossings_per_op_unbatched),
        ("batched", &a.batched, a.crossings_per_op_batched),
    ] {
        out.push_str(&format!(
            "{:>10} {:>10.1}us {:>10.1}us {:>10.1}us {:>14.2}\n",
            label,
            s.mean_ns as f64 / 1_000.0,
            s.p50_ns as f64 / 1_000.0,
            s.p99_ns as f64 / 1_000.0,
            cross,
        ));
    }
    out.push_str(&format!(
        "transcripts match: {}; crossing reduction: {:.1}x\n",
        if a.transcripts_match { "yes" } else { "NO" },
        a.crossings_per_op_unbatched / a.crossings_per_op_batched.max(f64::EPSILON),
    ));
    out
}

/// Drives `ops` operations of `block` bytes against an already-built
/// world's active file, timing each under a fresh virtual clock.
fn run_cell(
    world: &AfsWorld,
    file: &str,
    direction: Direction,
    block: usize,
    ops: usize,
) -> Measurement {
    let api = world.api();
    let model = world.model().clone();

    let _guard = clock::install(0);
    let access = match direction {
        Direction::Read => Access::read_only(),
        Direction::Write => Access::read_write(),
    };
    let h = api
        .create_file(file, access, Disposition::OpenExisting)
        .expect("open bench file");
    let mut series = Series::with_capacity(ops);
    let before_counters = model.snapshot();
    let mut buf = vec![0u8; block];
    for i in 0..ops {
        let start = clock::now();
        match direction {
            Direction::Read => {
                let n = api.read_file(h, &mut buf).expect("read");
                assert_eq!(n, block, "seeded file must satisfy full blocks");
            }
            Direction::Write => {
                // Writes start at offset 0 so the disk/memory cache does
                // not grow unboundedly relative to reads; the pointer
                // advances naturally like the paper's streaming writer.
                let n = api.write_file(h, &buf).expect("write");
                assert_eq!(n, block);
            }
        }
        series.push(clock::now() - start);
        let _ = i;
    }
    let counters = model.snapshot().since(&before_counters);
    api.close_handle(h).expect("close");
    Measurement { series, counters }
}

/// Direct (uninstrumented) access to the same path — the baseline the
/// figure caption says is "indistinguishable from the DLL-only case".
pub fn measure_baseline(
    path: PathKind,
    direction: Direction,
    block: usize,
    ops: usize,
    profile: HardwareProfile,
) -> Measurement {
    let total = block * ops;
    let world = AfsWorld::builder().profile(profile).build();
    let model = world.model().clone();
    let _guard = clock::install(0);
    let mut series = Series::with_capacity(ops);
    let before_counters = model.snapshot();
    match path {
        PathKind::Remote => {
            let server = FileServer::new();
            server.seed("/blob", &vec![0xA5u8; total]);
            world
                .net()
                .register("files", Arc::clone(&server) as Arc<dyn Service>);
            let client = FileClient::new(world.net().clone(), "files");
            let payload = vec![0u8; block];
            for i in 0..ops {
                let offset = (i * block) as u64;
                let start = clock::now();
                match direction {
                    Direction::Read => {
                        let data = client.get("/blob", offset, block).expect("get");
                        assert_eq!(data.len(), block);
                    }
                    Direction::Write => {
                        client.put_async("/blob", offset, &payload).expect("put");
                    }
                }
                series.push(clock::now() - start);
            }
        }
        PathKind::Disk | PathKind::Memory => {
            // Direct application access to a passive local file: the cost
            // the application would pay without any sentinel. Disk costs
            // are charged manually, mirroring what the sentinel's cache
            // charges for the same medium.
            let api = world.api();
            let vpath = "/plain.bin";
            let h = api
                .create_file(vpath, Access::read_write(), Disposition::CreateAlways)
                .expect("create");
            api.write_file(h, &vec![0xA5u8; total]).expect("seed");
            api.set_file_pointer(h, 0, SeekMethod::Begin)
                .expect("rewind");
            let payload = vec![0u8; block];
            let mut buf = vec![0u8; block];
            for _ in 0..ops {
                let start = clock::now();
                if path == PathKind::Disk {
                    // Reads pay the access (seek + rotation); writes land
                    // in the drive's write cache, exactly as the
                    // sentinel's disk-backed CacheStore charges.
                    match direction {
                        Direction::Read => {
                            model.charge(afs_sim::Cost::DiskAccess);
                            model.charge(afs_sim::Cost::DiskReadBytes { bytes: block });
                        }
                        Direction::Write => {
                            model.charge(afs_sim::Cost::DiskWriteBytes { bytes: block });
                        }
                    }
                }
                match direction {
                    Direction::Read => {
                        api.read_file(h, &mut buf).expect("read");
                    }
                    Direction::Write => {
                        api.write_file(h, &payload).expect("write");
                    }
                }
                series.push(clock::now() - start);
            }
            api.close_handle(h).expect("close");
        }
    }
    let counters = model.snapshot().since(&before_counters);
    Measurement { series, counters }
}

/// Client counts swept by the concurrency ablation.
pub const MUX_CLIENTS: [usize; 4] = [1, 2, 8, 32];

/// Block size used by the concurrency ablation (the Figure 6 midpoint).
pub const MUX_BLOCK: usize = 128;

/// One cell of the concurrency ablation: `clients` concurrent writers on
/// one active file, with the sentinel either shared (session-multiplexed)
/// or private per open (`share=off`).
#[derive(Debug, Clone)]
pub struct MuxMeasurement {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Whether opens shared one sentinel.
    pub shared: bool,
    /// Pooled per-write virtual latencies across every client.
    pub summary: afs_sim::Summary,
    /// Protection-domain crossings over the whole run (process plus
    /// thread switches) — the number session multiplexing exists to cut.
    pub total_crossings: u64,
}

/// Runs one concurrency cell: `clients` threads each open `/mux.af`
/// (ProcessControl strategy, memory cache), seek to a private region, and
/// issue `ops_per_client` sequential writes of [`MUX_BLOCK`] bytes.
///
/// Barriers fence the write phase on both sides so every write runs with
/// all sessions attached: shared-sentinel staging behaviour (and thus the
/// latency distribution) is deterministic, which lets the bench gate hold
/// these numbers to the same threshold as the Figure 6 cells.
pub fn measure_concurrency(
    clients: usize,
    shared: bool,
    ops_per_client: usize,
    profile: HardwareProfile,
) -> MuxMeasurement {
    let block = MUX_BLOCK;
    let world = AfsWorld::builder().profile(profile).build();
    afs_sentinels::register_all(world.sentinels());
    let file = "/mux.af";
    let mut spec = SentinelSpec::new("mirror", Strategy::ProcessControl).backing(Backing::Memory);
    if !shared {
        spec = spec.with("share", "off");
    }
    world.install_active_file(file, &spec).expect("install mux");
    let region = ops_per_client * block;
    world
        .vfs()
        .write_stream_replace(
            &VPath::parse(file).expect("path"),
            &vec![0xA5u8; region * clients],
        )
        .expect("seed data part");

    let model = world.model().clone();
    let before = model.snapshot();
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let mut joins = Vec::new();
    for idx in 0..clients {
        let api = world.api();
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let _guard = clock::install(0);
            let h = api
                .create_file(file, Access::read_write(), Disposition::OpenExisting)
                .expect("open mux file");
            api.set_file_pointer(h, (idx * region) as i64, SeekMethod::Begin)
                .expect("seek to region");
            let buf = vec![idx as u8; block];
            let mut latencies = Vec::with_capacity(ops_per_client);
            barrier.wait();
            for _ in 0..ops_per_client {
                let start = clock::now();
                let n = api.write_file(h, &buf).expect("write");
                assert_eq!(n, block);
                latencies.push(clock::now() - start);
            }
            // Hold the session open until every client has finished its
            // writes: the session count (and with it the staging
            // behaviour) stays constant across the measured phase.
            barrier.wait();
            api.close_handle(h).expect("close");
            latencies
        }));
    }
    let mut series = Series::with_capacity(clients * ops_per_client);
    for join in joins {
        series.extend(join.join().expect("client thread"));
    }
    let counters = model.snapshot().since(&before);
    MuxMeasurement {
        clients,
        shared,
        summary: series.summarize(),
        total_crossings: counters.process_switches + counters.thread_switches,
    }
}

/// Runs the full concurrency panel (shared and private at each client
/// count) and renders it as the text table `figure6 --concurrency`
/// prints.
pub fn render_concurrency_panel(ops_per_client: usize, profile: &HardwareProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Concurrency ablation — shared sentinel vs per-open (Process strategy, \
         memory cache, {MUX_BLOCK}-byte writes, {ops_per_client} per client)\n"
    ));
    out.push_str(&format!(
        "{:>8} {:>12} {:>12} {:>12} {:>13} {:>13} {:>13}\n",
        "clients",
        "shared-p50",
        "shared-p99",
        "shared-cross",
        "private-p50",
        "private-p99",
        "private-cross"
    ));
    for clients in MUX_CLIENTS {
        let s = measure_concurrency(clients, true, ops_per_client, profile.clone());
        let p = measure_concurrency(clients, false, ops_per_client, profile.clone());
        out.push_str(&format!(
            "{:>8} {:>10.1}us {:>10.1}us {:>12} {:>11.1}us {:>11.1}us {:>13}\n",
            clients,
            s.summary.p50_ns as f64 / 1_000.0,
            s.summary.p99_ns as f64 / 1_000.0,
            s.total_crossings,
            p.summary.p50_ns as f64 / 1_000.0,
            p.summary.p99_ns as f64 / 1_000.0,
            p.total_crossings,
        ));
    }
    out
}

/// Fleet sizes swept by `figure6 --fleet` — the headline claim is the
/// last point: ten thousand concurrent active files on a bounded pool.
pub const FLEET_SIZES: [usize; 3] = [100, 1_000, 10_000];

/// Block size used by the fleet panel (the Figure 6 midpoint).
pub const FLEET_BLOCK: usize = 128;

/// One cell of the fleet panel: `files` concurrently-open active files
/// multiplexed over the bounded sentinel executor.
#[derive(Debug, Clone)]
pub struct FleetMeasurement {
    /// Number of concurrently-open active files.
    pub files: usize,
    /// The executor's worker cap (the pool bound `M`).
    pub worker_cap: usize,
    /// Per-read virtual latencies across every file.
    pub summary: afs_sim::Summary,
    /// Executor gauges sampled while every sentinel was live.
    pub fleet: afs_telemetry::FleetSnapshot,
}

/// Runs one fleet cell: installs `files` DLL-thread active files (memory
/// cache), opens them *all* — every sentinel is registered with the
/// executor at once — then issues `ops_per_file` sequential 128-byte
/// reads against each, timing every read under the virtual clock.
///
/// `workers` pins the pool bound; `None` uses the world default (one per
/// core, `AFS_FLEET_WORKERS`). The virtual latencies are identical either
/// way — the executor schedules real threads, the costs are charged on
/// virtual clocks — which is exactly what `tests/fleet_equivalence.rs`
/// asserts.
pub fn measure_fleet(
    files: usize,
    ops_per_file: usize,
    workers: Option<usize>,
    profile: HardwareProfile,
) -> FleetMeasurement {
    let mut builder = AfsWorld::builder().profile(profile);
    if let Some(w) = workers {
        builder = builder.fleet_workers(w);
    }
    let world = builder.build();
    afs_sentinels::register_all(world.sentinels());
    let _guard = clock::install(0);
    let api = world.api();
    let extent = vec![0xA5u8; FLEET_BLOCK * ops_per_file];
    let mut handles = Vec::with_capacity(files);
    for idx in 0..files {
        let path = format!("/fleet/{idx}.af");
        world
            .install_active_file(
                &path,
                &SentinelSpec::new("mirror", Strategy::DllThread).backing(Backing::Memory),
            )
            .expect("install fleet file");
        world
            .vfs()
            .write_stream_replace(&VPath::parse(&path).expect("path"), &extent)
            .expect("seed data part");
        handles.push(
            api.create_file(&path, Access::read_only(), Disposition::OpenExisting)
                .expect("open fleet file"),
        );
    }
    let mut series = Series::with_capacity(files * ops_per_file);
    let mut buf = vec![0u8; FLEET_BLOCK];
    for &h in &handles {
        for _ in 0..ops_per_file {
            let start = clock::now();
            let n = api.read_file(h, &mut buf).expect("fleet read");
            assert_eq!(n, FLEET_BLOCK, "seeded file must satisfy full blocks");
            series.push(clock::now() - start);
        }
    }
    // Sample the gauges while every file is still open: `sentinels` is the
    // concurrent-fleet size, `workers` the pool's actual thread count.
    let fleet = world.telemetry().fleet().snapshot();
    for h in handles {
        api.close_handle(h).expect("close fleet file");
    }
    FleetMeasurement {
        files,
        worker_cap: world.fleet_workers(),
        summary: series.summarize(),
        fleet,
    }
}

/// Runs the fleet sweep ([`FLEET_SIZES`], one read per file) and renders
/// it as the text table `figure6 --fleet` prints. The flat p50/p99
/// columns against a fixed worker count are the executor's headline:
/// sentinel count scales without scaling threads.
pub fn render_fleet_panel(profile: &HardwareProfile, workers: Option<usize>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Fleet panel — sharded sentinel executor (Thread strategy, memory cache, \
         {FLEET_BLOCK}-byte reads, one per file)\n"
    ));
    out.push_str(&format!(
        "{:>8} {:>10} {:>10} {:>9} {:>8} {:>10} {:>8} {:>9}\n",
        "files", "p50", "p99", "workers", "shards", "sentinels", "steals", "wakeups"
    ));
    for files in FLEET_SIZES {
        let m = measure_fleet(files, 1, workers, profile.clone());
        out.push_str(&format!(
            "{:>8} {:>8.1}us {:>8.1}us {:>4}/{:<4} {:>8} {:>10} {:>8} {:>9}\n",
            m.files,
            m.summary.p50_ns as f64 / 1_000.0,
            m.summary.p99_ns as f64 / 1_000.0,
            m.fleet.workers,
            m.worker_cap,
            m.fleet.shards,
            m.fleet.sentinels,
            m.fleet.steals,
            m.fleet.wakeups,
        ));
    }
    out
}

/// Block size of the durable-store cells.
pub const STORE_BLOCK: usize = 128;

/// One measured durable-store cell: per-commit (or per-recovery) virtual
/// latencies plus the store gauges after the run.
#[derive(Debug, Clone)]
pub struct StoreMeasurement {
    /// Per-sample virtual latencies.
    pub summary: afs_sim::Summary,
    /// WAL/fsync/checkpoint counters accumulated over the run.
    pub store: afs_telemetry::StoreSnapshot,
}

fn durable_null_spec() -> SentinelSpec {
    SentinelSpec::new("null", Strategy::DllOnly)
        .backing(Backing::Disk)
        .with("durable", "on")
        .with("sync", "commit")
        .with("checkpoint_pages", "0")
}

/// The `store-durable` cell: `ops` committed 128-byte writes through a
/// WAL-backed null sentinel (DLL-only, disk backing, `sync=commit`).
/// Every sample is one write + one flush, i.e. one group-committed WAL
/// batch with its fsync barrier — the §4 cost model charging durability
/// honestly.
pub fn measure_store(ops: usize, profile: HardwareProfile) -> StoreMeasurement {
    let world = AfsWorld::builder().profile(profile).build();
    let file = "/store.af";
    world
        .install_active_file(file, &durable_null_spec())
        .expect("install durable file");
    let _guard = clock::install(0);
    let api = world.api();
    let h = api
        .create_file(file, Access::read_write(), Disposition::OpenExisting)
        .expect("open durable file");
    let mut series = Series::with_capacity(ops);
    let buf = vec![0xA5u8; STORE_BLOCK];
    for _ in 0..ops {
        let start = clock::now();
        let n = api.write_file(h, &buf).expect("durable write");
        assert_eq!(n, STORE_BLOCK);
        api.flush_file_buffers(h).expect("commit");
        series.push(clock::now() - start);
    }
    api.close_handle(h).expect("close");
    StoreMeasurement {
        summary: series.summarize(),
        store: world.telemetry().store().snapshot(),
    }
}

/// The `store-recovery` cell: virtual time to reopen a durable active
/// file whose WAL holds `commits` committed batches — spec decode,
/// sentinel instantiation, WAL scan, and redo replay, measured over
/// `reopens` cold opens of fresh worlds sharing the surviving disk.
pub fn measure_store_recovery(
    commits: usize,
    reopens: usize,
    profile: HardwareProfile,
) -> StoreMeasurement {
    let vfs = Arc::new(afs_vfs::Vfs::new());
    let file = "/recover.af";
    {
        let world = AfsWorld::builder()
            .profile(profile.clone())
            .vfs(Arc::clone(&vfs))
            .build();
        world
            .install_active_file(file, &durable_null_spec())
            .expect("install durable file");
        let _guard = clock::install(0);
        let api = world.api();
        let h = api
            .create_file(file, Access::read_write(), Disposition::OpenExisting)
            .expect("open durable file");
        let buf = vec![0x5Au8; STORE_BLOCK];
        for _ in 0..commits {
            api.write_file(h, &buf).expect("durable write");
            api.flush_file_buffers(h).expect("commit");
        }
        api.close_handle(h).expect("close");
    }
    let mut series = Series::with_capacity(reopens);
    let mut store = afs_telemetry::StoreSnapshot::default();
    for _ in 0..reopens {
        let world = AfsWorld::builder()
            .profile(profile.clone())
            .vfs(Arc::clone(&vfs))
            .build();
        let _guard = clock::install(0);
        let api = world.api();
        let start = clock::now();
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("reopen durable file");
        series.push(clock::now() - start);
        api.close_handle(h).expect("close");
        store = world.telemetry().store().snapshot();
    }
    StoreMeasurement {
        summary: series.summarize(),
        store,
    }
}

/// A full panel: mean µs per (strategy, block size), plus the baseline
/// row.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Which caching path.
    pub path: PathKind,
    /// Read or write.
    pub direction: Direction,
    /// `rows[strategy_index][block_index]` mean µs, strategy order =
    /// [`FIGURE6_STRATEGIES`].
    pub rows: Vec<Vec<f64>>,
    /// Baseline mean µs per block size.
    pub baseline: Vec<f64>,
}

/// Runs one full panel of Figure 6.
pub fn run_panel(
    path: PathKind,
    direction: Direction,
    ops: usize,
    profile: &HardwareProfile,
) -> Panel {
    let mut rows = Vec::new();
    for strategy in FIGURE6_STRATEGIES {
        let mut row = Vec::new();
        for block in BLOCK_SIZES {
            row.push(measure(path, strategy, direction, block, ops, profile.clone()).mean_us());
        }
        rows.push(row);
    }
    let baseline = BLOCK_SIZES
        .iter()
        .map(|&block| measure_baseline(path, direction, block, ops, profile.clone()).mean_us())
        .collect();
    Panel {
        path,
        direction,
        rows,
        baseline,
    }
}

/// Renders a panel as the text table the `figure6` binary prints.
pub fn render_panel(panel: &Panel) -> String {
    let mut out = String::new();
    let dir = match panel.direction {
        Direction::Read => "Read",
        Direction::Write => "Write",
    };
    out.push_str(&format!(
        "Figure 6({}) — {} — {} (µs per call, mean of sweep)\n",
        panel.path.panel(),
        panel.path.describe(),
        dir
    ));
    out.push_str(&format!("{:>8}", "block"));
    for strategy in FIGURE6_STRATEGIES {
        out.push_str(&format!("{:>10}", strategy.label()));
    }
    out.push_str(&format!("{:>10}\n", "baseline"));
    for (bi, block) in BLOCK_SIZES.iter().enumerate() {
        out.push_str(&format!("{block:>8}"));
        for row in &panel.rows {
            out.push_str(&format!("{:>10.1}", row[bi]));
        }
        out.push_str(&format!("{:>10.1}\n", panel.baseline[bi]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_requested_sample_count() {
        let m = measure(
            PathKind::Memory,
            Strategy::DllOnly,
            Direction::Read,
            32,
            50,
            HardwareProfile::pentium_ii_300(),
        );
        assert_eq!(m.series.len(), 50);
        assert!(m.mean_us() > 0.0);
    }

    #[test]
    fn remote_path_moves_network_bytes() {
        let m = measure(
            PathKind::Remote,
            Strategy::DllOnly,
            Direction::Read,
            128,
            10,
            HardwareProfile::pentium_ii_300(),
        );
        assert!(m.counters.net_bytes >= 10 * 128);
        assert_eq!(m.counters.net_round_trips, 10);
    }

    #[test]
    fn disk_path_hits_the_disk() {
        let m = measure(
            PathKind::Disk,
            Strategy::DllOnly,
            Direction::Read,
            128,
            10,
            HardwareProfile::pentium_ii_300(),
        );
        assert_eq!(m.counters.disk_accesses, 10);
    }

    #[test]
    fn process_strategy_pays_process_switches_thread_pays_thread() {
        let p = measure(
            PathKind::Memory,
            Strategy::ProcessControl,
            Direction::Read,
            64,
            20,
            HardwareProfile::pentium_ii_300(),
        );
        assert!(p.counters.process_switches >= 40, "2 crossings per op");
        let t = measure(
            PathKind::Memory,
            Strategy::DllThread,
            Direction::Read,
            64,
            20,
            HardwareProfile::pentium_ii_300(),
        );
        assert!(t.counters.thread_switches >= 40);
        assert_eq!(t.counters.process_switches, 0);
    }

    #[test]
    fn copies_per_transfer_follow_the_paper() {
        // Pipes: 2 copies per transfer; shared memory: 1; DLL-only: only
        // the logic's own memcpy.
        let p = measure(
            PathKind::Memory,
            Strategy::ProcessControl,
            Direction::Read,
            256,
            10,
            HardwareProfile::pentium_ii_300(),
        );
        assert!(p.counters.pipe_copy_bytes >= 2 * 10 * 256);
        let t = measure(
            PathKind::Memory,
            Strategy::DllThread,
            Direction::Read,
            256,
            10,
            HardwareProfile::pentium_ii_300(),
        );
        assert_eq!(t.counters.pipe_copy_bytes, 0);
        assert!(t.counters.memcpy_bytes >= 10 * 256);
    }

    /// The executor's headline, asserted: a fleet two orders of magnitude
    /// larger runs on the same bounded pool with a flat p99.
    #[test]
    fn fleet_scales_on_a_bounded_pool_with_flat_p99() {
        const WORKERS: usize = 2;
        let profile = HardwareProfile::pentium_ii_300();
        let big_files = gate::gate_fleet_files();
        let small = measure_fleet(100, 1, Some(WORKERS), profile.clone());
        let big = measure_fleet(big_files, 1, Some(WORKERS), profile);
        assert!(
            big.fleet.workers <= WORKERS as u64,
            "{} files ran on {} workers (cap {WORKERS})",
            big.files,
            big.fleet.workers
        );
        assert_eq!(
            big.fleet.sentinels, big.files as u64,
            "every file's sentinel was live at once"
        );
        assert!(
            big.summary.p99_ns as f64 <= small.summary.p99_ns as f64 * 1.3,
            "p99 must stay flat as the fleet grows: {} files {} ns vs 100 files {} ns",
            big.files,
            big.summary.p99_ns,
            small.summary.p99_ns
        );
    }

    /// Single-sentinel parity: one file on a one-worker pool costs what
    /// the plain Thread-strategy cell costs — the refactor moved the
    /// scheduling, not the charging.
    #[test]
    fn fleet_single_sentinel_parity_matches_thread_cell() {
        const OPS: usize = 100;
        let profile = HardwareProfile::pentium_ii_300();
        let thread = measure(
            PathKind::Memory,
            Strategy::DllThread,
            Direction::Read,
            FLEET_BLOCK,
            OPS,
            profile.clone(),
        )
        .series
        .summarize();
        let parity = measure_fleet(1, OPS, Some(1), profile).summary;
        let within = |a: u64, b: u64| {
            let (a, b) = (a as f64, b as f64);
            (a - b).abs() <= b * 0.05
        };
        assert!(
            within(parity.p99_ns, thread.p99_ns),
            "parity p99 {} ns vs Thread cell {} ns",
            parity.p99_ns,
            thread.p99_ns
        );
        assert!(
            within(parity.p50_ns, thread.p50_ns),
            "parity p50 {} ns vs Thread cell {} ns",
            parity.p50_ns,
            thread.p50_ns
        );
    }

    #[test]
    fn render_panel_has_all_rows() {
        let profile = HardwareProfile::pentium_ii_300();
        let panel = run_panel(PathKind::Memory, Direction::Read, 10, &profile);
        let text = render_panel(&panel);
        assert!(text.contains("Process"));
        assert!(text.contains("Thread"));
        assert!(text.contains("DLL"));
        assert!(text.contains("2048"));
    }
}
