//! Regenerates Figure 6 of the paper: ReadFile and WriteFile overheads
//! (µs) of the three active-file implementations across the three
//! critical caching paths, block sizes 8–2048, 1000 calls each.
//!
//! Usage:
//!
//! ```text
//! figure6 [--ops N] [--profile pentium|modern] [--copies] [--trace] [--simple-process] [--concurrency] [--fleet] [--workers M] [--batch] [--cluster] [--spans FILE] [--json FILE]
//! ```
//!
//! `--copies` appends the per-operation accounting table (syscalls,
//! copies, switches) that explains *why* the curves order the way they
//! do; `--trace` appends the per-op [`afs_sim::OpTrace`] summary — the
//! live §4 cost profile (crossings/copies per op) as the strategy handles
//! recorded it; `--simple-process` adds the §4.1 strategy as an extra
//! series; `--profile modern` reruns the sweep with present-day constants
//! as an ablation; `--csv` emits machine-readable rows
//! (`panel,direction,strategy,block,mean_us`) for plotting;
//! `--concurrency` skips the sweep and prints the shared-sentinel
//! ablation instead: per-write latency and total domain crossings for
//! 1/2/8/32 concurrent clients, shared sentinel vs one sentinel per open;
//! `--fleet` skips the sweep and prints the sharded-executor panel:
//! per-read latency and executor gauges for 100/1k/10k concurrently-open
//! active files multiplexed over the bounded worker pool (`--workers M`
//! pins the pool size; the default is one worker per core);
//! `--batch` skips the sweep and prints the ring-batching ablation:
//! latency and protection-domain crossings per op for the same
//! sequential-read cell run unbatched and over the submission/completion
//! ring (`batch=on`, see `docs/BATCHING.md`);
//! `--cluster` skips the sweep and prints the replicated-cluster panel:
//! per-op latency and fleet gauges for zipfian client sessions swept
//! 1k → 100k → 1M over the consistent-hash fleet, plus the node-join
//! rebalance line (see `docs/CLUSTER.md`);
//! `--spans FILE` skips the sweep and instead records a telemetry span
//! trace of `--ops` reads per strategy, written as chrome://tracing JSON
//! (open in `chrome://tracing` or Perfetto); `--json FILE` skips the
//! sweep and writes the per-strategy latency summary the CI bench gate
//! compares against `BENCH_baseline.json` (see the `bench_gate` binary).

use afs_bench::{
    measure, measure_traced, render_panel, run_panel, Direction, PathKind, BLOCK_SIZES,
    DEFAULT_OPS, FIGURE6_STRATEGIES,
};
use afs_core::Strategy;
use afs_sim::HardwareProfile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ops = DEFAULT_OPS;
    let mut profile = HardwareProfile::pentium_ii_300();
    let mut show_copies = false;
    let mut show_trace = false;
    let mut simple_process = false;
    let mut csv = false;
    let mut concurrency = false;
    let mut fleet = false;
    let mut batch = false;
    let mut cluster = false;
    let mut fleet_workers: Option<usize> = None;
    let mut spans_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => csv = true,
            "--ops" => {
                i += 1;
                ops = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--ops needs a number"));
            }
            "--profile" => {
                i += 1;
                profile = match args.get(i).map(String::as_str) {
                    Some("pentium") => HardwareProfile::pentium_ii_300(),
                    Some("modern") => HardwareProfile::modern(),
                    _ => die("--profile pentium|modern"),
                };
            }
            "--concurrency" => concurrency = true,
            "--fleet" => fleet = true,
            "--batch" => batch = true,
            "--cluster" => cluster = true,
            "--workers" => {
                i += 1;
                fleet_workers = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--workers needs a number")),
                );
            }
            "--copies" => show_copies = true,
            "--trace" => show_trace = true,
            "--simple-process" => simple_process = true,
            "--spans" => {
                i += 1;
                spans_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--spans needs an output path")),
                );
            }
            "--json" => {
                i += 1;
                json_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs an output path")),
                );
            }
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    if concurrency {
        print!("{}", afs_bench::render_concurrency_panel(ops, &profile));
        return;
    }

    if fleet {
        print!("{}", afs_bench::render_fleet_panel(&profile, fleet_workers));
        return;
    }

    if batch {
        print!("{}", afs_bench::render_batch_panel(ops, &profile));
        return;
    }

    if cluster {
        print!("{}", afs_bench::render_cluster_panel(&profile));
        return;
    }

    if let Some(out) = json_out {
        let json = afs_bench::bench_json(ops, profile);
        std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
        eprintln!("figure6: wrote bench-gate summary JSON to {out}");
        return;
    }

    if let Some(out) = spans_out {
        let json = afs_bench::span_trace(ops, profile);
        std::fs::write(&out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
        eprintln!("figure6: wrote chrome-trace span JSON to {out}");
        return;
    }

    if csv {
        println!("panel,direction,strategy,block,mean_us");
        for path in PathKind::ALL {
            for direction in [Direction::Read, Direction::Write] {
                let dir = if direction == Direction::Read {
                    "read"
                } else {
                    "write"
                };
                let panel = run_panel(path, direction, ops, &profile);
                for (si, strategy) in FIGURE6_STRATEGIES.iter().enumerate() {
                    for (bi, block) in BLOCK_SIZES.iter().enumerate() {
                        println!(
                            "{},{},{},{},{:.2}",
                            path.panel(),
                            dir,
                            strategy.label(),
                            block,
                            panel.rows[si][bi]
                        );
                    }
                }
                for (bi, block) in BLOCK_SIZES.iter().enumerate() {
                    println!(
                        "{},{},baseline,{},{:.2}",
                        path.panel(),
                        dir,
                        block,
                        panel.baseline[bi]
                    );
                }
            }
        }
        return;
    }

    println!(
        "Active Files — Figure 6 reproduction ({} profile, {} calls per point)\n",
        profile.name, ops
    );
    for path in PathKind::ALL {
        for direction in [Direction::Read, Direction::Write] {
            let panel = run_panel(path, direction, ops, &profile);
            print!("{}", render_panel(&panel));
            if simple_process {
                print!("{:>8}", "block");
                println!("{:>10}", Strategy::Process.label());
                for block in BLOCK_SIZES {
                    let m = measure(
                        path,
                        Strategy::Process,
                        direction,
                        block,
                        ops,
                        profile.clone(),
                    );
                    println!("{block:>8}{:>10.1}", m.mean_us());
                }
            }
            println!();
        }
    }

    if show_copies {
        println!("Per-operation accounting at block=2048 (averages over {ops} ops)");
        println!(
            "{:>10} {:>8} {:>9} {:>9} {:>10} {:>10} {:>10}",
            "strategy", "path", "syscalls", "copies", "copy-bytes", "proc-sw", "thread-sw"
        );
        for path in PathKind::ALL {
            for strategy in FIGURE6_STRATEGIES {
                let m = measure(path, strategy, Direction::Read, 2048, ops, profile.clone());
                let per = |v: u64| v as f64 / ops as f64;
                println!(
                    "{:>10} {:>8} {:>9.1} {:>9.1} {:>10.0} {:>10.1} {:>10.1}",
                    strategy.label(),
                    path.panel(),
                    per(m.counters.syscalls),
                    per(m.counters.copies),
                    per(m.counters.pipe_copy_bytes + m.counters.memcpy_bytes),
                    per(m.counters.process_switches),
                    per(m.counters.thread_switches),
                );
            }
        }
    }

    if show_trace {
        println!();
        println!("Per-op trace at block=2048, memory path ({ops} reads per strategy)");
        println!(
            "{:>14} {:>8} {:>6} {:>10} {:>9} {:>10} {:>9}",
            "strategy", "op", "count", "bytes/op", "us/op", "cross/op", "copies/op"
        );
        for strategy in FIGURE6_STRATEGIES {
            let (_, summary) = measure_traced(
                PathKind::Memory,
                strategy,
                Direction::Read,
                2048,
                ops,
                profile.clone(),
            );
            for row in summary {
                println!(
                    "{:>14} {:>8} {:>6} {:>10.1} {:>9.2} {:>10.2} {:>9.2}",
                    row.strategy,
                    row.op.label(),
                    row.count,
                    row.bytes_per_op(),
                    row.micros_per_op(),
                    row.crossings_per_op(),
                    row.copies_per_op(),
                );
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("figure6: {msg}");
    std::process::exit(2);
}
