//! The CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--threshold-pct N]
//! ```
//!
//! Both files are `figure6 --json` documents. Exits non-zero if any
//! strategy's p99 latency in the current run exceeds the baseline's by
//! more than the threshold (default 30%), or if a baseline strategy is
//! missing from the current run.

use std::process::ExitCode;

use afs_bench::{compare, parse_bench_doc};

fn die(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    eprintln!("usage: bench_gate <baseline.json> <current.json> [--threshold-pct N]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 30.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let Some(value) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return die("--threshold-pct needs a numeric value");
                };
                threshold_pct = value;
            }
            other if other.starts_with("--") => {
                return die(&format!("unknown flag {other}"));
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return die("expected exactly two file arguments");
    };

    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_bench_doc(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match load(baseline_path) {
        Ok(doc) => doc,
        Err(e) => return die(&e),
    };
    let current = match load(current_path) {
        Ok(doc) => doc,
        Err(e) => return die(&e),
    };

    let violations = compare(&baseline, &current, threshold_pct);
    for (label, cur) in &current.strategies {
        match baseline.strategies.get(label) {
            Some(base) => println!(
                "{label}: p99 {} ns (baseline {} ns, limit +{threshold_pct}%)",
                cur.p99_ns, base.p99_ns
            ),
            None => println!("{label}: p99 {} ns (no baseline entry)", cur.p99_ns),
        }
    }
    if violations.is_empty() {
        println!("bench gate: PASS ({} strategies)", current.strategies.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench gate: REGRESSION — {v}");
        }
        ExitCode::FAILURE
    }
}
