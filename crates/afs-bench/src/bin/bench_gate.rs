//! The CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline.json> <current.json> [--threshold-pct N] [--summary FILE]
//! ```
//!
//! Both files are `figure6 --json` documents. Exits non-zero if any
//! strategy's p99 latency in the current run exceeds the baseline's by
//! more than the threshold (default 30%), or if a baseline strategy is
//! missing from the current run. `--summary FILE` appends the per-cell
//! comparison as a GitHub-flavoured markdown table — CI points it at
//! `$GITHUB_STEP_SUMMARY` so the deltas render on the run page.

use std::io::Write;
use std::process::ExitCode;

use afs_bench::{compare, parse_bench_doc, BenchDoc};

/// Renders the gate comparison as a markdown table: one row per cell in
/// the current run, with the baseline p99, the delta against it, and a
/// pass/fail column at the gate threshold.
fn markdown_summary(baseline: &BenchDoc, current: &BenchDoc, threshold_pct: f64) -> String {
    let mut out = String::new();
    out.push_str("## Bench gate\n\n");
    out.push_str(&format!(
        "Threshold: p99 within +{threshold_pct}% of baseline ({} ops per cell).\n\n",
        current.ops
    ));
    out.push_str("| cell | baseline p99 (ns) | current p99 (ns) | delta | status |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for (label, cur) in &current.strategies {
        match baseline.strategies.get(label) {
            Some(base) => {
                let delta_pct = if base.p99_ns == 0 {
                    0.0
                } else {
                    (cur.p99_ns as f64 - base.p99_ns as f64) / base.p99_ns as f64 * 100.0
                };
                let status = if delta_pct > threshold_pct {
                    "❌ regression"
                } else {
                    "✅"
                };
                out.push_str(&format!(
                    "| {label} | {} | {} | {delta_pct:+.1}% | {status} |\n",
                    base.p99_ns, cur.p99_ns
                ));
            }
            None => {
                out.push_str(&format!(
                    "| {label} | — | {} | — | 🆕 no baseline |\n",
                    cur.p99_ns
                ));
            }
        }
    }
    for (label, base) in &baseline.strategies {
        if !current.strategies.contains_key(label) {
            out.push_str(&format!(
                "| {label} | {} | — | — | ❌ missing from current run |\n",
                base.p99_ns
            ));
        }
    }
    out.push('\n');
    out
}

fn die(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    eprintln!(
        "usage: bench_gate <baseline.json> <current.json> [--threshold-pct N] [--summary FILE]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = 30.0f64;
    let mut summary_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold-pct" => {
                let Some(value) = iter.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return die("--threshold-pct needs a numeric value");
                };
                threshold_pct = value;
            }
            "--summary" => {
                let Some(value) = iter.next() else {
                    return die("--summary needs an output path");
                };
                summary_path = Some(value.clone());
            }
            other if other.starts_with("--") => {
                return die(&format!("unknown flag {other}"));
            }
            path => paths.push(path.to_owned()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return die("expected exactly two file arguments");
    };

    let load = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_bench_doc(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = match load(baseline_path) {
        Ok(doc) => doc,
        Err(e) => return die(&e),
    };
    let current = match load(current_path) {
        Ok(doc) => doc,
        Err(e) => return die(&e),
    };

    let violations = compare(&baseline, &current, threshold_pct);
    if let Some(path) = summary_path {
        // Append rather than truncate: $GITHUB_STEP_SUMMARY accumulates
        // sections from every step in the job.
        let table = markdown_summary(&baseline, &current, threshold_pct);
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(table.as_bytes()));
        if let Err(e) = write {
            return die(&format!("cannot write summary {path}: {e}"));
        }
    }
    for (label, cur) in &current.strategies {
        match baseline.strategies.get(label) {
            Some(base) => println!(
                "{label}: p99 {} ns (baseline {} ns, limit +{threshold_pct}%)",
                cur.p99_ns, base.p99_ns
            ),
            None => println!("{label}: p99 {} ns (no baseline entry)", cur.p99_ns),
        }
    }
    if violations.is_empty() {
        println!("bench gate: PASS ({} strategies)", current.strategies.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("bench gate: REGRESSION — {v}");
        }
        ExitCode::FAILURE
    }
}
