//! CI trace validation: drives one read through a seeded retry +
//! replica-failover fault plan with telemetry on, exports the collected
//! spans as a chrome://tracing document and the flight-recorder
//! post-mortem as JSON, and asserts the causal-tracing invariants the
//! observability layer promises:
//!
//! 1. the exported chrome trace parses and carries complete span events;
//! 2. the read is ONE contiguous trace — a single trace id, every span
//!    parent-linked under the `ReadFile` root;
//! 3. the trace spans at least two replicas (the tripped primary and the
//!    replica that served), visible as the annotated `breaker-reject`
//!    and `failover` child spans;
//! 4. the breaker trip froze the in-flight trace into a flight bundle.
//!
//! ```text
//! trace_validate [--trace trace.json] [--dump flight-dump.json]
//! ```
//!
//! Exits non-zero (with a message naming the violated invariant) on any
//! failure; the written artifacts are uploaded by the bench-smoke job
//! either way.

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;

use afs_bench::gate::json;
use afs_core::{AfsWorld, Backing, SentinelSpec, Strategy};
use afs_remote::FileServer;
use afs_sim::clock;
use afs_winapi::{Access, Disposition, FileApi};

const REPLICA_BODY: &[u8] = b"replica B body !!";

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_validate: FAIL — {msg}");
    ExitCode::FAILURE
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut trace_path = "trace.json".to_owned();
    let mut dump_path = "flight-dump.json".to_owned();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--trace" => match iter.next() {
                Some(p) => trace_path = p.clone(),
                None => return fail("--trace needs a path"),
            },
            "--dump" => match iter.next() {
                Some(p) => dump_path = p.clone(),
                None => return fail("--dump needs a path"),
            },
            other => return fail(&format!("unknown argument {other}")),
        }
    }

    // The seeded failover schedule (same as tests/tracing.rs): a
    // hard-partitioned primary and a once-flaky replica under a
    // threshold-1 breaker, 1 ms backoff, 2 ms cooldown — round 1 trips
    // both breakers, round 2 is rejected by both, round 3 half-opens them
    // and the replica's probe serves the read.
    let world = AfsWorld::new();
    afs_sentinels::register_all(world.sentinels());
    let primary = FileServer::new();
    primary.seed("/blob", b"primary body ----");
    world
        .net()
        .register("files", primary as Arc<dyn afs_net::Service>);
    let replica = FileServer::new();
    replica.seed("/blob", REPLICA_BODY);
    world
        .net()
        .register("files-b", replica as Arc<dyn afs_net::Service>);
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::DllOnly)
                .backing(Backing::Memory)
                .with("service", "files")
                .with("remote", "/blob")
                .with("retry", "3")
                .with("retry.backoff_us", "1000")
                .with("replicas", "files-b")
                .with("breaker.threshold", "1")
                .with("breaker.cooldown_us", "2000"),
        )
        .expect("install mirror");
    let _g = clock::install(0);
    world
        .net()
        .plan("files")
        .expect("primary plan")
        .set_partitioned(true);
    world.net().plan("files-b").expect("replica plan").flaky(1);
    world.telemetry().set_enabled(true);

    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    let mut buf = [0u8; 17];
    let n = api.read_file(h, &mut buf).expect("failover read");
    api.close_handle(h).expect("close");
    if n != REPLICA_BODY.len() || buf != REPLICA_BODY {
        return fail("the replica did not serve the read");
    }

    // Write the artifacts before validating, so a failing run still
    // uploads the evidence.
    let spans = world.telemetry().spans();
    let chrome = afs_telemetry::chrome_trace(&[("failover", spans.clone())]);
    if let Err(e) = std::fs::write(&trace_path, &chrome) {
        return fail(&format!("cannot write {trace_path}: {e}"));
    }
    let dump = world.flight_dump();
    if let Err(e) = std::fs::write(&dump_path, &dump) {
        return fail(&format!("cannot write {dump_path}: {e}"));
    }

    // 1. The chrome trace parses and carries complete span events.
    let root_val = match json::parse(&chrome) {
        Ok(v) => v,
        Err(e) => return fail(&format!("chrome trace does not parse: {e}")),
    };
    let complete = root_val
        .as_array()
        .map(|events| {
            events
                .iter()
                .filter_map(json::Value::as_object)
                .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
                .count()
        })
        .unwrap_or(0);
    if complete == 0 {
        return fail("chrome trace carries no complete span events");
    }

    // 2. One contiguous trace under the ReadFile root.
    let Some(root) = spans.iter().find(|s| s.name == "ReadFile" && s.parent == 0) else {
        return fail("no ReadFile root span");
    };
    let trace: Vec<_> = spans.iter().filter(|s| s.trace == root.trace).collect();
    for s in &trace {
        if s.id != root.id && !trace.iter().any(|p| p.id == s.parent) {
            return fail(&format!(
                "span {}#{} dangles outside the trace",
                s.name, s.id
            ));
        }
    }
    let trace_ids: BTreeSet<u64> = spans
        .iter()
        .filter(|s| s.name == "ReadFile" || s.trace == root.trace)
        .map(|s| s.trace)
        .collect();
    if trace_ids.len() != 1 {
        return fail(&format!(
            "expected a single read trace id, got {trace_ids:?}"
        ));
    }

    // 3. The trace crosses two replicas: the primary's breaker rejection
    //    and the replica's annotated failover win.
    if !trace
        .iter()
        .any(|s| s.name == "breaker-reject" && s.note == "cause=breaker_open")
    {
        return fail("no cause=breaker_open rejection span in the trace");
    }
    if !trace
        .iter()
        .any(|s| s.name == "failover" && s.note == "cause=failover replica=files-b")
    {
        return fail("no annotated failover span naming the serving replica");
    }

    // 4. The breaker trip produced a flight bundle holding the trace.
    let bundles = world.telemetry().flight().bundles();
    let Some(bundle) = bundles.iter().find(|b| b.cause == "breaker_open") else {
        return fail("no breaker_open flight bundle");
    };
    if !bundle.detail.contains("service=files") {
        return fail("the flight bundle does not name the tripped service");
    }
    if !bundle.open.iter().any(|p| p.trace == root.trace) {
        return fail("the flight bundle does not hold the in-flight trace");
    }
    if json::parse(&dump).is_err() {
        return fail("the flight dump is not valid JSON");
    }

    println!(
        "trace_validate: PASS — trace {} ({} spans, {} complete events) crossed files -> files-b; \
         bundle #{} froze it mid-flight; wrote {trace_path} and {dump_path}",
        root.trace,
        trace.len(),
        complete,
        bundle.seq
    );
    ExitCode::SUCCESS
}
