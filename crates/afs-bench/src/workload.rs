//! Trace-driven macro workloads.
//!
//! Figure 6 is a microbenchmark (fixed-size blocks, one direction at a
//! time). Real legacy applications mix reads, writes, and seeks; this
//! module generates seeded traces of such applications and replays them
//! against an active file, measuring end-to-end virtual time per
//! strategy. Used by the `ablation_macro` Criterion bench and by tests
//! that need "an application-shaped" op stream.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use afs_core::Strategy;
use afs_sim::{clock, HardwareProfile};
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

/// Zipfian popularity sampler: rank `i` (0-based, most popular first) is
/// drawn with probability proportional to `1 / (i + 1)^theta`. Backed by
/// a precomputed CDF and inverse-transform sampling, so a draw is one
/// uniform variate plus a binary search. `theta = 0.99` is the classic
/// YCSB skew; `theta = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler over `items` ranks.
    ///
    /// # Panics
    ///
    /// Panics when `items` is zero.
    pub fn new(items: usize, theta: f64) -> Zipf {
        assert!(items > 0, "zipf needs at least one item");
        let mut cdf = Vec::with_capacity(items);
        let mut total = 0.0;
        for rank in 0..items {
            total += 1.0 / ((rank + 1) as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks the sampler draws from.
    pub fn items(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank in `0..items`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        // A uniform variate in [0, 1) from the top 53 bits of one raw
        // word (the vendored rand stub has no float sampling).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// One operation of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Read this many bytes at the current pointer.
    Read(usize),
    /// Write this many bytes at the current pointer.
    Write(usize),
    /// Seek to this absolute offset.
    Seek(u64),
}

/// A seeded application trace.
#[derive(Debug, Clone)]
pub struct Trace {
    ops: Vec<TraceOp>,
    /// Largest offset the trace touches, for pre-seeding files.
    pub extent: u64,
}

impl Trace {
    /// Generates a mixed read/write/seek trace.
    ///
    /// `read_fraction` in `[0.0, 1.0]` splits reads vs writes; seeks are
    /// interleaved every few operations, staying within a 64 KiB window
    /// (a "document editing" footprint).
    pub fn generate(seed: u64, ops: usize, read_fraction: f64) -> Trace {
        const WINDOW: u64 = 64 * 1024;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut trace = Vec::with_capacity(ops);
        let mut extent = 0u64;
        let mut pointer = 0u64;
        for i in 0..ops {
            if i % 5 == 4 {
                pointer = rng.gen_range(0..WINDOW);
                trace.push(TraceOp::Seek(pointer));
                continue;
            }
            let len = *[64usize, 256, 1024]
                .get(rng.gen_range(0..3))
                .expect("index");
            if rng.gen_bool(read_fraction) {
                trace.push(TraceOp::Read(len));
            } else {
                trace.push(TraceOp::Write(len));
            }
            pointer += len as u64;
            extent = extent.max(pointer);
        }
        Trace {
            ops: trace,
            extent: extent.max(WINDOW),
        }
    }

    /// The operations.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Replays the trace against an open handle, returning bytes moved.
    ///
    /// # Panics
    ///
    /// Panics on API errors — traces are only replayed against files that
    /// support every operation.
    pub fn replay(&self, api: &dyn FileApi, h: afs_winapi::Handle) -> u64 {
        let mut moved = 0u64;
        let mut buf = vec![0u8; 1024];
        let payload = vec![0xBBu8; 1024];
        for op in &self.ops {
            match op {
                TraceOp::Read(len) => {
                    moved += api.read_file(h, &mut buf[..*len]).expect("trace read") as u64;
                }
                TraceOp::Write(len) => {
                    moved += api.write_file(h, &payload[..*len]).expect("trace write") as u64;
                }
                TraceOp::Seek(offset) => {
                    api.set_file_pointer(h, *offset as i64, SeekMethod::Begin)
                        .expect("trace seek");
                }
            }
        }
        moved
    }
}

/// Replays a trace against a fresh world per strategy and returns the
/// total virtual time consumed (ns), read back from the telemetry
/// latency histograms: every strategy-layer operation records its virtual
/// duration into the per-(strategy, op) histogram, and the histogram sums
/// are exact — no ad-hoc clock arithmetic around the replay loop.
pub fn replay_virtual_time(
    trace: &Trace,
    path: crate::PathKind,
    strategy: Strategy,
    profile: HardwareProfile,
) -> u64 {
    let (world, file) = crate::build_world(path, strategy, profile, trace.extent as usize + 2048);
    world.telemetry().set_enabled(true);
    let api = world.api();
    let _guard = clock::install(0);
    let h = api
        .create_file(file, Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    trace.replay(&api, h);
    api.close_handle(h).expect("close");
    world.telemetry().strategy_elapsed_total_ns()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PathKind;

    #[test]
    fn zipf_is_deterministic_and_skewed_to_the_head() {
        let zipf = Zipf::new(64, 0.99);
        let draw = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..2000).map(|_| zipf.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same stream");
        let samples = draw(7);
        assert!(samples.iter().all(|&r| r < 64), "ranks stay in range");
        let head = samples.iter().filter(|&&r| r == 0).count();
        // Uniform would give ~31 hits on rank 0 out of 2000; zipf(0.99)
        // concentrates over 10% of the mass there.
        assert!(head > 150, "rank 0 drew only {head} of 2000");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&count),
                "rank {rank} drew {count} of 4000 under theta=0"
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = Trace::generate(9, 50, 0.7);
        let b = Trace::generate(9, 50, 0.7);
        assert_eq!(a.ops(), b.ops());
        let c = Trace::generate(10, 50, 0.7);
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn read_fraction_biases_the_mix() {
        let heavy_read = Trace::generate(1, 400, 0.95);
        let heavy_write = Trace::generate(1, 400, 0.05);
        let reads = |t: &Trace| {
            t.ops()
                .iter()
                .filter(|o| matches!(o, TraceOp::Read(_)))
                .count()
        };
        assert!(reads(&heavy_read) > 3 * reads(&heavy_write));
    }

    #[test]
    fn macro_replay_preserves_strategy_ordering() {
        let trace = Trace::generate(7, 120, 0.6);
        let profile = HardwareProfile::pentium_ii_300();
        let process = replay_virtual_time(
            &trace,
            PathKind::Memory,
            Strategy::ProcessControl,
            profile.clone(),
        );
        let thread = replay_virtual_time(
            &trace,
            PathKind::Memory,
            Strategy::DllThread,
            profile.clone(),
        );
        let dll = replay_virtual_time(&trace, PathKind::Memory, Strategy::DllOnly, profile);
        assert!(
            process > thread && thread > dll,
            "macro trace keeps the Figure 6 ordering: {process} > {thread} > {dll}"
        );
    }

    #[test]
    fn replay_moves_bytes() {
        let trace = Trace::generate(3, 60, 0.5);
        let (world, file) = crate::build_world(
            PathKind::Memory,
            Strategy::DllOnly,
            HardwareProfile::free(),
            trace.extent as usize + 2048,
        );
        let api = world.api();
        let h = api
            .create_file(file, Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        assert!(trace.replay(&api, h) > 0);
        api.close_handle(h).expect("close");
    }
}
