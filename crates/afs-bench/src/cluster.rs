//! The cluster workload: zipfian client sessions over a replicated
//! active-file fleet.
//!
//! The paper's §5 distribution story puts the active file in front of a
//! *fleet*, not a single server. This module drives the
//! [`ClusterClient`] (consistent-hash placement, primary-ack writes with
//! async replication, bounded-staleness read-your-writes reads) with a
//! generated workload: zipfian file popularity, a configurable
//! read/write mix, bursty session arrivals, and client counts swept
//! 1k → 100k → 1M — all in virtual time, so the per-op latency
//! distribution is bit-for-bit reproducible and CI can gate it.
//!
//! Three gate cells come from here: `cluster-100k` and `cluster-1m`
//! (the flat-p99 claim: per-op latency does not grow with the session
//! count at a fixed fleet size) and `cluster-rebalance` (a node join
//! moves at most `1/N + 5%` of the keys, and every key stays readable
//! through the membership change).

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use afs_net::{Network, Service};
use afs_remote::{ClusterClient, FileServer};
use afs_sim::{clock, CostModel, HardwareProfile, Series};
use afs_telemetry::{ClusterGauges, ClusterSnapshot};

use crate::workload::Zipf;

/// Fleet size (member file servers) behind the cluster cells.
pub const CLUSTER_FLEET: usize = 5;

/// Total copies kept per file (primary + replicas).
pub const CLUSTER_COPIES: usize = 2;

/// Block size of every cluster operation (the Figure 6 midpoint).
pub const CLUSTER_BLOCK: usize = 128;

/// Distinct files the zipfian popularity ranks over.
pub const CLUSTER_FILES: usize = 64;

/// Fraction of operations that are reads (the rest are primary-ack
/// writes).
pub const CLUSTER_READ_FRACTION: f64 = 0.9;

/// Zipf skew of the file popularity (the classic YCSB default).
pub const CLUSTER_THETA: f64 = 0.99;

/// `staleness_ms` bound every session reads under.
pub const CLUSTER_STALENESS_MS: u64 = 10;

/// Sessions arriving per burst: the arrival process is bursty, not
/// uniform — every [`CLUSTER_BURST_GAP_NS`] of virtual time, this many
/// sessions start at once.
pub const CLUSTER_BURST: usize = 64;

/// Virtual gap between arrival bursts.
pub const CLUSTER_BURST_GAP_NS: u64 = 1_000_000;

/// Keys written before the `cluster-rebalance` join.
pub const CLUSTER_REBALANCE_KEYS: usize = 256;

/// Real threads the virtual sessions are sharded over. Fixed (not
/// core-count-derived) so the pooled latency series is identical on
/// every machine.
const CLUSTER_SHARDS: usize = 8;

/// Client counts of the two gated cluster cells. Release builds gate
/// the headline 100k and 1M points; debug builds (the in-repo test
/// suite) scale down to 1k and 10k so `cargo test` stays quick — the
/// label carries the count, so a debug-produced document can never pass
/// silently against the release baseline.
pub fn gate_cluster_clients() -> [usize; 2] {
    if cfg!(debug_assertions) {
        [1_000, 10_000]
    } else {
        [100_000, 1_000_000]
    }
}

/// Gate-cell label for a client count: `cluster-100k`, `cluster-1m`, …
pub fn cluster_cell_label(clients: usize) -> String {
    if clients >= 1_000_000 {
        format!("cluster-{}m", clients / 1_000_000)
    } else {
        format!("cluster-{}k", clients / 1_000)
    }
}

fn cluster_file(rank: usize) -> String {
    format!("/data/f{rank}.af")
}

fn member(i: usize) -> String {
    format!("files-{i}")
}

/// One measured cluster cell.
#[derive(Debug, Clone)]
pub struct ClusterMeasurement {
    /// Virtual client sessions driven.
    pub clients: usize,
    /// Pooled per-op virtual latencies across every session.
    pub summary: afs_sim::Summary,
    /// Cluster gauges accumulated over the run.
    pub cluster: ClusterSnapshot,
    /// Network messages (RPCs + replication casts) per operation — the
    /// cluster's crossing count, gated alongside p99.
    pub messages_per_op: f64,
}

/// Runs one cluster cell: `clients` virtual sessions over a
/// [`CLUSTER_FLEET`]-node fleet keeping [`CLUSTER_COPIES`] copies per
/// file. Each session arrives in a burst ([`CLUSTER_BURST`] sessions
/// per [`CLUSTER_BURST_GAP_NS`] of virtual time), picks a file by
/// zipfian popularity, and issues one 128-byte operation —
/// [`CLUSTER_READ_FRACTION`] reads, the rest primary-ack writes — timed
/// under its own virtual clock.
///
/// Sessions are sharded over a fixed number of real threads; the
/// virtual latencies are independent of the real thread count, so the
/// pooled summary is deterministic.
pub fn measure_cluster(clients: usize, profile: HardwareProfile) -> ClusterMeasurement {
    let net = Network::new(CostModel::new(profile));
    let gauges = Arc::new(ClusterGauges::default());
    let seed_block: Vec<u8> = (0..CLUSTER_BLOCK).map(|i| (i % 251) as u8).collect();
    for i in 0..CLUSTER_FLEET {
        let server = FileServer::new();
        for rank in 0..CLUSTER_FILES {
            server.seed(&cluster_file(rank), &seed_block);
        }
        net.register(&member(i), server as Arc<dyn Service>);
    }

    let shards = CLUSTER_SHARDS.min(clients).max(1);
    let per = clients / shards;
    let extra = clients % shards;
    let mut joins = Vec::new();
    for shard in 0..shards {
        let net = net.clone();
        let gauges = Arc::clone(&gauges);
        let count = per + usize::from(shard < extra);
        let first = shard * per + shard.min(extra);
        joins.push(std::thread::spawn(move || {
            let zipf = Zipf::new(CLUSTER_FILES, CLUSTER_THETA);
            let mut rng = SmallRng::seed_from_u64(0xC10D + shard as u64);
            let session = ClusterClient::new(net, CLUSTER_COPIES, Some(CLUSTER_STALENESS_MS));
            for i in 0..CLUSTER_FLEET {
                session.add_node(&member(i));
            }
            // Gauges attach after the initial membership: only real
            // churn counts as a rebalance.
            let session = session.with_gauges(gauges);
            let payload = vec![0xB7u8; CLUSTER_BLOCK];
            let mut latencies = Vec::with_capacity(count);
            for c in 0..count {
                let arrival = ((first + c) / CLUSTER_BURST) as u64 * CLUSTER_BURST_GAP_NS;
                let _guard = clock::install(arrival);
                let path = cluster_file(zipf.sample(&mut rng));
                let start = clock::now();
                if rng.gen_bool(CLUSTER_READ_FRACTION) {
                    let data = session.read(&path, 0, CLUSTER_BLOCK).expect("cluster read");
                    assert_eq!(data.len(), CLUSTER_BLOCK);
                } else {
                    let n = session.write(&path, 0, &payload).expect("cluster write");
                    assert_eq!(n, CLUSTER_BLOCK as u64);
                }
                latencies.push(clock::now() - start);
            }
            latencies
        }));
    }
    let mut series = Series::with_capacity(clients);
    for join in joins {
        series.extend(join.join().expect("cluster shard"));
    }
    let stats = net.stats();
    ClusterMeasurement {
        clients,
        summary: series.summarize(),
        cluster: gauges.snapshot(),
        messages_per_op: (stats.rpcs + stats.casts) as f64 / clients.max(1) as f64,
    }
}

/// The `cluster-rebalance` cell: key movement and post-join read
/// behaviour when a node joins the fleet.
#[derive(Debug, Clone)]
pub struct RebalanceMeasurement {
    /// Keys written before the join.
    pub keys: usize,
    /// Keys whose primary moved to the joiner.
    pub moved: usize,
    /// The movement bound the join must respect:
    /// `keys / (N + 1) + 5%` — consistent hashing's fair share plus
    /// slack for virtual-node granularity.
    pub moved_limit: f64,
    /// Per-key post-join read latencies (moved keys fail over to the
    /// surviving copies, so the tail carries the failover cost).
    pub summary: afs_sim::Summary,
    /// Cluster gauges after the run (`read_failovers` > 0 proves moved
    /// keys really re-routed).
    pub cluster: ClusterSnapshot,
    /// Network messages per post-join read.
    pub messages_per_op: f64,
}

/// Writes `keys` files into a [`CLUSTER_FLEET`]-node fleet, joins one
/// more node, and measures what moved: the fraction of primaries the
/// joiner took over, and the per-key read latency *through* the
/// rebalance — every key must stay readable at the session's own
/// read-your-writes floor, moved keys via failover to their surviving
/// copies.
pub fn measure_cluster_rebalance(keys: usize, profile: HardwareProfile) -> RebalanceMeasurement {
    let net = Network::new(CostModel::new(profile));
    // The joiner's server is registered up front; it only enters the
    // placement ring at the join.
    for i in 0..=CLUSTER_FLEET {
        net.register(&member(i), FileServer::new() as Arc<dyn Service>);
    }
    let gauges = Arc::new(ClusterGauges::default());
    let _guard = clock::install(0);
    let session = ClusterClient::new(net.clone(), CLUSTER_COPIES, Some(CLUSTER_STALENESS_MS));
    for i in 0..CLUSTER_FLEET {
        session.add_node(&member(i));
    }
    let session = session.with_gauges(Arc::clone(&gauges));
    let paths: Vec<String> = (0..keys).map(|k| format!("/data/k{k}.af")).collect();
    let payload = vec![0x5Cu8; CLUSTER_BLOCK];
    for path in &paths {
        session.write(path, 0, &payload).expect("seed write");
    }
    let before: Vec<String> = paths.iter().map(|p| session.owners(p)[0].clone()).collect();

    session.add_node(&member(CLUSTER_FLEET));
    let moved = paths
        .iter()
        .zip(&before)
        .filter(|(path, old)| &session.owners(path)[0] != *old)
        .count();

    let msgs_before = net.stats();
    let mut series = Series::with_capacity(keys);
    for path in &paths {
        let start = clock::now();
        let data = session
            .read(path, 0, CLUSTER_BLOCK)
            .expect("post-join read");
        assert_eq!(data, payload, "rebalance must not lose bytes: {path}");
        series.push(clock::now() - start);
    }
    let msgs_after = net.stats();
    let moved_limit = keys as f64 / (CLUSTER_FLEET + 1) as f64 + keys as f64 * 0.05;
    RebalanceMeasurement {
        keys,
        moved,
        moved_limit,
        summary: series.summarize(),
        cluster: gauges.snapshot(),
        messages_per_op: ((msgs_after.rpcs + msgs_after.casts)
            - (msgs_before.rpcs + msgs_before.casts)) as f64
            / keys.max(1) as f64,
    }
}

/// Client counts swept by `figure6 --cluster`: a 1k reference plus the
/// two gated counts (1k → 100k → 1M in release builds).
pub fn cluster_panel_clients() -> Vec<usize> {
    let mut counts = vec![1_000];
    for clients in gate_cluster_clients() {
        if !counts.contains(&clients) {
            counts.push(clients);
        }
    }
    counts
}

/// Runs the cluster sweep and the rebalance cell and renders them as
/// the text table `figure6 --cluster` prints.
pub fn render_cluster_panel(profile: &HardwareProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Cluster panel — {CLUSTER_FLEET}-node fleet, {CLUSTER_COPIES} copies per file, \
         zipf({CLUSTER_THETA}) over {CLUSTER_FILES} files, {:.0}% reads, \
         {CLUSTER_BLOCK}-byte ops, staleness_ms={CLUSTER_STALENESS_MS}\n",
        CLUSTER_READ_FRACTION * 100.0
    ));
    out.push_str(&format!(
        "{:>9} {:>10} {:>10} {:>8} {:>10} {:>12} {:>11}\n",
        "clients", "p50", "p99", "msgs/op", "failovers", "replications", "stale-waits"
    ));
    for clients in cluster_panel_clients() {
        let m = measure_cluster(clients, profile.clone());
        out.push_str(&format!(
            "{:>9} {:>8.1}us {:>8.1}us {:>8.2} {:>10} {:>12} {:>11}\n",
            m.clients,
            m.summary.p50_ns as f64 / 1_000.0,
            m.summary.p99_ns as f64 / 1_000.0,
            m.messages_per_op,
            m.cluster.read_failovers,
            m.cluster.replications,
            m.cluster.stale_waits,
        ));
    }
    let r = measure_cluster_rebalance(CLUSTER_REBALANCE_KEYS, profile.clone());
    out.push_str(&format!(
        "rebalance: {} joins {} nodes — {} of {} primaries moved (bound {:.1}), \
         post-join read p99 {:.1}us, failovers {}\n",
        member(CLUSTER_FLEET),
        CLUSTER_FLEET,
        r.moved,
        r.keys,
        r.moved_limit,
        r.summary.p99_ns as f64 / 1_000.0,
        r.cluster.read_failovers,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_cell_is_deterministic() {
        let a = measure_cluster(500, HardwareProfile::pentium_ii_300());
        let b = measure_cluster(500, HardwareProfile::pentium_ii_300());
        assert_eq!(a.summary, b.summary, "virtual latencies reproduce");
        assert_eq!(a.cluster.reads, b.cluster.reads);
        assert_eq!(a.cluster.writes, b.cluster.writes);
        assert_eq!(a.messages_per_op, b.messages_per_op);
        assert_eq!(
            a.cluster.reads + a.cluster.writes,
            500,
            "one op per session"
        );
        assert!(a.cluster.reads > a.cluster.writes, "read-heavy mix");
    }

    /// The headline: per-op p99 does not grow with the session count at
    /// a fixed fleet size — the replication protocol's cost is
    /// per-operation, not per-population.
    #[test]
    fn cluster_p99_stays_flat_as_clients_scale() {
        let small = measure_cluster(1_000, HardwareProfile::pentium_ii_300());
        let big = measure_cluster(5_000, HardwareProfile::pentium_ii_300());
        assert!(
            (big.summary.p99_ns as f64 - small.summary.p99_ns as f64).abs()
                <= small.summary.p99_ns as f64 * 0.10,
            "p99 must stay flat: 5k clients {} ns vs 1k clients {} ns",
            big.summary.p99_ns,
            small.summary.p99_ns
        );
    }

    #[test]
    fn rebalance_moves_a_bounded_fraction_and_keeps_keys_readable() {
        let r = measure_cluster_rebalance(200, HardwareProfile::pentium_ii_300());
        assert!(r.moved > 0, "a join must take over some primaries");
        assert!(
            (r.moved as f64) <= r.moved_limit,
            "join moved {} of {} keys, over the 1/N + 5% bound {:.1}",
            r.moved,
            r.keys,
            r.moved_limit
        );
        assert!(
            r.cluster.read_failovers > 0,
            "moved keys read through failover"
        );
        assert_eq!(r.cluster.rebalances, 1, "exactly one membership change");
    }

    #[test]
    fn panel_renders_every_swept_count() {
        let text = render_cluster_panel(&HardwareProfile::free());
        for clients in cluster_panel_clients() {
            assert!(text.contains(&format!("{clients}")), "{text}");
        }
        assert!(text.contains("rebalance:"), "{text}");
    }
}
