//! The bench-regression gate: machine-readable Figure 6 summaries and the
//! comparison CI runs against the committed baseline.
//!
//! [`bench_json`] measures the per-strategy read latency distribution
//! (memory path, 128-byte blocks — the cheapest cell that still exercises
//! every strategy's full hot path) and renders it as a small JSON
//! document. Because every sample is *virtual* time from the calibrated
//! cost model, the numbers are bit-for-bit reproducible across machines,
//! so CI can hold them to a tight threshold without flakiness.
//!
//! [`parse_bench_doc`] + [`compare`] implement the gate itself, used by
//! the `bench_gate` binary against the committed `BENCH_baseline.json`.

use std::collections::BTreeMap;

use afs_core::Strategy;
use afs_sim::HardwareProfile;

use crate::{measure, Direction, PathKind};

/// Schema version stamped into the document.
pub const BENCH_SCHEMA: u64 = 1;

/// The strategies the gate tracks — all four of §4.
pub const GATE_STRATEGIES: [Strategy; 4] = [
    Strategy::Process,
    Strategy::ProcessControl,
    Strategy::DllThread,
    Strategy::DllOnly,
];

/// Per-strategy latency summary, ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyStats {
    /// Mean per-op latency.
    pub mean_ns: f64,
    /// Median per-op latency.
    pub p50_ns: u64,
    /// 99th-percentile per-op latency — the gated number.
    pub p99_ns: u64,
}

/// A parsed bench document: ops count plus per-strategy summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Calls measured per strategy.
    pub ops: u64,
    /// Summaries keyed by strategy label.
    pub strategies: BTreeMap<String, StrategyStats>,
}

/// Client counts the gate tracks from the concurrency ablation. A subset
/// of [`crate::MUX_CLIENTS`]: the single-client cells pin the no-sharing
/// baseline cost, the 8-client cells pin the contended behaviour. (The
/// 32-client sweep stays in `figure6 --concurrency` / `ablation_mux`
/// where one slow cell does not slow every CI run.)
pub const GATE_MUX_CLIENTS: [usize; 2] = [1, 8];

/// Committed WAL batches behind the `store-recovery` cell: enough that
/// redo replay dominates the reopen, small enough to keep CI quick.
pub const STORE_RECOVERY_COMMITS: usize = 32;

/// Cold reopens sampled by the `store-recovery` cell. Every reopen
/// replays the same WAL under a fresh virtual clock, so the summary is
/// identical for any count ≥ 1; a handful guards against accidental
/// statefulness.
pub const STORE_RECOVERY_REOPENS: usize = 8;

/// Concurrent files in the gated fleet cell. Release builds gate the
/// headline ten-thousand-file point; debug builds (the in-repo test
/// suite) scale down to one thousand so `cargo test` stays quick — the
/// label carries the size, so a debug-produced document can never pass
/// silently against the release baseline.
pub fn gate_fleet_files() -> usize {
    if cfg!(debug_assertions) {
        1_000
    } else {
        10_000
    }
}

/// Measures every gate strategy (memory path, 128-byte sequential reads,
/// `ops` calls each), the gated concurrency cells (`mux-N-shared` /
/// `mux-N-private` sequential writes, see [`crate::measure_concurrency`]),
/// and the two executor cells — `fleet-Nk` (one read across
/// [`gate_fleet_files`] concurrently-open files) and `fleet-1-parity`
/// (one file, `ops` reads, a one-worker pool: the single-sentinel number
/// the refactor must not move) — plus the two durable-store cells:
/// `store-durable` (per-committed-write latency through a WAL-backed
/// null sentinel, [`crate::measure_store`]) and `store-recovery` (cold
/// reopen + redo replay, [`crate::measure_store_recovery`]) — and the
/// two batching cells, `ablation_batch-off` / `ablation_batch-on`
/// ([`crate::measure_batch_ablation`]: the same sequential-read cell
/// over the plain transport and over the submission/completion ring,
/// each carrying its crossings-per-op) — and the three cluster cells:
/// `cluster-100k` / `cluster-1m` (zipfian sessions over the replicated
/// fleet at the gated counts, see [`crate::measure_cluster`]; debug
/// builds scale to `cluster-1k` / `cluster-10k`) and
/// `cluster-rebalance` (post-join reads through a membership change,
/// [`crate::measure_cluster_rebalance`]) — and renders the result as
/// JSON. Panics if the batched and unbatched transcripts diverge, if
/// the cluster p99 is not flat across the session counts, or if a node
/// join moves more than `1/N + 5%` of the keys, so the gate proves
/// those claims on every run.
pub fn bench_json(ops: usize, profile: HardwareProfile) -> String {
    const BLOCK: usize = 128;
    // (label, mean, p50, p99, crossings-per-op). The crossings column is
    // only rendered for the batching cells; the gate compares p99 and
    // treats extra fields as informational.
    let mut entries: Vec<(String, f64, u64, u64, Option<f64>)> = Vec::new();
    for strategy in GATE_STRATEGIES {
        let m = measure(
            PathKind::Memory,
            strategy,
            Direction::Read,
            BLOCK,
            ops,
            profile.clone(),
        );
        let s = m.series.summarize();
        entries.push((
            strategy.label().to_owned(),
            s.mean_ns as f64,
            s.p50_ns,
            s.p99_ns,
            None,
        ));
    }
    for clients in GATE_MUX_CLIENTS {
        for shared in [true, false] {
            let m = crate::measure_concurrency(clients, shared, ops, profile.clone());
            let label = format!(
                "mux-{clients}-{}",
                if shared { "shared" } else { "private" }
            );
            entries.push((
                label,
                m.summary.mean_ns as f64,
                m.summary.p50_ns,
                m.summary.p99_ns,
                None,
            ));
        }
    }
    {
        let files = gate_fleet_files();
        let f = crate::measure_fleet(files, 1, None, profile.clone());
        entries.push((
            format!("fleet-{}k", files / 1000),
            f.summary.mean_ns as f64,
            f.summary.p50_ns,
            f.summary.p99_ns,
            None,
        ));
        let p = crate::measure_fleet(1, ops, Some(1), profile.clone());
        entries.push((
            "fleet-1-parity".to_owned(),
            p.summary.mean_ns as f64,
            p.summary.p50_ns,
            p.summary.p99_ns,
            None,
        ));
    }
    {
        let t = crate::measure_trace_ablation(ops, profile.clone());
        entries.push((
            "ablation_trace".to_owned(),
            t.traced.mean_ns as f64,
            t.traced.p50_ns,
            t.traced.p99_ns,
            None,
        ));
    }
    {
        let d = crate::measure_store(ops, profile.clone());
        entries.push((
            "store-durable".to_owned(),
            d.summary.mean_ns as f64,
            d.summary.p50_ns,
            d.summary.p99_ns,
            None,
        ));
        let r = crate::measure_store_recovery(
            STORE_RECOVERY_COMMITS,
            STORE_RECOVERY_REOPENS,
            profile.clone(),
        );
        entries.push((
            "store-recovery".to_owned(),
            r.summary.mean_ns as f64,
            r.summary.p50_ns,
            r.summary.p99_ns,
            None,
        ));
    }
    {
        // The cluster cells: per-op latency over the replicated fleet at
        // the two gated session counts, plus the rebalance cell. The
        // `crossings_per_op` column carries network messages per op
        // (RPCs + replication casts) — the cluster's boundary-crossing
        // count. Three claims are asserted on every gate run: p99 stays
        // flat (within 10%) from 1k sessions to the largest gated count,
        // a node join moves at most `1/N + 5%` of the primaries, and
        // every key stays readable at its session's read-your-writes
        // floor through the join (measure_cluster_rebalance panics
        // otherwise).
        let reference = crate::measure_cluster(1_000, profile.clone());
        for clients in crate::gate_cluster_clients() {
            let c = crate::measure_cluster(clients, profile.clone());
            assert!(
                (c.summary.p99_ns as f64 - reference.summary.p99_ns as f64).abs()
                    <= reference.summary.p99_ns as f64 * 0.10,
                "cluster p99 must stay flat at a fixed fleet size: \
                 {clients} clients {} ns vs 1k clients {} ns",
                c.summary.p99_ns,
                reference.summary.p99_ns
            );
            entries.push((
                crate::cluster_cell_label(clients),
                c.summary.mean_ns as f64,
                c.summary.p50_ns,
                c.summary.p99_ns,
                Some(c.messages_per_op),
            ));
        }
        let r = crate::measure_cluster_rebalance(crate::CLUSTER_REBALANCE_KEYS, profile.clone());
        assert!(
            (r.moved as f64) <= r.moved_limit,
            "node join moved {} of {} keys, over the 1/N + 5% bound {:.1}",
            r.moved,
            r.keys,
            r.moved_limit
        );
        entries.push((
            "cluster-rebalance".to_owned(),
            r.summary.mean_ns as f64,
            r.summary.p50_ns,
            r.summary.p99_ns,
            Some(r.messages_per_op),
        ));
    }
    {
        let b = crate::measure_batch_ablation(ops, profile.clone());
        assert!(
            b.transcripts_match,
            "batched and unbatched reads must return identical transcripts"
        );
        entries.push((
            "ablation_batch-off".to_owned(),
            b.unbatched.mean_ns as f64,
            b.unbatched.p50_ns,
            b.unbatched.p99_ns,
            Some(b.crossings_per_op_unbatched),
        ));
        entries.push((
            "ablation_batch-on".to_owned(),
            b.batched.mean_ns as f64,
            b.batched.p50_ns,
            b.batched.p99_ns,
            Some(b.crossings_per_op_batched),
        ));
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema\": {BENCH_SCHEMA},\n  \"ops\": {ops},\n  \"profile\": \"{}\",\n  \"strategies\": {{\n",
        profile.name
    ));
    for (i, (label, mean, p50, p99, cross)) in entries.iter().enumerate() {
        let extra = cross
            .map(|c| format!(", \"crossings_per_op\": {c:.2}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    \"{label}\": {{\"mean_ns\": {mean:.1}, \"p50_ns\": {p50}, \"p99_ns\": {p99}{extra}}}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses a [`bench_json`] document.
///
/// The parser is deliberately strict about the fields the gate needs
/// (`ops`, `strategies.*.{mean_ns,p50_ns,p99_ns}`) and tolerant of
/// anything extra.
///
/// # Errors
///
/// A human-readable message naming what is malformed or missing.
pub fn parse_bench_doc(text: &str) -> Result<BenchDoc, String> {
    let root = json::parse(text)?;
    let obj = root.as_object().ok_or("top level must be an object")?;
    let ops = obj
        .get("ops")
        .and_then(json::Value::as_u64)
        .ok_or("missing numeric `ops`")?;
    let strategies_val = obj.get("strategies").ok_or("missing `strategies`")?;
    let strategies_obj = strategies_val
        .as_object()
        .ok_or("`strategies` must be an object")?;
    let mut strategies = BTreeMap::new();
    for (label, entry) in strategies_obj {
        let entry = entry
            .as_object()
            .ok_or_else(|| format!("strategy `{label}` must be an object"))?;
        let field = |name: &str| {
            entry
                .get(name)
                .and_then(json::Value::as_f64)
                .ok_or_else(|| format!("strategy `{label}` missing numeric `{name}`"))
        };
        strategies.insert(
            label.clone(),
            StrategyStats {
                mean_ns: field("mean_ns")?,
                p50_ns: field("p50_ns")? as u64,
                p99_ns: field("p99_ns")? as u64,
            },
        );
    }
    if strategies.is_empty() {
        return Err("no strategies in document".to_owned());
    }
    Ok(BenchDoc { ops, strategies })
}

/// Compares `current` against `baseline`: any strategy whose p99 exceeds
/// the baseline's by more than `threshold_pct` percent is a regression.
/// Strategies present in the baseline but missing from the current run
/// are regressions too (a silently dropped series must not pass the
/// gate). Returns one message per violation; empty means the gate passes.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc, threshold_pct: f64) -> Vec<String> {
    let mut violations = Vec::new();
    for (label, base) in &baseline.strategies {
        let Some(cur) = current.strategies.get(label) else {
            violations.push(format!("{label}: missing from current run"));
            continue;
        };
        let limit = base.p99_ns as f64 * (1.0 + threshold_pct / 100.0);
        if cur.p99_ns as f64 > limit {
            violations.push(format!(
                "{label}: p99 {} ns exceeds baseline {} ns by more than {threshold_pct}% \
                 (limit {:.0} ns)",
                cur.p99_ns, base.p99_ns, limit
            ));
        }
    }
    violations
}

/// A minimal JSON reader — just enough structure for the bench documents
/// and the chrome-trace span validation in `tests/telemetry.rs` (objects,
/// arrays, strings, numbers, booleans, null), with no external dependency.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number.
        Number(f64),
        /// A string (escapes decoded minimally).
        String(String),
        /// An array.
        Array(Vec<Value>),
        /// An object, key order normalised.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(items) => Some(items),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            self.as_f64().and_then(|n| {
                if n.fract() == 0.0 && n >= 0.0 {
                    Some(n as u64)
                } else {
                    None
                }
            })
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    }

    fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b'{') => parse_object(bytes, pos),
            Some(b'[') => parse_array(bytes, pos),
            Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
            Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
            Some(_) => parse_number(bytes, pos),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn parse_literal(
        bytes: &[u8],
        pos: &mut usize,
        lit: &str,
        value: Value,
    ) -> Result<Value, String> {
        if bytes[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
        }
    }

    fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < bytes.len()
            && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            *pos += 1;
        }
        std::str::from_utf8(&bytes[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        *pos += 1; // opening quote
        let mut out = String::new();
        while let Some(&b) = bytes.get(*pos) {
            match b {
                b'"' => {
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c) => out.push(c as char),
                        None => return Err("dangling escape".to_owned()),
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let ch_len = utf8_len(b);
                    let end = (*pos + ch_len).min(bytes.len());
                    out.push_str(
                        std::str::from_utf8(&bytes[*pos..end]).map_err(|e| e.to_string())?,
                    );
                    *pos = end;
                }
            }
        }
        Err("unterminated string".to_owned())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }

    fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '{'
        let mut map = BTreeMap::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}", pos = *pos));
            }
            let key = parse_string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {pos}", pos = *pos));
            }
            *pos += 1;
            let value = parse_value(bytes, pos)?;
            map.insert(key, value);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
            }
        }
    }

    fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
        *pos += 1; // '['
        let mut items = Vec::new();
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, pos)?);
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_roundtrips_through_the_parser() {
        let doc = bench_json(20, HardwareProfile::pentium_ii_300());
        assert!(afs_telemetry::json_is_valid(&doc), "valid JSON: {doc}");
        let parsed = parse_bench_doc(&doc).expect("parse");
        assert_eq!(parsed.ops, 20);
        assert_eq!(
            parsed.strategies.len(),
            GATE_STRATEGIES.len() + 2 * GATE_MUX_CLIENTS.len() + 2 + 1 + 2 + 2 + 3,
            "four strategies, shared/private per gated client count, two fleet cells, \
             the trace ablation, two store cells, two batching cells, three cluster cells"
        );
        for strategy in GATE_STRATEGIES {
            let s = parsed.strategies.get(strategy.label()).expect("strategy");
            assert!(s.p99_ns >= s.p50_ns, "percentiles ordered");
            assert!(s.mean_ns > 0.0);
        }
        for clients in GATE_MUX_CLIENTS {
            for mode in ["shared", "private"] {
                let label = format!("mux-{clients}-{mode}");
                let s = parsed.strategies.get(&label).expect("mux cell");
                assert!(s.p99_ns >= s.p50_ns, "percentiles ordered for {label}");
            }
        }
        let fleet_label = format!("fleet-{}k", gate_fleet_files() / 1000);
        for label in [fleet_label.as_str(), "fleet-1-parity"] {
            let s = parsed.strategies.get(label).expect("fleet cell");
            assert!(s.p99_ns >= s.p50_ns, "percentiles ordered for {label}");
        }
        let t = parsed.strategies.get("ablation_trace").expect("trace cell");
        assert!(
            t.p99_ns >= t.p50_ns,
            "percentiles ordered for ablation_trace"
        );
        for label in ["store-durable", "store-recovery"] {
            let s = parsed.strategies.get(label).expect("store cell");
            assert!(s.p99_ns >= s.p50_ns, "percentiles ordered for {label}");
            assert!(s.mean_ns > 0.0, "durability must cost virtual time");
        }
        for label in ["ablation_batch-off", "ablation_batch-on"] {
            let s = parsed.strategies.get(label).expect("batch cell");
            assert!(s.p99_ns >= s.p50_ns, "percentiles ordered for {label}");
        }
        let mut cluster_labels: Vec<String> = crate::gate_cluster_clients()
            .iter()
            .map(|&c| crate::cluster_cell_label(c))
            .collect();
        cluster_labels.push("cluster-rebalance".to_owned());
        for label in &cluster_labels {
            let s = parsed.strategies.get(label.as_str()).expect("cluster cell");
            assert!(s.p99_ns >= s.p50_ns, "percentiles ordered for {label}");
            assert!(s.mean_ns > 0.0, "cluster ops must cost virtual time");
        }
    }

    /// The tentpole claim, asserted at gate granularity: the ring cuts
    /// protection-domain crossings per sequential read by about the ring
    /// depth, without changing what the reads return.
    #[test]
    fn batch_ablation_cuts_crossings_by_about_ring_depth() {
        let a = crate::measure_batch_ablation(64, HardwareProfile::pentium_ii_300());
        assert!(
            a.transcripts_match,
            "batched reads returned different bytes"
        );
        let reduction = a.crossings_per_op_unbatched / a.crossings_per_op_batched.max(f64::EPSILON);
        assert!(
            reduction >= crate::BATCH_RING_DEPTH as f64 * 0.75,
            "crossings/op {:.2} -> {:.2} is only a {reduction:.1}x drop (ring depth {})",
            a.crossings_per_op_unbatched,
            a.crossings_per_op_batched,
            crate::BATCH_RING_DEPTH
        );
    }

    #[test]
    fn trace_ablation_is_free() {
        // The acceptance bound is <= 5% p99 overhead with zero extra §4
        // charges; in virtual time the two must in fact coincide, because
        // spans, slow-op scans, SLO windows, and flight rings charge the
        // cost model nothing — the 5% headroom is for the day that stops
        // being true, so the gate fails loudly rather than drifting.
        let a = crate::measure_trace_ablation(50, HardwareProfile::pentium_ii_300());
        assert!(a.charges_match, "tracing charged the §4 cost model");
        assert!(
            a.traced.p99_ns as f64 <= a.base.p99_ns as f64 * 1.05,
            "instrumented p99 {} ns exceeds dark p99 {} ns by more than 5%",
            a.traced.p99_ns,
            a.base.p99_ns
        );
        assert_eq!(
            a.traced.p50_ns, a.base.p50_ns,
            "identical charges must mean identical virtual medians"
        );
    }

    #[test]
    fn bench_json_is_deterministic() {
        let a = bench_json(10, HardwareProfile::pentium_ii_300());
        let b = bench_json(10, HardwareProfile::pentium_ii_300());
        assert_eq!(a, b, "virtual-clock measurements are reproducible");
    }

    #[test]
    fn compare_passes_identical_documents() {
        let doc = parse_bench_doc(&bench_json(10, HardwareProfile::pentium_ii_300())).expect("doc");
        assert!(compare(&doc, &doc, 30.0).is_empty());
    }

    #[test]
    fn compare_flags_p99_regressions_and_missing_strategies() {
        let baseline = parse_bench_doc(
            r#"{"ops": 10, "strategies": {
                "DLL": {"mean_ns": 100.0, "p50_ns": 100, "p99_ns": 100},
                "Thread": {"mean_ns": 200.0, "p50_ns": 200, "p99_ns": 200}
            }}"#,
        )
        .expect("baseline");
        let current = parse_bench_doc(
            r#"{"ops": 10, "strategies": {
                "DLL": {"mean_ns": 140.0, "p50_ns": 140, "p99_ns": 140}
            }}"#,
        )
        .expect("current");
        let violations = compare(&baseline, &current, 30.0);
        assert_eq!(violations.len(), 2, "regression + missing: {violations:?}");
        assert!(violations.iter().any(|v| v.contains("DLL")));
        assert!(violations.iter().any(|v| v.contains("missing")));
        // Within threshold passes.
        assert!(compare(&baseline, &baseline, 30.0).is_empty());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse_bench_doc("").is_err());
        assert!(parse_bench_doc("[1,2]").is_err());
        assert!(parse_bench_doc(r#"{"ops": 5}"#).is_err());
        assert!(parse_bench_doc(r#"{"ops": 5, "strategies": {}}"#).is_err());
        assert!(parse_bench_doc(r#"{"ops": 5, "strategies": {"DLL": {"p99_ns": 1}}}"#).is_err());
    }
}
