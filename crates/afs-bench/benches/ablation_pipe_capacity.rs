//! Ablation: pipe buffer capacity vs streaming throughput.
//!
//! §6 footnote: "The implementations are optimized to improve buffer
//! reuse and reduce synchronization overheads." The pipe's in-kernel
//! buffer size is the main such knob: a larger buffer amortises
//! wakeups across more bytes. This bench streams 256 KiB through pipes
//! of different capacities with a consuming thread on the other end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use afs_ipc::Pipe;
use afs_sim::{CostModel, CrossingKind};

const TOTAL: usize = 256 * 1024;
const CHUNK: usize = 1024;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipe_capacity");
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.sample_size(20);
    for capacity in [1 << 10, 4 << 10, 16 << 10, 64 << 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |b, &cap| {
                b.iter(|| {
                    let (tx, rx) =
                        Pipe::with_capacity(CostModel::free(), CrossingKind::InterProcess, cap);
                    let consumer = std::thread::spawn(move || {
                        let mut buf = [0u8; CHUNK];
                        let mut total = 0usize;
                        loop {
                            match rx.read(&mut buf) {
                                Ok(0) => break,
                                Ok(n) => total += n,
                                Err(_) => break,
                            }
                        }
                        total
                    });
                    let chunk = [0xAAu8; CHUNK];
                    for _ in 0..TOTAL / CHUNK {
                        tx.write(&chunk).expect("write");
                    }
                    drop(tx);
                    assert_eq!(consumer.join().expect("join"), TOTAL);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
