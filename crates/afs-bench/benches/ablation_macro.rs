//! Macro-workload ablation: a mixed read/write/seek "legacy application"
//! trace replayed against each strategy (wall-clock), complementing the
//! fixed-block microbenchmark of Figure 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afs_bench::workload::Trace;
use afs_bench::PathKind;
use afs_core::Strategy;
use afs_sim::HardwareProfile;
use afs_winapi::{Access, Disposition, FileApi};

fn bench(c: &mut Criterion) {
    let trace = Trace::generate(42, 200, 0.7);
    let mut group = c.benchmark_group("ablation_macro");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(900));
    for strategy in [
        Strategy::ProcessControl,
        Strategy::DllThread,
        Strategy::DllOnly,
    ] {
        let (world, file) = afs_bench::build_world_for_bench(
            PathKind::Memory,
            strategy,
            HardwareProfile::free(),
            trace.extent as usize + 2048,
        );
        let api = world.api();
        let h = api
            .create_file(file, Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        group.bench_function(BenchmarkId::from_parameter(strategy.label()), |b| {
            b.iter(|| trace.replay(&api, h))
        });
        api.close_handle(h).expect("close");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
