//! Wall-clock Figure 6 panel (b): sentinel uses the on-disk cache.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_panel(c, afs_bench::PathKind::Disk, "disk");
}

criterion_group!(benches, bench);
criterion_main!(benches);
