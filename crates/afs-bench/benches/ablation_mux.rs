//! Ablation: shared-sentinel session multiplexing vs one sentinel per
//! open.
//!
//! The second open of an active file normally attaches to the running
//! sentinel as a new session (`MuxTransport`); `share=off` forces the
//! paper's literal model — a private sentinel per open. This bench drives
//! the same concurrent-writer workload as `figure6 --concurrency` at
//! 1/2/8/32 clients in both modes and reports wall-clock per iteration;
//! the virtual-time story (per-write p50/p99 and total protection-domain
//! crossings) is printed once per cell on stderr, since Criterion only
//! plots wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afs_bench::{measure_concurrency, MUX_CLIENTS};
use afs_sim::HardwareProfile;

const OPS_PER_CLIENT: usize = 128;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mux");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    for clients in MUX_CLIENTS {
        for shared in [true, false] {
            let mode = if shared { "shared" } else { "private" };
            // One untimed run surfaces the numbers Criterion cannot plot.
            let m = measure_concurrency(
                clients,
                shared,
                OPS_PER_CLIENT,
                HardwareProfile::pentium_ii_300(),
            );
            eprintln!(
                "ablation_mux: {clients} clients {mode}: write p50 {} ns, \
                 p99 {} ns, {} crossings",
                m.summary.p50_ns, m.summary.p99_ns, m.total_crossings
            );
            group.bench_function(BenchmarkId::new(mode, clients), |b| {
                b.iter(|| {
                    measure_concurrency(
                        clients,
                        shared,
                        OPS_PER_CLIENT,
                        HardwareProfile::pentium_ii_300(),
                    )
                    .total_crossings
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
