//! Wall-clock Figure 6 panel (c): sentinel uses an in-memory cache.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_panel(c, afs_bench::PathKind::Memory, "memory");
}

criterion_group!(benches, bench);
criterion_main!(benches);
