//! Telemetry-overhead ablation: the same read loop through the cheapest
//! strategy (§4.4 DLL-only, memory cache, free cost model) with the
//! telemetry hub disabled vs enabled. The disabled case is the per-op
//! hot path the acceptance bar holds to "no added allocation"; the
//! enabled case prices the spans + histograms it buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afs_bench::PathKind;
use afs_core::Strategy;
use afs_sim::HardwareProfile;
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

fn bench(c: &mut Criterion) {
    const BLOCK: usize = 512;
    let mut group = c.benchmark_group("ablation_telemetry");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(900));
    for enabled in [false, true] {
        let (world, file) = afs_bench::build_world_for_bench(
            PathKind::Memory,
            Strategy::DllOnly,
            HardwareProfile::free(),
            BLOCK * 4,
        );
        world.telemetry().set_enabled(enabled);
        let api = world.api();
        let h = api
            .create_file(file, Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = vec![0u8; BLOCK];
        let label = if enabled { "enabled" } else { "disabled" };
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                api.read_file(h, &mut buf).expect("read")
            })
        });
        api.close_handle(h).expect("close");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
