//! Ablation: what durability costs.
//!
//! Three cells over the same 128-byte write workload through a null
//! sentinel (DLL-only, disk backing): the plain non-durable disk cache,
//! the WAL-backed store at `sync=commit` (one group-committed batch and
//! fsync barrier per sample), and the recovery cell — cold reopen + redo
//! replay of a 32-commit WAL. Criterion plots wall time;
//! the virtual-time per-commit p50/p99 and WAL/fsync counters — the
//! numbers the gate tracks — are printed once per cell on stderr.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afs_bench::{measure, measure_store, measure_store_recovery, Direction, PathKind, STORE_BLOCK};
use afs_core::Strategy;
use afs_sim::HardwareProfile;

const OPS: usize = 128;
const RECOVERY_COMMITS: usize = 32;
const RECOVERY_REOPENS: usize = 4;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_wal");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));

    // Untimed reference runs surface the virtual-time story.
    let plain = measure(
        PathKind::Disk,
        Strategy::DllOnly,
        Direction::Write,
        STORE_BLOCK,
        OPS,
        HardwareProfile::pentium_ii_300(),
    );
    let plain_summary = plain.series.summarize();
    eprintln!(
        "ablation_wal: plain disk write p50 {} ns, p99 {} ns",
        plain_summary.p50_ns, plain_summary.p99_ns
    );
    let durable = measure_store(OPS, HardwareProfile::pentium_ii_300());
    eprintln!(
        "ablation_wal: durable commit p50 {} ns, p99 {} ns \
         ({} WAL appends, {} bytes, {} fsyncs, {} commits)",
        durable.summary.p50_ns,
        durable.summary.p99_ns,
        durable.store.wal_appends,
        durable.store.wal_bytes,
        durable.store.fsyncs,
        durable.store.commits
    );
    let recovery = measure_store_recovery(
        RECOVERY_COMMITS,
        RECOVERY_REOPENS,
        HardwareProfile::pentium_ii_300(),
    );
    eprintln!(
        "ablation_wal: recovery of {} commits p50 {} ns ({} records replayed)",
        RECOVERY_COMMITS, recovery.summary.p50_ns, recovery.store.recovered_records
    );

    group.bench_function(BenchmarkId::from_parameter("plain-disk"), |b| {
        b.iter(|| {
            measure(
                PathKind::Disk,
                Strategy::DllOnly,
                Direction::Write,
                STORE_BLOCK,
                OPS,
                HardwareProfile::pentium_ii_300(),
            )
            .series
            .summarize()
            .p99_ns
        })
    });
    group.bench_function(BenchmarkId::from_parameter("wal-commit"), |b| {
        b.iter(|| {
            measure_store(OPS, HardwareProfile::pentium_ii_300())
                .summary
                .p99_ns
        })
    });
    group.bench_function(BenchmarkId::from_parameter("recovery"), |b| {
        b.iter(|| {
            measure_store_recovery(
                RECOVERY_COMMITS,
                RECOVERY_REOPENS,
                HardwareProfile::pentium_ii_300(),
            )
            .summary
            .p99_ns
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
