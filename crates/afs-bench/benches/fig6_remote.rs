//! Wall-clock Figure 6 panel (a): sentinel reaches a remote source.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_panel(c, afs_bench::PathKind::Remote, "remote");
}

criterion_group!(benches, bench);
criterion_main!(benches);
