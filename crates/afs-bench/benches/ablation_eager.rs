//! Ablation: eager read injection (§4.2).
//!
//! "Given different models of usage, the sentinel process might choose to
//! eagerly inject data into the read pipe (anticipating read requests
//! from the user)." The mirror sentinel's `readahead` mode prefetches
//! double-sized ranges; this bench streams a 64 KiB remote file
//! sequentially with and without it.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use afs_core::{AfsWorld, SentinelSpec, Strategy};
use afs_net::Service;
use afs_remote::FileServer;
use afs_sim::HardwareProfile;
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

const TOTAL: usize = 64 * 1024;
const BLOCK: usize = 1024;

fn setup(readahead: bool) -> (AfsWorld, afs_interpose::ApiHandle, afs_winapi::Handle) {
    let world = AfsWorld::builder().profile(HardwareProfile::free()).build();
    afs_sentinels::register_all(world.sentinels());
    let server = FileServer::new();
    server.seed("/blob", &vec![3u8; TOTAL]);
    world
        .net()
        .register("files", Arc::clone(&server) as Arc<dyn Service>);
    world
        .install_active_file(
            "/m.af",
            &SentinelSpec::new("mirror", Strategy::DllThread)
                .with("service", "files")
                .with("remote", "/blob")
                .with("readahead", if readahead { "true" } else { "false" }),
        )
        .expect("install");
    let api = world.api();
    let h = api
        .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
        .expect("open");
    (world, api, h)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eager");
    group.throughput(Throughput::Bytes(TOTAL as u64));
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(900));
    for eager in [false, true] {
        let label = if eager { "readahead" } else { "lazy" };
        let (_world, api, h) = setup(eager);
        let mut buf = vec![0u8; BLOCK];
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                api.set_file_pointer(h, 0, SeekMethod::Begin)
                    .expect("rewind");
                let mut total = 0;
                while total < TOTAL {
                    total += api.read_file(h, &mut buf).expect("read");
                }
                total
            })
        });
        api.close_handle(h).expect("close");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
