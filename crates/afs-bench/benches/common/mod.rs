//! Shared setup for the wall-clock Figure 6 benches.
//!
//! These benches measure the *real* Rust implementation under Criterion
//! with a free cost model (no virtual time): they independently confirm
//! the ordering claim (Process > Thread > DLL) on modern hardware, while
//! the `figure6` binary reproduces the paper's absolute µs with the
//! calibrated simulator.

use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};

use afs_bench::PathKind;
use afs_core::{AfsWorld, Backing, SentinelSpec, Strategy};
use afs_net::Service;
use afs_remote::FileServer;
use afs_sim::HardwareProfile;
use afs_vfs::VPath;
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

/// Block sizes to sweep in wall-clock mode (a subset keeps bench runs
/// short).
pub const BLOCKS: [usize; 3] = [8, 128, 2048];

/// Strategies with seek support (the wall-clock loop rewinds between
/// reads).
pub const STRATEGIES: [Strategy; 3] = [
    Strategy::ProcessControl,
    Strategy::DllThread,
    Strategy::DllOnly,
];

/// Builds a world + open handle for one configuration.
pub fn setup(
    path: PathKind,
    strategy: Strategy,
    bytes: usize,
) -> (AfsWorld, afs_interpose::ApiHandle, afs_winapi::Handle) {
    let world = AfsWorld::builder().profile(HardwareProfile::free()).build();
    afs_sentinels::register_all(world.sentinels());
    let file = "/bench.af";
    match path {
        PathKind::Remote => {
            let server = FileServer::new();
            server.seed("/blob", &vec![7u8; bytes]);
            world
                .net()
                .register("files", Arc::clone(&server) as Arc<dyn Service>);
            world
                .install_active_file(
                    file,
                    &SentinelSpec::new("mirror", strategy)
                        .with("service", "files")
                        .with("remote", "/blob"),
                )
                .expect("install");
        }
        PathKind::Disk | PathKind::Memory => {
            let backing = if path == PathKind::Disk {
                Backing::Disk
            } else {
                Backing::Memory
            };
            world
                .install_active_file(
                    file,
                    &SentinelSpec::new("mirror", strategy).backing(backing),
                )
                .expect("install");
            world
                .vfs()
                .write_stream_replace(&VPath::parse(file).expect("path"), &vec![7u8; bytes])
                .expect("seed");
        }
    }
    let api = world.api();
    let h = api
        .create_file(file, Access::read_write(), Disposition::OpenExisting)
        .expect("open");
    (world, api, h)
}

/// Registers read and write benches for one panel.
pub fn bench_panel(c: &mut Criterion, path: PathKind, panel_name: &str) {
    let mut group = c.benchmark_group(format!("fig6_{panel_name}_read"));
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(700));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for strategy in STRATEGIES {
        for block in BLOCKS {
            let (_world, api, h) = setup(path, strategy, block.max(64));
            let mut buf = vec![0u8; block];
            group.bench_with_input(BenchmarkId::new(strategy.label(), block), &block, |b, _| {
                b.iter(|| {
                    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                    api.read_file(h, &mut buf).expect("read")
                })
            });
            api.close_handle(h).expect("close");
        }
    }
    group.finish();

    let mut group = c.benchmark_group(format!("fig6_{panel_name}_write"));
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(700));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for strategy in STRATEGIES {
        for block in BLOCKS {
            let (_world, api, h) = setup(path, strategy, block.max(64));
            let buf = vec![0u8; block];
            group.bench_with_input(BenchmarkId::new(strategy.label(), block), &block, |b, _| {
                b.iter(|| {
                    api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                    api.write_file(h, &buf).expect("write")
                })
            });
            api.close_handle(h).expect("close");
        }
    }
    group.finish();
}
