//! Ablation: null-filter active file vs a plain passive file.
//!
//! §2.2: "The sentinel can be a null filter, in which case the active
//! file has the semantics of a passive file." This bench quantifies what
//! the *mechanism alone* costs for each strategy when the behaviour adds
//! nothing — the purest measure of the framework overhead the paper
//! argues is negligible for the DLL-only strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use afs_core::{AfsWorld, Backing, SentinelSpec, Strategy};
use afs_sim::HardwareProfile;
use afs_winapi::{Access, Disposition, FileApi, SeekMethod};

const BLOCK: usize = 512;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_null_vs_passive");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(700));

    // Passive baseline.
    {
        let world = AfsWorld::builder().profile(HardwareProfile::free()).build();
        let api = world.api();
        let h = api
            .create_file("/plain", Access::read_write(), Disposition::CreateAlways)
            .expect("create");
        api.write_file(h, &vec![1u8; BLOCK]).expect("seed");
        let mut buf = vec![0u8; BLOCK];
        group.bench_function(BenchmarkId::new("passive", BLOCK), |b| {
            b.iter(|| {
                api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                api.read_file(h, &mut buf).expect("read")
            })
        });
        api.close_handle(h).expect("close");
    }

    // Null sentinel under each strategy.
    for strategy in [
        Strategy::ProcessControl,
        Strategy::DllThread,
        Strategy::DllOnly,
    ] {
        let world = AfsWorld::builder().profile(HardwareProfile::free()).build();
        world
            .install_active_file(
                "/null.af",
                &SentinelSpec::new("null", strategy).backing(Backing::Disk),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/null.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        api.write_file(h, &vec![1u8; BLOCK]).expect("seed");
        let mut buf = vec![0u8; BLOCK];
        group.bench_function(BenchmarkId::new(strategy.label(), BLOCK), |b| {
            b.iter(|| {
                api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
                api.read_file(h, &mut buf).expect("read")
            })
        });
        api.close_handle(h).expect("close");
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
