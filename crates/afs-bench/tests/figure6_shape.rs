//! Asserts the reproduction claims for Figure 6 — not absolute numbers
//! (our substrate is a calibrated simulator, not the authors' testbed)
//! but the *shape*: who wins, by roughly what factor, and where the
//! qualitative statements of §6 show up.

use afs_bench::{measure, measure_baseline, Direction, PathKind, BLOCK_SIZES};
use afs_core::Strategy;
use afs_sim::HardwareProfile;

const OPS: usize = 300;

fn profile() -> HardwareProfile {
    HardwareProfile::pentium_ii_300()
}

fn mean(path: PathKind, strategy: Strategy, dir: Direction, block: usize) -> f64 {
    measure(path, strategy, dir, block, OPS, profile()).mean_us()
}

#[test]
fn reads_order_process_above_thread_above_dll_everywhere() {
    for path in PathKind::ALL {
        for block in BLOCK_SIZES {
            let process = mean(path, Strategy::ProcessControl, Direction::Read, block);
            let thread = mean(path, Strategy::DllThread, Direction::Read, block);
            let dll = mean(path, Strategy::DllOnly, Direction::Read, block);
            assert!(
                process > thread && thread > dll,
                "{path:?} block {block}: expected Process({process:.1}) > Thread({thread:.1}) > DLL({dll:.1})"
            );
        }
    }
}

#[test]
fn dll_only_is_indistinguishable_from_baseline() {
    // "The baseline costs for directly accessing these paths is
    // indistinguishable from the DLL-only case" (Figure 6 caption).
    for path in PathKind::ALL {
        for block in [8usize, 512, 2048] {
            let dll = mean(path, Strategy::DllOnly, Direction::Read, block);
            let base = measure_baseline(path, Direction::Read, block, OPS, profile()).mean_us();
            let ratio = dll / base.max(1e-9);
            // "Indistinguishable" allows the DLL to be *slightly cheaper*:
            // "the Read operation, normally a system call, is sometimes
            // diverted to a user-mode memcpy() improving performance over
            // the original" (§6 footnote). The absolute gap is a few
            // syscalls at most.
            let abs_gap_us = (base - dll).abs();
            assert!(
                ratio <= 1.1 && (ratio >= 0.5 || abs_gap_us <= 6.0),
                "{path:?} block {block}: DLL {dll:.1} vs baseline {base:.1} (ratio {ratio:.2}) — \
                 DLL must be at most baseline and in its neighbourhood"
            );
        }
    }
}

#[test]
fn costs_grow_with_block_size() {
    for path in PathKind::ALL {
        for strategy in afs_bench::FIGURE6_STRATEGIES {
            let small = mean(path, strategy, Direction::Read, 8);
            let large = mean(path, strategy, Direction::Read, 2048);
            assert!(
                large > small,
                "{path:?} {strategy:?}: read cost must grow with block size ({small:.1} vs {large:.1})"
            );
        }
    }
}

#[test]
fn writes_are_cheaper_than_reads_on_latency_paths() {
    // "Since writes are issued without waiting for their completion, any
    // increase … stems from bandwidth restrictions" (§6): the read pays
    // the round trip, the write only the stream.
    for path in [PathKind::Remote, PathKind::Disk] {
        for strategy in afs_bench::FIGURE6_STRATEGIES {
            let read = mean(path, strategy, Direction::Read, 512);
            let write = mean(path, strategy, Direction::Write, 512);
            assert!(
                write < read,
                "{path:?} {strategy:?}: write ({write:.1}) must undercut read ({read:.1})"
            );
        }
    }
}

#[test]
fn disk_reads_are_the_most_expensive_panel() {
    // The paper's (b) read axis tops 720 µs versus 560 µs for (a) and
    // 210 µs for (c).
    let remote = mean(
        PathKind::Remote,
        Strategy::ProcessControl,
        Direction::Read,
        2048,
    );
    let disk = mean(
        PathKind::Disk,
        Strategy::ProcessControl,
        Direction::Read,
        2048,
    );
    let memory = mean(
        PathKind::Memory,
        Strategy::ProcessControl,
        Direction::Read,
        2048,
    );
    assert!(
        disk > remote,
        "disk ({disk:.1}) must exceed remote ({remote:.1})"
    );
    assert!(
        remote > memory,
        "remote ({remote:.1}) must exceed memory ({memory:.1})"
    );
}

#[test]
fn strategy_overhead_gap_shrinks_as_the_medium_dominates() {
    // On the memory path the strategy overhead *is* the measurement; on
    // the remote path the network dwarfs it. Relative Process/DLL gap
    // must therefore be much larger on memory than on remote.
    let gap = |path: PathKind| {
        let process = mean(path, Strategy::ProcessControl, Direction::Read, 512);
        let dll = mean(path, Strategy::DllOnly, Direction::Read, 512);
        process / dll.max(1e-9)
    };
    assert!(
        gap(PathKind::Memory) > 3.0 * gap(PathKind::Remote),
        "memory-path gap {:.1}x vs remote-path gap {:.1}x",
        gap(PathKind::Memory),
        gap(PathKind::Remote)
    );
}

#[test]
fn simple_process_strategy_is_at_least_as_slow_as_process_control_reads() {
    // §4.1's two-pipe strategy streams eagerly, so it is not part of
    // Figure 6; but its per-op cost on the memory path is in the same
    // league as the process-plus-control strategy (same copies, same
    // crossings).
    let simple = mean(PathKind::Memory, Strategy::Process, Direction::Read, 512);
    let control = mean(
        PathKind::Memory,
        Strategy::ProcessControl,
        Direction::Read,
        512,
    );
    assert!(
        simple > control * 0.3 && simple < control * 3.0,
        "simple process ({simple:.1}) should be within 3x of process-control ({control:.1})"
    );
}

#[test]
fn framework_itself_adds_no_cost_beyond_its_mechanics() {
    // "The active files framework on its own does not introduce extra
    // cost" (§6): with a free profile every strategy measures zero
    // virtual time.
    for strategy in afs_bench::FIGURE6_STRATEGIES {
        let m = measure(
            PathKind::Memory,
            strategy,
            Direction::Read,
            128,
            50,
            HardwareProfile::free(),
        );
        assert_eq!(
            m.series.summarize().max_ns,
            0,
            "{strategy:?} charged time on a free profile"
        );
    }
}
