//! Shape assertions for the shared-sentinel concurrency ablation — the
//! acceptance claims of the session-multiplexing change:
//!
//! 1. At 8+ concurrent clients the shared sentinel beats one-sentinel-
//!    per-open on *both* per-write p99 latency and total protection-
//!    domain crossings.
//! 2. With a single client the shared path costs the same as a private
//!    sentinel (multiplexing must not tax the uncontended case).
//! 3. The measurements are deterministic (virtual time), so the bench
//!    gate can hold them to a threshold without flakiness.

use afs_bench::measure_concurrency;
use afs_sim::HardwareProfile;

const OPS: usize = 100;

fn profile() -> HardwareProfile {
    HardwareProfile::pentium_ii_300()
}

#[test]
fn shared_beats_private_at_eight_clients() {
    let shared = measure_concurrency(8, true, OPS, profile());
    let private = measure_concurrency(8, false, OPS, profile());
    assert!(
        shared.summary.p99_ns < private.summary.p99_ns,
        "shared p99 {} ns must beat private p99 {} ns",
        shared.summary.p99_ns,
        private.summary.p99_ns
    );
    assert!(
        shared.total_crossings < private.total_crossings,
        "shared crossings {} must beat private crossings {}",
        shared.total_crossings,
        private.total_crossings
    );
}

#[test]
fn single_client_shared_costs_the_same_as_private() {
    let shared = measure_concurrency(1, true, OPS, profile());
    let private = measure_concurrency(1, false, OPS, profile());
    // With one session the hub transmits immediately (no staging), so the
    // per-write cost is identical to a private transport.
    assert_eq!(
        shared.summary.p99_ns, private.summary.p99_ns,
        "uncontended mux must not add latency"
    );
    assert_eq!(
        shared.total_crossings, private.total_crossings,
        "uncontended mux must not add crossings"
    );
}

#[test]
fn crossings_scale_with_clients_only_when_private() {
    let shared_2 = measure_concurrency(2, true, OPS, profile());
    let shared_8 = measure_concurrency(8, true, OPS, profile());
    let private_2 = measure_concurrency(2, false, OPS, profile());
    let private_8 = measure_concurrency(8, false, OPS, profile());
    // Private sentinels pay per-op crossings per client: 4x the clients
    // is ~4x the crossings. The shared sentinel batches, so its growth
    // must be well under that.
    let private_growth = private_8.total_crossings as f64 / private_2.total_crossings as f64;
    let shared_growth = shared_8.total_crossings as f64 / shared_2.total_crossings.max(1) as f64;
    assert!(
        private_growth > 3.0,
        "private crossings grow with clients (got {private_growth:.2})"
    );
    assert!(
        shared_growth < private_growth,
        "shared crossings must grow slower than private \
         ({shared_growth:.2} vs {private_growth:.2})"
    );
}

#[test]
fn concurrency_measurements_are_deterministic() {
    for (clients, shared) in [(2, true), (8, true), (2, false)] {
        let a = measure_concurrency(clients, shared, OPS, profile());
        let b = measure_concurrency(clients, shared, OPS, profile());
        assert_eq!(
            a.summary, b.summary,
            "virtual-time latencies reproduce ({clients} clients, shared={shared})"
        );
        assert_eq!(
            a.total_crossings, b.total_crossings,
            "crossings reproduce ({clients} clients, shared={shared})"
        );
    }
}
