#![warn(missing_docs)]
//! Related-work baselines (§7 of the paper), implemented as interception
//! layers so tests can contrast them with active files directly.
//!
//! * [`UfoLayer`] — Ufo \[1\]: "seamless access to remote files" via
//!   system-call interception, with **hard-coded** fetch-on-open /
//!   write-back-on-close behaviour applied uniformly to every file under
//!   a mapped prefix. The contrast the paper draws: "unlike the
//!   hard-coded functionality of the former, active files are completely
//!   programmable" — Ufo cannot give two files different behaviours.
//! * [`JanusLayer`] — Janus \[9\]: a sandbox that "restricts the set of
//!   files a process can access". **Process-centric** control: one policy
//!   for the whole application, attached to the API, not to any file.
//!   Active files invert this into resource-centric control, where "the
//!   file itself can specify the kind of access control policies".
//! * [`WatchdogLayer`] — Watchdogs \[3\]: kernel-supported "notification
//!   about file access". Observers see every operation on guarded paths
//!   but cannot transform data in flight.

pub mod janus;
pub mod ufo;
pub mod watchdog;

pub use janus::{JanusLayer, JanusPolicy, JanusRule};
pub use ufo::UfoLayer;
pub use watchdog::{AccessEvent, AccessKind, WatchdogLayer, WatchdogLog};
