//! The Watchdogs baseline: access notification on guarded paths.
//!
//! Watchdogs (Bershad & Pinkerton, USENIX 1988) extend the UNIX file
//! system with kernel support for "notification about file access". The
//! paper's critique: "even though an access notification mechanism is
//! sufficient to implement locking, filtering, and other features, the
//! heavyweight nature of kernel involvement restricts its applicability."
//! This baseline provides the observation half — every operation on a
//! guarded prefix is logged with its acting handle — without any ability
//! to transform data.

use std::sync::Arc;

use parking_lot::Mutex;

use afs_interpose::ApiLayer;
use afs_winapi::{Access, ApiResult, DelegateFileApi, Disposition, FileApi, Handle, Layered};

/// What kind of access was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// `CreateFile`/`OpenFile`.
    Open,
    /// `ReadFile`.
    Read,
    /// `WriteFile`.
    Write,
    /// `CloseHandle`.
    Close,
    /// `DeleteFile`.
    Delete,
}

/// One observed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEvent {
    /// What happened.
    pub kind: AccessKind,
    /// The path (for open/delete) or the opening path of the handle.
    pub path: String,
    /// Bytes moved, where applicable.
    pub bytes: usize,
}

/// Shared, inspectable log of observed accesses.
#[derive(Debug, Clone, Default)]
pub struct WatchdogLog {
    events: Arc<Mutex<Vec<AccessEvent>>>,
}

impl WatchdogLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WatchdogLog::default()
    }

    /// Copies out the events observed so far.
    pub fn events(&self) -> Vec<AccessEvent> {
        self.events.lock().clone()
    }

    /// Number of observed events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` if nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    fn push(&self, event: AccessEvent) {
        self.events.lock().push(event);
    }
}

/// The installable watchdog layer guarding one path prefix.
pub struct WatchdogLayer {
    prefix: String,
    log: WatchdogLog,
}

impl WatchdogLayer {
    /// Creates a watchdog over `prefix`, reporting into `log`.
    pub fn new(prefix: &str, log: WatchdogLog) -> Self {
        WatchdogLayer {
            prefix: prefix.to_owned(),
            log,
        }
    }
}

impl ApiLayer for WatchdogLayer {
    fn name(&self) -> &str {
        "watchdog"
    }

    fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi> {
        Arc::new(Layered(WatchdogApi {
            inner,
            prefix: self.prefix.clone(),
            log: self.log.clone(),
            watched: Mutex::new(std::collections::HashMap::new()),
        }))
    }
}

struct WatchdogApi {
    inner: Arc<dyn FileApi>,
    prefix: String,
    log: WatchdogLog,
    watched: Mutex<std::collections::HashMap<Handle, String>>,
}

impl DelegateFileApi for WatchdogApi {
    fn delegate(&self) -> &dyn FileApi {
        &*self.inner
    }

    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        let h = self.delegate().create_file(path, access, disposition)?;
        if path.starts_with(&self.prefix) {
            self.log.push(AccessEvent {
                kind: AccessKind::Open,
                path: path.to_owned(),
                bytes: 0,
            });
            self.watched.lock().insert(h, path.to_owned());
        }
        Ok(h)
    }

    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        let n = self.delegate().read_file(handle, buf)?;
        if let Some(path) = self.watched.lock().get(&handle) {
            self.log.push(AccessEvent {
                kind: AccessKind::Read,
                path: path.clone(),
                bytes: n,
            });
        }
        Ok(n)
    }

    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        let n = self.delegate().write_file(handle, data)?;
        if let Some(path) = self.watched.lock().get(&handle) {
            self.log.push(AccessEvent {
                kind: AccessKind::Write,
                path: path.clone(),
                bytes: n,
            });
        }
        Ok(n)
    }

    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        self.delegate().close_handle(handle)?;
        if let Some(path) = self.watched.lock().remove(&handle) {
            self.log.push(AccessEvent {
                kind: AccessKind::Close,
                path,
                bytes: 0,
            });
        }
        Ok(())
    }

    fn delete_file(&self, path: &str) -> ApiResult<()> {
        self.delegate().delete_file(path)?;
        if path.starts_with(&self.prefix) {
            self.log.push(AccessEvent {
                kind: AccessKind::Delete,
                path: path.to_owned(),
                bytes: 0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;
    use afs_vfs::Vfs;
    use afs_winapi::PassiveFileApi;

    fn watched() -> (afs_interpose::ApiHandle, WatchdogLog) {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let connector = afs_interpose::MediatingConnector::new(base);
        let log = WatchdogLog::new();
        connector
            .install(Arc::new(WatchdogLayer::new("/guarded", log.clone())))
            .expect("install");
        (connector.api(), log)
    }

    #[test]
    fn guarded_accesses_are_observed_in_order() {
        let (api, log) = watched();
        api.create_directory("/guarded").expect("mkdir");
        let h = api
            .create_file("/guarded/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"abc").expect("write");
        api.set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)
            .expect("seek");
        let mut buf = [0u8; 3];
        api.read_file(h, &mut buf).expect("read");
        api.close_handle(h).expect("close");
        api.delete_file("/guarded/f").expect("delete");
        let kinds: Vec<AccessKind> = log.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                AccessKind::Open,
                AccessKind::Write,
                AccessKind::Read,
                AccessKind::Close,
                AccessKind::Delete
            ]
        );
        assert_eq!(log.events()[1].bytes, 3);
    }

    #[test]
    fn unguarded_paths_are_invisible() {
        let (api, log) = watched();
        let h = api
            .create_file("/elsewhere", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"x").expect("write");
        api.close_handle(h).expect("close");
        assert!(log.is_empty());
    }

    #[test]
    fn watchdog_observes_but_cannot_transform() {
        // The structural limitation: data passes through unchanged; only
        // the log sees anything.
        let (api, log) = watched();
        api.create_directory("/guarded").expect("mkdir");
        let h = api
            .create_file("/guarded/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"verbatim").expect("write");
        api.set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)
            .expect("seek");
        let mut buf = [0u8; 8];
        api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf, b"verbatim");
        api.close_handle(h).expect("close");
        assert_eq!(log.len(), 4);
    }
}
