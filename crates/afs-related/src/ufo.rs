//! The Ufo baseline: hard-coded seamless remote file access.
//!
//! Ufo (Alexandrov et al., ACM TOCS 1998) intercepts system calls to give
//! a "personal global file system": paths under a mapped prefix resolve
//! to remote files, fetched whole on open and written back on close. The
//! behaviour is fixed by the interposer — every mapped file gets the same
//! treatment, which is precisely the limitation active files remove.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use afs_interpose::ApiLayer;
use afs_net::Network;
use afs_remote::FileClient;
use afs_winapi::{
    Access, ApiResult, DelegateFileApi, Disposition, FileApi, Handle, Layered, Win32Error,
};

/// The installable Ufo layer: maps `<prefix>/x` to `<remote_root>/x` on a
/// file server.
pub struct UfoLayer {
    prefix: String,
    remote_root: String,
    client: FileClient,
}

impl UfoLayer {
    /// Creates the layer. `prefix` must start and end without a trailing
    /// slash (e.g. `/remote`); `service` is the file-server name.
    pub fn new(net: Network, service: &str, prefix: &str, remote_root: &str) -> Self {
        UfoLayer {
            prefix: prefix.trim_end_matches('/').to_owned(),
            remote_root: remote_root.trim_end_matches('/').to_owned(),
            client: FileClient::new(net, service),
        }
    }
}

impl ApiLayer for UfoLayer {
    fn name(&self) -> &str {
        "ufo"
    }

    fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi> {
        Arc::new(Layered(UfoApi {
            inner,
            prefix: self.prefix.clone(),
            remote_root: self.remote_root.clone(),
            client: self.client.clone(),
            opens: Mutex::new(HashMap::new()),
        }))
    }
}

struct OpenState {
    remote: String,
    dirty: bool,
    local: String,
}

struct UfoApi {
    inner: Arc<dyn FileApi>,
    prefix: String,
    remote_root: String,
    client: FileClient,
    opens: Mutex<HashMap<Handle, OpenState>>,
}

impl UfoApi {
    fn map(&self, path: &str) -> Option<String> {
        let rest = path.strip_prefix(&self.prefix)?;
        if !rest.starts_with('/') {
            return None;
        }
        Some(format!("{}{}", self.remote_root, rest))
    }
}

impl DelegateFileApi for UfoApi {
    fn delegate(&self) -> &dyn FileApi {
        &*self.inner
    }

    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        let Some(remote) = self.map(path) else {
            return self.delegate().create_file(path, access, disposition);
        };
        // Fetch-on-open into a hidden local shadow file (the "local copy"
        // of Ufo), uniform for every mapped path.
        let data = match disposition {
            Disposition::OpenExisting | Disposition::OpenAlways => self
                .client
                .get_all(&remote)
                .map_err(|_| Win32Error::FileNotFound)?,
            Disposition::CreateNew | Disposition::CreateAlways | Disposition::TruncateExisting => {
                Vec::new()
            }
        };
        let local = format!("/.ufo{}", path.replace('/', "_"));
        let h =
            self.delegate()
                .create_file(&local, Access::read_write(), Disposition::CreateAlways)?;
        if !data.is_empty() {
            self.delegate().write_file(h, &data)?;
            self.delegate()
                .set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)?;
        }
        self.opens.lock().insert(
            h,
            OpenState {
                remote,
                dirty: false,
                local,
            },
        );
        Ok(h)
    }

    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        let n = self.delegate().write_file(handle, data)?;
        if let Some(state) = self.opens.lock().get_mut(&handle) {
            state.dirty = true;
        }
        Ok(n)
    }

    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        let state = self.opens.lock().remove(&handle);
        if let Some(state) = state {
            if state.dirty {
                // Write-back-on-close: read the shadow and replace the
                // remote file.
                self.delegate()
                    .set_file_pointer(handle, 0, afs_winapi::SeekMethod::Begin)?;
                let size = self.delegate().get_file_size(handle)? as usize;
                let mut data = vec![0u8; size];
                let mut total = 0;
                while total < size {
                    let n = self.delegate().read_file(handle, &mut data[total..])?;
                    if n == 0 {
                        break;
                    }
                    total += n;
                }
                self.client
                    .replace(&state.remote, &data)
                    .map_err(|_| Win32Error::NetworkError)?;
            }
            self.delegate().close_handle(handle)?;
            // The shadow is transient.
            let _ = self.delegate().delete_file(&state.local);
            return Ok(());
        }
        self.delegate().close_handle(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_net::Service;
    use afs_remote::FileServer;
    use afs_sim::CostModel;
    use afs_vfs::Vfs;
    use afs_winapi::{PassiveFileApi, SeekMethod};

    fn setup() -> (afs_interpose::ApiHandle, Arc<FileServer>, Network) {
        let net = Network::new(CostModel::free());
        let server = FileServer::new();
        server.seed("/home/user/doc.txt", b"remote document");
        net.register("nfs", Arc::clone(&server) as Arc<dyn Service>);
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let connector = afs_interpose::MediatingConnector::new(base);
        connector
            .install(Arc::new(UfoLayer::new(
                net.clone(),
                "nfs",
                "/remote",
                "/home/user",
            )))
            .expect("install ufo");
        (connector.api(), server, net)
    }

    #[test]
    fn mapped_paths_read_remote_content() {
        let (api, _server, _net) = setup();
        let h = api
            .create_file(
                "/remote/doc.txt",
                Access::read_only(),
                Disposition::OpenExisting,
            )
            .expect("open");
        let mut buf = [0u8; 32];
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"remote document");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn writes_flow_back_on_close() {
        let (api, server, _net) = setup();
        let h = api
            .create_file(
                "/remote/doc.txt",
                Access::read_write(),
                Disposition::OpenExisting,
            )
            .expect("open");
        api.set_file_pointer(h, 0, SeekMethod::End).expect("seek");
        api.write_file(h, b" + edits").expect("write");
        api.close_handle(h).expect("close writes back");
        assert_eq!(
            server
                .vfs()
                .read_stream_to_end(&"/home/user/doc.txt".parse().expect("p"))
                .expect("read"),
            b"remote document + edits"
        );
    }

    #[test]
    fn unmapped_paths_pass_through() {
        let (api, _server, _net) = setup();
        let h = api
            .create_file("/local.txt", Access::read_write(), Disposition::CreateNew)
            .expect("create local");
        api.write_file(h, b"local").expect("write");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn missing_remote_file_fails_the_open() {
        let (api, _server, _net) = setup();
        assert_eq!(
            api.create_file(
                "/remote/ghost",
                Access::read_only(),
                Disposition::OpenExisting
            ),
            Err(Win32Error::FileNotFound)
        );
    }
}
