//! The Janus baseline: process-centric sandboxing.
//!
//! Janus (Goldberg et al., USENIX Security 1996) is "a secure environment
//! for untrusted helper applications" that "restricts the set of files a
//! process can access". The policy belongs to the *process*: one rule
//! set filters every open the application attempts, regardless of which
//! file it is. The paper contrasts this with active files'
//! resource-centric control, where each file carries its own policy.

use std::sync::Arc;

use afs_interpose::ApiLayer;
use afs_winapi::{
    Access, ApiResult, DelegateFileApi, Disposition, FileApi, Handle, Layered, Win32Error,
};

/// One allow rule: a path prefix plus the rights granted beneath it.
#[derive(Debug, Clone)]
pub struct JanusRule {
    /// Paths beginning with this prefix match.
    pub prefix: String,
    /// Whether matched paths may be opened for reading.
    pub allow_read: bool,
    /// Whether matched paths may be opened for writing.
    pub allow_write: bool,
}

/// A deny-by-default policy: an open is permitted only if some rule
/// grants every requested right.
#[derive(Debug, Clone, Default)]
pub struct JanusPolicy {
    rules: Vec<JanusRule>,
}

impl JanusPolicy {
    /// Creates an empty (deny-everything) policy.
    pub fn new() -> Self {
        JanusPolicy::default()
    }

    /// Adds an allow rule (builder style).
    pub fn allow(mut self, prefix: &str, read: bool, write: bool) -> Self {
        self.rules.push(JanusRule {
            prefix: prefix.to_owned(),
            allow_read: read,
            allow_write: write,
        });
        self
    }

    /// `true` if the policy permits opening `path` with `access`.
    pub fn permits(&self, path: &str, access: Access) -> bool {
        self.rules.iter().any(|rule| {
            path.starts_with(&rule.prefix)
                && (!access.read || rule.allow_read)
                && (!access.write || rule.allow_write)
        })
    }
}

/// The installable Janus layer.
pub struct JanusLayer {
    policy: JanusPolicy,
}

impl JanusLayer {
    /// Creates the layer enforcing `policy`.
    pub fn new(policy: JanusPolicy) -> Self {
        JanusLayer { policy }
    }
}

impl ApiLayer for JanusLayer {
    fn name(&self) -> &str {
        "janus"
    }

    fn wrap(&self, inner: Arc<dyn FileApi>) -> Arc<dyn FileApi> {
        Arc::new(Layered(JanusApi {
            inner,
            policy: self.policy.clone(),
        }))
    }
}

struct JanusApi {
    inner: Arc<dyn FileApi>,
    policy: JanusPolicy,
}

impl DelegateFileApi for JanusApi {
    fn delegate(&self) -> &dyn FileApi {
        &*self.inner
    }

    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        if !self.policy.permits(path, access) {
            return Err(Win32Error::AccessDenied);
        }
        self.delegate().create_file(path, access, disposition)
    }

    fn delete_file(&self, path: &str) -> ApiResult<()> {
        if !self.policy.permits(path, Access::write_only()) {
            return Err(Win32Error::AccessDenied);
        }
        self.delegate().delete_file(path)
    }

    fn move_file(&self, from: &str, to: &str) -> ApiResult<()> {
        let w = Access::write_only();
        if !self.policy.permits(from, w) || !self.policy.permits(to, w) {
            return Err(Win32Error::AccessDenied);
        }
        self.delegate().move_file(from, to)
    }

    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        if !self.policy.permits(from, Access::read_only())
            || !self.policy.permits(to, Access::write_only())
        {
            return Err(Win32Error::AccessDenied);
        }
        self.delegate().copy_file(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::CostModel;
    use afs_vfs::Vfs;
    use afs_winapi::PassiveFileApi;

    fn sandboxed(policy: JanusPolicy) -> afs_interpose::ApiHandle {
        let base = Arc::new(PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free()));
        let connector = afs_interpose::MediatingConnector::new(base);
        // Seed before the sandbox goes up (the "trusted setup" phase).
        let api = connector.api();
        api.create_directory("/etc").expect("mkdir /etc");
        let h = api
            .create_file("/etc/passwd", Access::read_write(), Disposition::CreateNew)
            .expect("seed");
        api.write_file(h, b"root:x").expect("seed write");
        api.close_handle(h).expect("close");
        api.create_directory("/tmp").expect("mkdir");
        connector
            .install_secure(Arc::new(JanusLayer::new(policy)))
            .expect("install janus");
        connector.api()
    }

    #[test]
    fn deny_by_default() {
        let api = sandboxed(JanusPolicy::new());
        assert_eq!(
            api.create_file(
                "/etc/passwd",
                Access::read_only(),
                Disposition::OpenExisting
            ),
            Err(Win32Error::AccessDenied)
        );
    }

    #[test]
    fn rules_grant_prefix_scoped_rights() {
        let api = sandboxed(
            JanusPolicy::new()
                .allow("/tmp", true, true)
                .allow("/etc", true, false),
        );
        // /tmp: full access.
        let h = api
            .create_file("/tmp/scratch", Access::read_write(), Disposition::CreateNew)
            .expect("tmp rw");
        api.write_file(h, b"ok").expect("write");
        api.close_handle(h).expect("close");
        // /etc: read-only.
        let h = api
            .create_file(
                "/etc/passwd",
                Access::read_only(),
                Disposition::OpenExisting,
            )
            .expect("etc ro");
        api.close_handle(h).expect("close");
        assert_eq!(
            api.create_file(
                "/etc/passwd",
                Access::read_write(),
                Disposition::OpenExisting
            ),
            Err(Win32Error::AccessDenied)
        );
        // Everything else: denied.
        assert_eq!(
            api.create_file(
                "/home/secret",
                Access::read_only(),
                Disposition::OpenExisting
            ),
            Err(Win32Error::AccessDenied)
        );
    }

    #[test]
    fn namespace_operations_are_policy_checked() {
        let api = sandboxed(
            JanusPolicy::new()
                .allow("/tmp", true, true)
                .allow("/etc", true, false),
        );
        assert_eq!(
            api.delete_file("/etc/passwd"),
            Err(Win32Error::AccessDenied)
        );
        api.copy_file("/etc/passwd", "/tmp/copy")
            .expect("read + write allowed");
        assert_eq!(
            api.copy_file("/tmp/copy", "/etc/clone"),
            Err(Win32Error::AccessDenied),
            "write into /etc denied"
        );
        assert_eq!(
            api.move_file("/etc/passwd", "/tmp/moved"),
            Err(Win32Error::AccessDenied),
            "moving out requires write on the source"
        );
    }
}
