//! Property tests for the wire codec: arbitrary typed sequences
//! round-trip, and arbitrary garbage never panics the decoder.

use afs_net::{WireReader, WireWriter};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    U32(u32),
    U64(u64),
    I64(i64),
    Bool(bool),
    Bytes(Vec<u8>),
    Str(String),
}

fn field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<i64>().prop_map(Field::I64),
        any::<bool>().prop_map(Field::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
        "[a-zA-Z0-9 éü€]{0,24}".prop_map(Field::Str),
    ]
}

proptest! {
    #[test]
    fn typed_sequences_roundtrip(fields in proptest::collection::vec(field(), 0..24)) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.u8(*v); }
                Field::U32(v) => { w.u32(*v); }
                Field::U64(v) => { w.u64(*v); }
                Field::I64(v) => { w.i64(*v); }
                Field::Bool(v) => { w.bool(*v); }
                Field::Bytes(v) => { w.bytes(v); }
                Field::Str(v) => { w.str(v); }
            }
        }
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(r.u8().expect("u8"), *v),
                Field::U32(v) => prop_assert_eq!(r.u32().expect("u32"), *v),
                Field::U64(v) => prop_assert_eq!(r.u64().expect("u64"), *v),
                Field::I64(v) => prop_assert_eq!(r.i64().expect("i64"), *v),
                Field::Bool(v) => prop_assert_eq!(r.bool().expect("bool"), *v),
                Field::Bytes(v) => prop_assert_eq!(r.bytes().expect("bytes"), v.as_slice()),
                Field::Str(v) => prop_assert_eq!(r.str().expect("str"), v.as_str()),
            }
        }
        r.finish().expect("fully consumed");
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Decode garbage as every type in turn; errors are fine, panics
        // are not.
        let mut r = WireReader::new(&bytes);
        let _ = r.u8();
        let _ = r.u32();
        let _ = r.u64();
        let _ = r.bool();
        let _ = r.bytes();
        let _ = r.str();
        let _ = r.seq();
        let _ = r.remaining();
    }
}
