//! The network fabric: service registry, RPC/cast calls, cost accounting,
//! and fault injection.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use afs_sim::{Cost, CostModel};

use crate::{NetError, Result};

/// A remote information source: receives a request payload, returns a
/// response payload. Implementations live in `afs-remote`.
pub trait Service: Send + Sync {
    /// Handles one request.
    ///
    /// # Errors
    ///
    /// Application-level rejections surface as [`NetError::Rejected`].
    fn handle(&self, request: &[u8]) -> Result<Vec<u8>>;

    /// Handles a one-way message (default: same as `handle`, response
    /// discarded).
    fn handle_cast(&self, request: &[u8]) {
        let _ = self.handle(request);
    }
}

/// Deterministic fault injection for one service.
#[derive(Debug, Default)]
struct Faults {
    /// Drop the next N messages (rpc or cast).
    drop_next: AtomicU64,
    /// While `true`, the service is unreachable.
    partitioned: Mutex<bool>,
}

/// Handle for configuring faults against one service.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    service: String,
    faults: Arc<Faults>,
}

impl FaultPlan {
    /// Drops the next `n` messages sent to the service.
    pub fn drop_next(&self, n: u64) {
        self.faults.drop_next.store(n, Ordering::SeqCst);
    }

    /// Partitions the service away (or heals it).
    pub fn set_partitioned(&self, partitioned: bool) {
        *self.faults.partitioned.lock() = partitioned;
    }

    /// The service this plan applies to.
    pub fn service(&self) -> &str {
        &self.service
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Completed request/response calls.
    pub rpcs: u64,
    /// Fire-and-forget messages delivered.
    pub casts: u64,
    /// Total request bytes accepted.
    pub bytes_sent: u64,
    /// Total response bytes returned.
    pub bytes_received: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
}

#[derive(Default)]
struct Registry {
    services: HashMap<String, (Arc<dyn Service>, Arc<Faults>)>,
}

/// The simulated network connecting sentinels to remote information
/// sources. Cloning is cheap; clones share the registry and statistics.
#[derive(Clone)]
pub struct Network {
    model: CostModel,
    registry: Arc<RwLock<Registry>>,
    rpcs: Arc<AtomicU64>,
    casts: Arc<AtomicU64>,
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network charging to `model`.
    pub fn new(model: CostModel) -> Self {
        Network {
            model,
            registry: Arc::new(RwLock::new(Registry::default())),
            rpcs: Arc::new(AtomicU64::new(0)),
            casts: Arc::new(AtomicU64::new(0)),
            bytes_sent: Arc::new(AtomicU64::new(0)),
            bytes_received: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cost model traffic is charged against.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Registers (or replaces) a service under `name`, returning the fault
    /// plan for it.
    pub fn register(&self, name: &str, service: Arc<dyn Service>) -> FaultPlan {
        let faults = Arc::new(Faults::default());
        self.registry
            .write()
            .services
            .insert(name.to_owned(), (service, Arc::clone(&faults)));
        FaultPlan {
            service: name.to_owned(),
            faults,
        }
    }

    /// Removes a service.
    pub fn unregister(&self, name: &str) {
        self.registry.write().services.remove(name);
    }

    /// Names of registered services, sorted.
    pub fn services(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry.read().services.keys().cloned().collect();
        names.sort();
        names
    }

    fn lookup(&self, name: &str) -> Result<(Arc<dyn Service>, Arc<Faults>)> {
        self.registry
            .read()
            .services
            .get(name)
            .map(|(s, f)| (Arc::clone(s), Arc::clone(f)))
            .ok_or_else(|| NetError::ServiceNotFound(name.to_owned()))
    }

    fn check_faults(&self, name: &str, faults: &Faults) -> Result<()> {
        if *faults.partitioned.lock() {
            return Err(NetError::Partitioned(name.to_owned()));
        }
        // Atomically consume one drop token if any remain.
        let mut current = faults.drop_next.load(Ordering::SeqCst);
        while current > 0 {
            match faults.drop_next.compare_exchange(
                current,
                current - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return Err(NetError::Dropped(name.to_owned()));
                }
                Err(actual) => current = actual,
            }
        }
        Ok(())
    }

    /// Synchronous request/response to a service.
    ///
    /// Charged as: request bytes out + one round trip + response bytes
    /// back — the read critical path of Figure 5 path 1.
    ///
    /// # Errors
    ///
    /// [`NetError::ServiceNotFound`], fault-injection errors, or whatever
    /// the service rejects with.
    pub fn rpc(&self, service: &str, request: &[u8]) -> Result<Vec<u8>> {
        let (svc, faults) = self.lookup(service)?;
        self.check_faults(service, &faults)?;
        self.model.charge(Cost::NetBytes {
            bytes: request.len(),
        });
        self.model.charge(Cost::NetRoundTrip);
        let response = svc.handle(request)?;
        self.model.charge(Cost::NetBytes {
            bytes: response.len(),
        });
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(response.len() as u64, Ordering::Relaxed);
        Ok(response)
    }

    /// Fire-and-forget message to a service: charged only the outbound
    /// per-byte streaming cost, no round trip ("writes are issued without
    /// waiting for their completion", §6).
    ///
    /// # Errors
    ///
    /// [`NetError::ServiceNotFound`] and fault-injection errors; delivery
    /// itself cannot fail.
    pub fn cast(&self, service: &str, request: &[u8]) -> Result<()> {
        let (svc, faults) = self.lookup(service)?;
        self.check_faults(service, &faults)?;
        self.model.charge(Cost::NetBytes {
            bytes: request.len(),
        });
        svc.handle_cast(request);
        self.casts.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Copies out aggregate statistics.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            rpcs: self.rpcs.load(Ordering::Relaxed),
            casts: self.casts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afs_sim::{clock, HardwareProfile};

    /// Echo service used by the tests.
    struct Echo;

    impl Service for Echo {
        fn handle(&self, request: &[u8]) -> Result<Vec<u8>> {
            Ok(request.to_vec())
        }
    }

    #[test]
    fn rpc_reaches_service_and_counts() {
        let net = Network::new(CostModel::free());
        net.register("echo", Arc::new(Echo));
        let out = net.rpc("echo", b"ping").expect("rpc");
        assert_eq!(out, b"ping");
        let stats = net.stats();
        assert_eq!(stats.rpcs, 1);
        assert_eq!(stats.bytes_sent, 4);
        assert_eq!(stats.bytes_received, 4);
    }

    #[test]
    fn unknown_service_errors() {
        let net = Network::new(CostModel::free());
        assert!(matches!(
            net.rpc("ghost", b""),
            Err(NetError::ServiceNotFound(_))
        ));
        assert!(matches!(
            net.cast("ghost", b""),
            Err(NetError::ServiceNotFound(_))
        ));
    }

    #[test]
    fn rpc_charges_round_trip_and_bytes() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        let net = Network::new(model.clone());
        net.register("echo", Arc::new(Echo));
        let _g = clock::install(0);
        net.rpc("echo", &[0u8; 1000]).expect("rpc");
        let expected =
            model.price(Cost::NetRoundTrip) + 2 * model.price(Cost::NetBytes { bytes: 1000 });
        assert_eq!(clock::now(), expected);
    }

    #[test]
    fn cast_charges_bandwidth_only() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        let net = Network::new(model.clone());
        net.register("echo", Arc::new(Echo));
        let _g = clock::install(0);
        net.cast("echo", &[0u8; 1000]).expect("cast");
        assert_eq!(clock::now(), model.price(Cost::NetBytes { bytes: 1000 }));
        assert_eq!(net.stats().casts, 1);
    }

    #[test]
    fn drop_next_loses_exactly_n_messages() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.drop_next(2);
        assert!(matches!(net.rpc("echo", b"1"), Err(NetError::Dropped(_))));
        assert!(matches!(net.cast("echo", b"2"), Err(NetError::Dropped(_))));
        assert!(net.rpc("echo", b"3").is_ok());
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn partition_blocks_until_healed() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.set_partitioned(true);
        assert!(matches!(
            net.rpc("echo", b"x"),
            Err(NetError::Partitioned(_))
        ));
        plan.set_partitioned(false);
        assert!(net.rpc("echo", b"x").is_ok());
    }

    #[test]
    fn services_listing_is_sorted() {
        let net = Network::new(CostModel::free());
        net.register("zeta", Arc::new(Echo));
        net.register("alpha", Arc::new(Echo));
        assert_eq!(net.services(), vec!["alpha".to_owned(), "zeta".to_owned()]);
        net.unregister("alpha");
        assert_eq!(net.services(), vec!["zeta".to_owned()]);
    }

    #[test]
    fn clones_share_registry() {
        let net = Network::new(CostModel::free());
        let clone = net.clone();
        net.register("echo", Arc::new(Echo));
        assert!(clone.rpc("echo", b"hi").is_ok());
        assert_eq!(net.stats().rpcs, 1);
    }
}
