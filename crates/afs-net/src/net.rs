//! The network fabric: service registry, RPC/cast calls, cost accounting,
//! fault injection, and the reliability recovery loop.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use afs_sim::{clock, Cost, CostModel, SimRng};
use afs_telemetry::{flight_note, flight_trigger, intern, now_ns, retry_span_noted};

use crate::reliability::{
    CircuitBreaker, ReliabilityPolicy, ReliabilitySnapshot, ReliabilityStats,
};
use crate::{NetError, Result};

/// A remote information source: receives a request payload, returns a
/// response payload. Implementations live in `afs-remote`.
pub trait Service: Send + Sync {
    /// Handles one request.
    ///
    /// # Errors
    ///
    /// Application-level rejections surface as [`NetError::Rejected`].
    fn handle(&self, request: &[u8]) -> Result<Vec<u8>>;

    /// Handles a one-way message (default: same as `handle`, response
    /// discarded).
    fn handle_cast(&self, request: &[u8]) {
        let _ = self.handle(request);
    }
}

/// Deterministic fault injection for one service.
#[derive(Debug)]
struct Faults {
    /// Drop the next N messages (rpc or cast).
    drop_next: AtomicU64,
    /// Fail the next N messages with [`NetError::Partitioned`], then heal —
    /// a transient outage a retry policy should ride out.
    flaky_next: AtomicU64,
    /// While `true`, the service is unreachable.
    partitioned: Mutex<bool>,
    /// Unreachable while `now_ns()` lies in `[start, end)`. With a virtual
    /// clock installed, retry backoff advances the clock *through* the
    /// window, so a scheduled partition genuinely heals mid-call.
    window: Mutex<Option<(u64, u64)>>,
    /// Base injected latency per message, ns (charged to the caller's
    /// virtual clock).
    latency_ns: AtomicU64,
    /// Uniform jitter added on top of the base latency, ns.
    jitter_ns: AtomicU64,
    /// Probabilistic loss, parts per million.
    loss_ppm: AtomicU64,
    /// Per-service random stream, derived from the network seed and the
    /// service name so services stay independent.
    rng: Mutex<SimRng>,
}

impl Faults {
    fn seeded(seed: u64, name: &str) -> Self {
        Faults {
            drop_next: AtomicU64::new(0),
            flaky_next: AtomicU64::new(0),
            partitioned: Mutex::new(false),
            window: Mutex::new(None),
            latency_ns: AtomicU64::new(0),
            jitter_ns: AtomicU64::new(0),
            loss_ppm: AtomicU64::new(0),
            rng: Mutex::new(SimRng::derive(seed, name)),
        }
    }
}

/// Atomically consumes one token from `counter` if any remain.
fn consume_token(counter: &AtomicU64) -> bool {
    let mut current = counter.load(Ordering::SeqCst);
    while current > 0 {
        match counter.compare_exchange(current, current - 1, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
    false
}

/// Handle for configuring faults against one service.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    service: String,
    faults: Arc<Faults>,
}

impl FaultPlan {
    /// Drops the next `n` messages sent to the service.
    pub fn drop_next(&self, n: u64) {
        self.faults.drop_next.store(n, Ordering::SeqCst);
    }

    /// Fails the next `n` messages with [`NetError::Partitioned`], then
    /// heals on its own — the transient-fault shape retry policies exist
    /// for.
    pub fn flaky(&self, n: u64) {
        self.faults.flaky_next.store(n, Ordering::SeqCst);
    }

    /// Partitions the service away (or heals it).
    pub fn set_partitioned(&self, partitioned: bool) {
        *self.faults.partitioned.lock() = partitioned;
    }

    /// Schedules a partition over the virtual-time interval
    /// `[start_ns, end_ns)`; the service is unreachable while the caller's
    /// `now_ns()` falls inside it.
    pub fn partition_window(&self, start_ns: u64, end_ns: u64) {
        *self.faults.window.lock() = Some((start_ns, end_ns));
    }

    /// Charges every message `base_ns` of latency plus a uniform jitter in
    /// `[0, jitter_ns]`, drawn from the service's deterministic stream.
    pub fn latency(&self, base_ns: u64, jitter_ns: u64) {
        self.faults.latency_ns.store(base_ns, Ordering::SeqCst);
        self.faults.jitter_ns.store(jitter_ns, Ordering::SeqCst);
    }

    /// Loses messages with probability `ppm` parts per million, rolled on
    /// the service's deterministic stream.
    pub fn loss_ppm(&self, ppm: u64) {
        self.faults
            .loss_ppm
            .store(ppm.min(1_000_000), Ordering::SeqCst);
    }

    /// Clears every configured fault (the RNG stream keeps its position).
    pub fn clear(&self) {
        self.faults.drop_next.store(0, Ordering::SeqCst);
        self.faults.flaky_next.store(0, Ordering::SeqCst);
        *self.faults.partitioned.lock() = false;
        *self.faults.window.lock() = None;
        self.faults.latency_ns.store(0, Ordering::SeqCst);
        self.faults.jitter_ns.store(0, Ordering::SeqCst);
        self.faults.loss_ppm.store(0, Ordering::SeqCst);
    }

    /// The service this plan applies to.
    pub fn service(&self) -> &str {
        &self.service
    }

    /// One-line summary of the configured faults, for diagnostics.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if *self.faults.partitioned.lock() {
            parts.push("partitioned".to_owned());
        }
        if let Some((s, e)) = *self.faults.window.lock() {
            parts.push(format!("window=[{s},{e})ns"));
        }
        let drop = self.faults.drop_next.load(Ordering::SeqCst);
        if drop > 0 {
            parts.push(format!("drop_next={drop}"));
        }
        let flaky = self.faults.flaky_next.load(Ordering::SeqCst);
        if flaky > 0 {
            parts.push(format!("flaky={flaky}"));
        }
        let lat = self.faults.latency_ns.load(Ordering::SeqCst);
        let jit = self.faults.jitter_ns.load(Ordering::SeqCst);
        if lat > 0 || jit > 0 {
            parts.push(format!("latency={lat}ns±{jit}"));
        }
        let loss = self.faults.loss_ppm.load(Ordering::SeqCst);
        if loss > 0 {
            parts.push(format!("loss={loss}ppm"));
        }
        if parts.is_empty() {
            "healthy".to_owned()
        } else {
            parts.join(" ")
        }
    }
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Completed request/response calls.
    pub rpcs: u64,
    /// Fire-and-forget messages delivered.
    pub casts: u64,
    /// Total request bytes accepted.
    pub bytes_sent: u64,
    /// Total response bytes returned.
    pub bytes_received: u64,
    /// Messages lost to fault injection.
    pub dropped: u64,
}

#[derive(Default)]
struct Registry {
    services: HashMap<String, (Arc<dyn Service>, Arc<Faults>)>,
}

/// Circuit breakers and reliability counters shared by every clone of one
/// network.
#[derive(Default)]
struct ReliabilityShared {
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    stats: ReliabilityStats,
}

/// The simulated network connecting sentinels to remote information
/// sources. Cloning is cheap; clones share the registry and statistics.
///
/// A clone produced by [`Network::with_policy`] additionally runs every
/// `rpc`/`cast` through the reliability loop: retry with deterministic
/// exponential backoff, replica failover, and per-service circuit
/// breaking. Breakers and reliability counters stay shared across all
/// clones, so one sentinel tripping a breaker protects every other caller.
#[derive(Clone)]
pub struct Network {
    model: CostModel,
    registry: Arc<RwLock<Registry>>,
    seed: Arc<AtomicU64>,
    rel: Arc<ReliabilityShared>,
    policy: Option<Arc<ReliabilityPolicy>>,
    rpcs: Arc<AtomicU64>,
    casts: Arc<AtomicU64>,
    bytes_sent: Arc<AtomicU64>,
    bytes_received: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Creates an empty network charging to `model`.
    pub fn new(model: CostModel) -> Self {
        Network {
            model,
            registry: Arc::new(RwLock::new(Registry::default())),
            seed: Arc::new(AtomicU64::new(0)),
            rel: Arc::new(ReliabilityShared::default()),
            policy: None,
            rpcs: Arc::new(AtomicU64::new(0)),
            casts: Arc::new(AtomicU64::new(0)),
            bytes_sent: Arc::new(AtomicU64::new(0)),
            bytes_received: Arc::new(AtomicU64::new(0)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The cost model traffic is charged against.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Sets the seed all per-service fault streams and retry jitter derive
    /// from. Re-seeds the streams of already-registered services, so it can
    /// be called at any point during world construction.
    pub fn set_seed(&self, seed: u64) {
        self.seed.store(seed, Ordering::SeqCst);
        for (name, (_, faults)) in self.registry.read().services.iter() {
            *faults.rng.lock() = SimRng::derive(seed, name);
        }
    }

    /// The current deterministic seed.
    pub fn seed(&self) -> u64 {
        self.seed.load(Ordering::SeqCst)
    }

    /// Registers (or replaces) a service under `name`, returning the fault
    /// plan for it.
    pub fn register(&self, name: &str, service: Arc<dyn Service>) -> FaultPlan {
        let faults = Arc::new(Faults::seeded(self.seed(), name));
        self.registry
            .write()
            .services
            .insert(name.to_owned(), (service, Arc::clone(&faults)));
        FaultPlan {
            service: name.to_owned(),
            faults,
        }
    }

    /// The fault plan of an already-registered service, so tests and tools
    /// can inject faults without re-registering (and thereby resetting) it.
    pub fn plan(&self, name: &str) -> Option<FaultPlan> {
        self.registry
            .read()
            .services
            .get(name)
            .map(|(_, f)| FaultPlan {
                service: name.to_owned(),
                faults: Arc::clone(f),
            })
    }

    /// Removes a service.
    pub fn unregister(&self, name: &str) {
        self.registry.write().services.remove(name);
    }

    /// Names of registered services, sorted.
    pub fn services(&self) -> Vec<String> {
        let mut names: Vec<String> = self.registry.read().services.keys().cloned().collect();
        names.sort();
        names
    }

    /// A clone of this network that runs every call through `policy`:
    /// retry with deterministic backoff, replica failover, and (when
    /// configured) circuit breaking. The registry, statistics, breakers,
    /// and reliability counters remain shared with the original.
    pub fn with_policy(&self, policy: ReliabilityPolicy) -> Network {
        let mut clone = self.clone();
        clone.policy = Some(Arc::new(policy));
        clone
    }

    /// The reliability policy this clone enforces, if any.
    pub fn policy(&self) -> Option<&ReliabilityPolicy> {
        self.policy.as_deref()
    }

    /// Copies out the shared reliability counters.
    pub fn reliability(&self) -> ReliabilitySnapshot {
        self.rel.stats.snapshot()
    }

    /// The live reliability counters, for layers above the transport
    /// (degraded reads, write queueing) to report into.
    pub fn reliability_stats(&self) -> &ReliabilityStats {
        &self.rel.stats
    }

    /// Current circuit-breaker states, sorted by service name.
    pub fn breaker_states(&self) -> Vec<(String, &'static str)> {
        let map = self.rel.breakers.lock();
        let mut states: Vec<(String, &'static str)> = map
            .iter()
            .map(|(name, b)| (name.clone(), b.state_label()))
            .collect();
        states.sort();
        states
    }

    fn lookup(&self, name: &str) -> Result<(Arc<dyn Service>, Arc<Faults>)> {
        self.registry
            .read()
            .services
            .get(name)
            .map(|(s, f)| (Arc::clone(s), Arc::clone(f)))
            .ok_or_else(|| NetError::ServiceNotFound(name.to_owned()))
    }

    fn check_faults(&self, name: &str, faults: &Faults) -> Result<()> {
        let base = faults.latency_ns.load(Ordering::SeqCst);
        let jitter = faults.jitter_ns.load(Ordering::SeqCst);
        if base > 0 || jitter > 0 {
            let extra = if jitter > 0 {
                faults.rng.lock().next_below(jitter + 1)
            } else {
                0
            };
            clock::advance(base.saturating_add(extra));
        }
        if *faults.partitioned.lock() {
            return Err(NetError::Partitioned(name.to_owned()));
        }
        if let Some((start, end)) = *faults.window.lock() {
            let now = now_ns();
            if now >= start && now < end {
                return Err(NetError::Partitioned(name.to_owned()));
            }
        }
        if consume_token(&faults.flaky_next) {
            return Err(NetError::Partitioned(name.to_owned()));
        }
        if consume_token(&faults.drop_next) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Dropped(name.to_owned()));
        }
        let ppm = faults.loss_ppm.load(Ordering::SeqCst);
        if ppm > 0 && faults.rng.lock().roll_ppm(ppm) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return Err(NetError::Dropped(name.to_owned()));
        }
        Ok(())
    }

    /// Whether an error is worth retrying / failing over: transient
    /// transport faults, or a missing service (a replica may hold the
    /// data). Application-level rejections and codec errors are final.
    fn retryable(err: &NetError) -> bool {
        matches!(
            err,
            NetError::Dropped(_) | NetError::Partitioned(_) | NetError::ServiceNotFound(_)
        )
    }

    fn breaker_allow(&self, policy: &ReliabilityPolicy, name: &str) -> bool {
        let Some(cfg) = &policy.breaker else {
            return true;
        };
        let mut map = self.rel.breakers.lock();
        map.entry(name.to_owned())
            .or_insert_with(|| CircuitBreaker::new(cfg.clone()))
            .allow(now_ns())
    }

    fn breaker_success(&self, policy: &ReliabilityPolicy, name: &str) {
        if policy.breaker.is_none() {
            return;
        }
        if let Some(b) = self.rel.breakers.lock().get_mut(name) {
            b.on_success();
        }
    }

    fn breaker_failure(&self, policy: &ReliabilityPolicy, name: &str) {
        let Some(cfg) = &policy.breaker else {
            return;
        };
        let mut map = self.rel.breakers.lock();
        let tripped = map
            .entry(name.to_owned())
            .or_insert_with(|| CircuitBreaker::new(cfg.clone()))
            .on_failure(now_ns());
        if tripped {
            self.rel.stats.note_breaker_trip();
            drop(map);
            // A breaker opening is a post-mortem moment: freeze the recent
            // spans and event rings while the failing op is still in
            // flight, so the bundle contains its causal trace.
            flight_trigger("breaker_open", format!("service={name}"));
        }
    }

    /// The recovery loop: tries the primary then each replica, breaker
    /// permitting; between rounds waits out an exponential backoff with
    /// deterministic jitter. Backoff consumes *virtual* time, so scheduled
    /// partitions ([`FaultPlan::partition_window`]) heal while we wait.
    fn call_reliable<T>(
        &self,
        policy: &ReliabilityPolicy,
        service: &str,
        mut call: impl FnMut(&str) -> Result<T>,
    ) -> Result<T> {
        let mut candidates: Vec<&str> = Vec::with_capacity(1 + policy.replicas.len());
        candidates.push(service);
        for replica in &policy.replicas {
            if replica != service && !candidates.contains(&replica.as_str()) {
                candidates.push(replica);
            }
        }
        let attempts = policy.retry.attempts.max(1);
        let start = now_ns();
        let mut jitter_rng = SimRng::derive(self.seed(), service);
        let mut last_err = None;
        // The retry span is opened lazily so the happy path stays span-free.
        let mut span_opened = false;
        let mut span = None;
        for attempt in 0..attempts {
            for candidate in &candidates {
                if !self.breaker_allow(policy, candidate) {
                    self.rel.stats.note_breaker_rejection();
                    // The local refusal is part of the op's causal story:
                    // an annotated zero-work child span records it in the
                    // trace.
                    drop(retry_span_noted("breaker-reject", "cause=breaker_open"));
                    flight_note("net", format!("breaker_reject service={candidate}"));
                    last_err = Some(NetError::CircuitOpen((*candidate).to_owned()));
                    continue;
                }
                match call(candidate) {
                    Ok(value) => {
                        self.breaker_success(policy, candidate);
                        if *candidate != service {
                            self.rel.stats.note_failover();
                            let _sp = retry_span_noted(
                                "failover",
                                intern(&format!("cause=failover replica={candidate}")),
                            );
                            flight_note(
                                "net",
                                format!("failover service={service} replica={candidate}"),
                            );
                        }
                        return Ok(value);
                    }
                    Err(err) if Self::retryable(&err) => {
                        self.breaker_failure(policy, candidate);
                        last_err = Some(err);
                    }
                    Err(err) => {
                        // An application-level rejection means the service
                        // answered: the transport is healthy, so a half-open
                        // probe resolves (and the failure streak resets)
                        // rather than staying in flight forever.
                        self.breaker_success(policy, candidate);
                        return Err(err);
                    }
                }
            }
            if attempt + 1 < attempts {
                let shift = attempt.min(20);
                let backoff = policy
                    .retry
                    .base_backoff_ns
                    .saturating_mul(1u64 << shift)
                    .min(policy.retry.max_backoff_ns);
                let wait = backoff.saturating_add(jitter_rng.next_below(backoff / 2 + 1));
                let elapsed = now_ns().saturating_sub(start);
                if elapsed.saturating_add(wait) > policy.retry.deadline_ns {
                    break;
                }
                if !span_opened {
                    span_opened = true;
                    span = retry_span_noted("retry", "cause=backoff");
                }
                clock::advance(wait);
                self.rel.stats.note_retry();
            }
        }
        drop(span);
        Err(last_err.unwrap_or_else(|| NetError::ServiceNotFound(service.to_owned())))
    }

    fn rpc_once(&self, service: &str, request: &[u8]) -> Result<Vec<u8>> {
        let (svc, faults) = self.lookup(service)?;
        self.check_faults(service, &faults)?;
        self.model.charge(Cost::NetBytes {
            bytes: request.len(),
        });
        self.model.charge(Cost::NetRoundTrip);
        let response = svc.handle(request)?;
        self.model.charge(Cost::NetBytes {
            bytes: response.len(),
        });
        self.rpcs.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(response.len() as u64, Ordering::Relaxed);
        Ok(response)
    }

    fn cast_once(&self, service: &str, request: &[u8]) -> Result<()> {
        let (svc, faults) = self.lookup(service)?;
        self.check_faults(service, &faults)?;
        self.model.charge(Cost::NetBytes {
            bytes: request.len(),
        });
        svc.handle_cast(request);
        self.casts.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent
            .fetch_add(request.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Synchronous request/response to a service.
    ///
    /// Charged as: request bytes out + one round trip + response bytes
    /// back — the read critical path of Figure 5 path 1. On a
    /// policy-carrying clone ([`Network::with_policy`]) transient failures
    /// are retried and failed over per the policy.
    ///
    /// # Errors
    ///
    /// [`NetError::ServiceNotFound`], fault-injection errors,
    /// [`NetError::CircuitOpen`] when the breaker refuses the call, or
    /// whatever the service rejects with.
    pub fn rpc(&self, service: &str, request: &[u8]) -> Result<Vec<u8>> {
        match self.policy.clone() {
            Some(policy) => self.call_reliable(&policy, service, |candidate| {
                self.rpc_once(candidate, request)
            }),
            None => self.rpc_once(service, request),
        }
    }

    /// Fire-and-forget message to a service: charged only the outbound
    /// per-byte streaming cost, no round trip ("writes are issued without
    /// waiting for their completion", §6). On a policy-carrying clone
    /// transient failures are retried and failed over per the policy.
    ///
    /// # Errors
    ///
    /// [`NetError::ServiceNotFound`], fault-injection errors, and
    /// [`NetError::CircuitOpen`]; delivery itself cannot fail.
    pub fn cast(&self, service: &str, request: &[u8]) -> Result<()> {
        match self.policy.clone() {
            Some(policy) => self.call_reliable(&policy, service, |candidate| {
                self.cast_once(candidate, request)
            }),
            None => self.cast_once(service, request),
        }
    }

    /// Copies out aggregate statistics.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            rpcs: self.rpcs.load(Ordering::Relaxed),
            casts: self.casts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reliability::{BreakerConfig, RetryPolicy};
    use afs_sim::{clock, HardwareProfile};

    /// Echo service used by the tests.
    struct Echo;

    impl Service for Echo {
        fn handle(&self, request: &[u8]) -> Result<Vec<u8>> {
            Ok(request.to_vec())
        }
    }

    /// Service answering with a fixed tag, to tell replicas apart.
    struct Tagged(&'static str);

    impl Service for Tagged {
        fn handle(&self, _request: &[u8]) -> Result<Vec<u8>> {
            Ok(self.0.as_bytes().to_vec())
        }
    }

    #[test]
    fn rpc_reaches_service_and_counts() {
        let net = Network::new(CostModel::free());
        net.register("echo", Arc::new(Echo));
        let out = net.rpc("echo", b"ping").expect("rpc");
        assert_eq!(out, b"ping");
        let stats = net.stats();
        assert_eq!(stats.rpcs, 1);
        assert_eq!(stats.bytes_sent, 4);
        assert_eq!(stats.bytes_received, 4);
    }

    #[test]
    fn unknown_service_errors() {
        let net = Network::new(CostModel::free());
        assert!(matches!(
            net.rpc("ghost", b""),
            Err(NetError::ServiceNotFound(_))
        ));
        assert!(matches!(
            net.cast("ghost", b""),
            Err(NetError::ServiceNotFound(_))
        ));
    }

    #[test]
    fn rpc_charges_round_trip_and_bytes() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        let net = Network::new(model.clone());
        net.register("echo", Arc::new(Echo));
        let _g = clock::install(0);
        net.rpc("echo", &[0u8; 1000]).expect("rpc");
        let expected =
            model.price(Cost::NetRoundTrip) + 2 * model.price(Cost::NetBytes { bytes: 1000 });
        assert_eq!(clock::now(), expected);
    }

    #[test]
    fn cast_charges_bandwidth_only() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        let net = Network::new(model.clone());
        net.register("echo", Arc::new(Echo));
        let _g = clock::install(0);
        net.cast("echo", &[0u8; 1000]).expect("cast");
        assert_eq!(clock::now(), model.price(Cost::NetBytes { bytes: 1000 }));
        assert_eq!(net.stats().casts, 1);
    }

    #[test]
    fn drop_next_loses_exactly_n_messages() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.drop_next(2);
        assert!(matches!(net.rpc("echo", b"1"), Err(NetError::Dropped(_))));
        assert!(matches!(net.cast("echo", b"2"), Err(NetError::Dropped(_))));
        assert!(net.rpc("echo", b"3").is_ok());
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn partition_blocks_until_healed() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.set_partitioned(true);
        assert!(matches!(
            net.rpc("echo", b"x"),
            Err(NetError::Partitioned(_))
        ));
        plan.set_partitioned(false);
        assert!(net.rpc("echo", b"x").is_ok());
    }

    #[test]
    fn services_listing_is_sorted() {
        let net = Network::new(CostModel::free());
        net.register("zeta", Arc::new(Echo));
        net.register("alpha", Arc::new(Echo));
        assert_eq!(net.services(), vec!["alpha".to_owned(), "zeta".to_owned()]);
        net.unregister("alpha");
        assert_eq!(net.services(), vec!["zeta".to_owned()]);
    }

    #[test]
    fn clones_share_registry() {
        let net = Network::new(CostModel::free());
        let clone = net.clone();
        net.register("echo", Arc::new(Echo));
        assert!(clone.rpc("echo", b"hi").is_ok());
        assert_eq!(net.stats().rpcs, 1);
    }

    #[test]
    fn plan_looks_up_registered_services() {
        let net = Network::new(CostModel::free());
        net.register("echo", Arc::new(Echo));
        assert!(net.plan("ghost").is_none());
        let plan = net.plan("echo").expect("plan");
        plan.drop_next(1);
        assert!(matches!(net.rpc("echo", b"x"), Err(NetError::Dropped(_))));
        assert!(net.rpc("echo", b"x").is_ok());
    }

    #[test]
    fn flaky_fails_n_times_then_heals() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.flaky(2);
        assert!(matches!(
            net.rpc("echo", b"1"),
            Err(NetError::Partitioned(_))
        ));
        assert!(matches!(
            net.rpc("echo", b"2"),
            Err(NetError::Partitioned(_))
        ));
        assert!(net.rpc("echo", b"3").is_ok());
        // Flaky outages are partitions, not message loss.
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn latency_advances_the_virtual_clock() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.latency(1_000, 0);
        let _g = clock::install(0);
        net.rpc("echo", b"x").expect("rpc");
        assert_eq!(clock::now(), 1_000);
        plan.latency(1_000, 500);
        net.rpc("echo", b"x").expect("rpc");
        let second = clock::now() - 1_000;
        assert!(
            (1_000..=1_500).contains(&second),
            "jitter in range: {second}"
        );
    }

    #[test]
    fn loss_ppm_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let net = Network::new(CostModel::free());
            net.set_seed(seed);
            let plan = net.register("echo", Arc::new(Echo));
            plan.loss_ppm(500_000);
            (0..100).filter(|_| net.rpc("echo", b"x").is_err()).count()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same losses");
        assert!(a > 10 && a < 90, "about half lost: {a}");
    }

    #[test]
    fn partition_window_blocks_only_inside_the_window() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        plan.partition_window(1_000, 2_000);
        let _g = clock::install(0);
        assert!(net.rpc("echo", b"x").is_ok(), "before the window");
        clock::advance(1_500);
        assert!(matches!(
            net.rpc("echo", b"x"),
            Err(NetError::Partitioned(_))
        ));
        clock::advance(1_000);
        assert!(net.rpc("echo", b"x").is_ok(), "after the window");
    }

    #[test]
    fn policy_retries_through_a_flaky_service() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        let reliable = net.with_policy(ReliabilityPolicy::default());
        plan.flaky(2);
        let _g = clock::install(0);
        assert_eq!(reliable.rpc("echo", b"hi").expect("recovered"), b"hi");
        assert!(net.reliability().retries >= 1, "backoff rounds counted");
        assert!(clock::now() > 0, "backoff consumed virtual time");
    }

    #[test]
    fn retry_exhaustion_returns_the_last_error() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        let reliable = net.with_policy(ReliabilityPolicy::default());
        plan.set_partitioned(true);
        assert!(matches!(
            reliable.rpc("echo", b"x"),
            Err(NetError::Partitioned(_))
        ));
        assert!(net.reliability().retries >= 1);
    }

    #[test]
    fn rejections_are_not_retried() {
        struct Reject;
        impl Service for Reject {
            fn handle(&self, _request: &[u8]) -> Result<Vec<u8>> {
                Err(NetError::Rejected("no".to_owned()))
            }
        }
        let net = Network::new(CostModel::free());
        net.register("svc", Arc::new(Reject));
        let reliable = net.with_policy(ReliabilityPolicy::default());
        assert!(matches!(
            reliable.rpc("svc", b"x"),
            Err(NetError::Rejected(_))
        ));
        assert_eq!(net.reliability().retries, 0, "final errors return at once");
    }

    #[test]
    fn failover_prefers_the_first_healthy_replica() {
        let net = Network::new(CostModel::free());
        let plan = net.register("files", Arc::new(Tagged("primary")));
        net.register("files-a", Arc::new(Tagged("a")));
        net.register("files-b", Arc::new(Tagged("b")));
        let reliable = net.with_policy(ReliabilityPolicy {
            replicas: vec!["files-a".to_owned(), "files-b".to_owned()],
            ..ReliabilityPolicy::default()
        });
        assert_eq!(reliable.rpc("files", b"x").expect("rpc"), b"primary");
        assert_eq!(net.reliability().failovers, 0);
        plan.set_partitioned(true);
        assert_eq!(reliable.rpc("files", b"x").expect("failover"), b"a");
        assert_eq!(net.reliability().failovers, 1);
    }

    #[test]
    fn breaker_trips_open_and_rejects_locally() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        let reliable = net.with_policy(ReliabilityPolicy {
            retry: RetryPolicy {
                attempts: 1,
                ..RetryPolicy::default()
            },
            breaker: Some(BreakerConfig {
                threshold: 2,
                cooldown_ns: u64::MAX,
            }),
            ..ReliabilityPolicy::default()
        });
        plan.set_partitioned(true);
        assert!(reliable.rpc("echo", b"x").is_err());
        assert!(reliable.rpc("echo", b"x").is_err());
        let snap = net.reliability();
        assert_eq!(snap.breaker_trips, 1);
        // The breaker is now open: the next call never reaches the wire.
        let rpcs_before = net.stats().rpcs;
        assert!(matches!(
            reliable.rpc("echo", b"x"),
            Err(NetError::CircuitOpen(_))
        ));
        assert_eq!(net.stats().rpcs, rpcs_before);
        assert!(net.reliability().breaker_rejections >= 1);
        assert_eq!(
            net.breaker_states(),
            vec![("echo".to_owned(), "open")],
            "clones share breaker state"
        );
    }

    #[test]
    fn breaker_halfopen_probe_closes_on_success() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        let reliable = net.with_policy(ReliabilityPolicy {
            retry: RetryPolicy {
                attempts: 1,
                ..RetryPolicy::default()
            },
            breaker: Some(BreakerConfig {
                threshold: 1,
                cooldown_ns: 1_000,
            }),
            ..ReliabilityPolicy::default()
        });
        let _g = clock::install(0);
        plan.set_partitioned(true);
        assert!(reliable.rpc("echo", b"x").is_err());
        assert_eq!(net.breaker_states(), vec![("echo".to_owned(), "open")]);
        plan.set_partitioned(false);
        clock::advance(2_000);
        assert!(reliable.rpc("echo", b"x").is_ok(), "half-open probe");
        assert_eq!(net.breaker_states(), vec![("echo".to_owned(), "closed")]);
    }

    #[test]
    fn describe_reports_configured_faults() {
        let net = Network::new(CostModel::free());
        let plan = net.register("echo", Arc::new(Echo));
        assert_eq!(plan.describe(), "healthy");
        plan.set_partitioned(true);
        plan.latency(10, 2);
        assert!(plan.describe().contains("partitioned"));
        assert!(plan.describe().contains("latency=10ns±2"));
        plan.clear();
        assert_eq!(plan.describe(), "healthy");
    }
}
