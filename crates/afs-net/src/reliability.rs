//! The reliability layer: retry policies, per-service circuit breakers,
//! replica failover, and the shared counters the telemetry exports.
//!
//! The paper's sentinels mediate between a legacy application and remote
//! services; the related middleware literature (fault-tolerant dispatch to
//! legacy workers, confined IPC) argues the mediation layer is the right
//! place to absorb faults. Here that layer is the [`Network`] itself: a
//! sentinel whose spec carries `retry`/`replicas`/`breaker.*` keys gets a
//! policy-carrying network clone ([`Network::with_policy`]), and every
//! remote call it makes — through any typed client — runs the recovery
//! loop in `net.rs` governed by the types in this module.
//!
//! [`Network`]: crate::Network

use std::sync::atomic::{AtomicU64, Ordering};

/// How a failed remote call is retried.
///
/// Backoff is exponential from [`RetryPolicy::base_backoff_ns`] up to
/// [`RetryPolicy::max_backoff_ns`], plus deterministic jitter drawn from
/// the world's seeded RNG. Backoff consumes *virtual* time (the per-thread
/// [`afs_sim::clock`]), so a partition scheduled to heal at a virtual
/// instant genuinely heals while the caller "waits".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per candidate round (1 = no retry).
    pub attempts: u32,
    /// Give up once the next backoff would pass this many ns after the
    /// first attempt started.
    pub deadline_ns: u64,
    /// First backoff duration, ns.
    pub base_backoff_ns: u64,
    /// Backoff cap, ns.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            deadline_ns: 1_000_000_000, // 1 virtual second
            base_backoff_ns: 100_000,   // 100 µs
            max_backoff_ns: 10_000_000, // 10 ms
        }
    }
}

/// Circuit-breaker thresholds for one policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long an open breaker refuses calls before allowing a
    /// half-open probe, ns.
    pub cooldown_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            cooldown_ns: 100_000_000, // 100 ms
        }
    }
}

/// The full reliability policy one sentinel's network clone enforces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliabilityPolicy {
    /// Retry schedule.
    pub retry: RetryPolicy,
    /// Fallback services tried, in order, when the requested one fails.
    pub replicas: Vec<String>,
    /// Circuit breaker, if enabled.
    pub breaker: Option<BreakerConfig>,
}

/// One service's circuit breaker: closed → open → half-open → closed.
///
/// * **closed** — calls flow; consecutive failures count up.
/// * **open** — calls are refused locally ([`crate::NetError::CircuitOpen`])
///   until the cooldown elapses.
/// * **half-open** — exactly **one** probe is allowed through; while it is
///   in flight every other caller is refused, so a recovering service never
///   sees a thundering herd the instant the cooldown elapses. The probe's
///   success closes the breaker, its failure re-opens it. A probe that
///   stays unresolved for a full cooldown is presumed lost and a fresh
///   probe is admitted — a vanished caller cannot wedge the breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed {
        failures: u32,
    },
    Open {
        until_ns: u64,
    },
    /// One probe is in flight, admitted at `probe_started_ns`; further
    /// callers are refused until `on_success`/`on_failure` resolves it.
    /// A probe silent for a full cooldown is presumed lost (its caller
    /// panicked, or bypassed the resolve contract) and a fresh probe is
    /// admitted, so a wedged probe can never refuse callers forever.
    HalfOpen {
        probe_started_ns: u64,
    },
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed { failures: 0 },
        }
    }

    /// Whether a call may proceed at time `now_ns`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits **one**
    /// probe; until that probe resolves every further caller is refused.
    /// A probe unresolved for a full cooldown is presumed lost and its
    /// slot re-armed, so a caller that dies without resolving cannot
    /// wedge the breaker permanently.
    pub fn allow(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed { .. } => true,
            BreakerState::HalfOpen { probe_started_ns } => {
                if now_ns < probe_started_ns.saturating_add(self.config.cooldown_ns) {
                    return false;
                }
                self.state = BreakerState::HalfOpen {
                    probe_started_ns: now_ns,
                };
                true
            }
            BreakerState::Open { until_ns } => {
                if now_ns >= until_ns {
                    self.state = BreakerState::HalfOpen {
                        probe_started_ns: now_ns,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: any state closes.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed { failures: 0 };
    }

    /// Records a failed call at `now_ns`. Returns `true` when this failure
    /// trips the breaker open (for the trip counter).
    pub fn on_failure(&mut self, now_ns: u64) -> bool {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.threshold {
                    self.state = BreakerState::Open {
                        until_ns: now_ns.saturating_add(self.config.cooldown_ns),
                    };
                    true
                } else {
                    self.state = BreakerState::Closed { failures };
                    false
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    until_ns: now_ns.saturating_add(self.config.cooldown_ns),
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Human-readable state name: `"closed"`, `"open"`, or `"half-open"`.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen { .. } => "half-open",
        }
    }
}

/// Shared reliability counters — one set per [`crate::Network`] (clones
/// share it), exported to Prometheus by the world's metrics collector.
#[derive(Debug, Default)]
pub struct ReliabilityStats {
    retries: AtomicU64,
    failovers: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_rejections: AtomicU64,
    degraded_reads: AtomicU64,
    queued_writes: AtomicU64,
    replayed_writes: AtomicU64,
}

/// A copied-out view of [`ReliabilityStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilitySnapshot {
    /// Backoff-then-reattempt rounds performed.
    pub retries: u64,
    /// Calls answered by a non-primary replica.
    pub failovers: u64,
    /// Times a circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Calls refused locally by an open breaker.
    pub breaker_rejections: u64,
    /// Reads served from stale cache in degraded mode.
    pub degraded_reads: u64,
    /// Writes queued for replay while the remote was down.
    pub queued_writes: u64,
    /// Queued writes successfully replayed after heal.
    pub replayed_writes: u64,
}

impl ReliabilityStats {
    /// One retry round (backoff consumed, attempts restarting).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A call succeeded on a fallback replica.
    pub fn note_failover(&self) {
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    /// A breaker tripped open.
    pub fn note_breaker_trip(&self) {
        self.breaker_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// An open breaker refused a call.
    pub fn note_breaker_rejection(&self) {
        self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// A read was served from last-good cache, flagged stale.
    pub fn note_degraded_read(&self) {
        self.degraded_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// A write was queued for replay.
    pub fn note_queued_write(&self) {
        self.queued_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// A queued write replayed successfully.
    pub fn note_replayed_write(&self) {
        self.replayed_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters out.
    pub fn snapshot(&self) -> ReliabilitySnapshot {
        ReliabilitySnapshot {
            retries: self.retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            breaker_rejections: self.breaker_rejections.load(Ordering::Relaxed),
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            queued_writes: self.queued_writes.load(Ordering::Relaxed),
            replayed_writes: self.replayed_writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ns: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            cooldown_ns,
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(cfg(2, 100));
        assert_eq!(b.state_label(), "closed");
        assert!(!b.on_failure(0), "first failure stays closed");
        assert!(b.on_failure(0), "second failure trips");
        assert_eq!(b.state_label(), "open");
        assert!(!b.allow(50), "cooldown still running");
        assert!(b.allow(100), "cooldown elapsed admits a probe");
        assert_eq!(b.state_label(), "half-open");
        b.on_success();
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn halfopen_failure_reopens() {
        let mut b = CircuitBreaker::new(cfg(1, 100));
        assert!(b.on_failure(0));
        assert!(b.allow(150));
        assert_eq!(b.state_label(), "half-open");
        assert!(b.on_failure(150), "half-open failure re-trips");
        assert_eq!(b.state_label(), "open");
        assert!(!b.allow(200), "new cooldown counted from the re-trip");
        assert!(b.allow(250));
    }

    #[test]
    fn halfopen_admits_exactly_one_probe() {
        let mut b = CircuitBreaker::new(cfg(1, 100));
        assert!(b.on_failure(0), "trips open");
        assert!(b.allow(100), "cooldown elapsed admits the probe");
        assert_eq!(b.state_label(), "half-open");
        assert!(!b.allow(100), "second caller refused while probing");
        assert!(!b.allow(199), "still refused within the probe deadline");
        b.on_success();
        assert_eq!(b.state_label(), "closed");
        assert!(b.allow(500), "closed again after the probe resolves");
    }

    #[test]
    fn stalled_probe_rearms_after_a_cooldown() {
        let mut b = CircuitBreaker::new(cfg(1, 100));
        assert!(b.on_failure(0));
        assert!(b.allow(100), "first probe admitted");
        // The probe's caller vanishes without resolving it: after a
        // cooldown of silence the slot re-arms instead of refusing
        // every caller forever.
        assert!(!b.allow(199), "slot held while the probe is live");
        assert!(b.allow(200), "stalled probe presumed lost, fresh probe");
        assert!(!b.allow(250), "and again only one in flight");
        b.on_success();
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn failed_probe_reopens_and_rearms_the_next_window() {
        let mut b = CircuitBreaker::new(cfg(1, 100));
        assert!(b.on_failure(0));
        assert!(b.allow(100), "first probe");
        assert!(!b.allow(100), "concurrent caller refused");
        assert!(b.on_failure(100), "probe failure re-trips");
        assert!(!b.allow(150), "back in cooldown");
        assert!(b.allow(200), "next window admits a fresh probe");
        assert!(!b.allow(200), "and again only one");
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(cfg(2, 100));
        assert!(!b.on_failure(0));
        b.on_success();
        assert!(!b.on_failure(0), "count restarted after success");
        assert_eq!(b.state_label(), "closed");
    }

    #[test]
    fn stats_count_and_snapshot() {
        let s = ReliabilityStats::default();
        s.note_retry();
        s.note_retry();
        s.note_failover();
        s.note_breaker_trip();
        s.note_breaker_rejection();
        s.note_degraded_read();
        s.note_queued_write();
        s.note_replayed_write();
        let snap = s.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.breaker_rejections, 1);
        assert_eq!(snap.degraded_reads, 1);
        assert_eq!(snap.queued_writes, 1);
        assert_eq!(snap.replayed_writes, 1);
    }

    #[test]
    fn defaults_are_sane() {
        let r = RetryPolicy::default();
        assert!(r.attempts >= 2);
        assert!(r.base_backoff_ns < r.max_backoff_ns);
        assert!(r.max_backoff_ns < r.deadline_ns);
        let b = BreakerConfig::default();
        assert!(b.threshold > 0);
    }
}
