//! Network error type.

use std::error::Error;
use std::fmt;

use crate::wire::WireError;

/// Errors surfaced by the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No service is registered under this name.
    ServiceNotFound(String),
    /// The message was dropped by fault injection.
    Dropped(String),
    /// The service is partitioned away.
    Partitioned(String),
    /// The service rejected the request (application-level error payload).
    Rejected(String),
    /// The response could not be decoded.
    Malformed(WireError),
    /// The per-service circuit breaker is open: the call was refused
    /// locally without touching the network.
    CircuitOpen(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::ServiceNotFound(s) => write!(f, "service not found: {s}"),
            NetError::Dropped(s) => write!(f, "message to {s} dropped"),
            NetError::Partitioned(s) => write!(f, "service partitioned: {s}"),
            NetError::Rejected(msg) => write!(f, "request rejected: {msg}"),
            NetError::Malformed(e) => write!(f, "malformed response: {e}"),
            NetError::CircuitOpen(s) => write!(f, "circuit breaker open for {s}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Malformed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<NetError>();
    }

    #[test]
    fn malformed_has_source() {
        let e = NetError::from(WireError::UnexpectedEnd);
        assert!(e.source().is_some());
    }
}
