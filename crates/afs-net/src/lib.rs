#![warn(missing_docs)]
//! Simulated message network for the Active Files reproduction.
//!
//! The paper's sentinels reach "multiple remote sites with varied
//! authentication and access-control policies" over 100 Mbps Fast Ethernet
//! (§6). This crate provides the transport those interactions run on:
//!
//! * [`Network`] — a registry of named [`Service`]s plus two call shapes:
//!   [`Network::rpc`] (synchronous request/response, charged one round
//!   trip plus per-byte streaming both ways) and [`Network::cast`]
//!   (fire-and-forget, charged only the outbound per-byte cost — the
//!   "writes are issued without waiting for their completion" path of §6).
//! * [`wire`] — a small length-prefixed binary codec every service
//!   protocol in [`afs_remote`](../afs_remote/index.html) is defined in,
//!   standing in for the FTP/HTTP/POP wire formats the paper mentions.
//! * [`FaultPlan`] — deterministic fault injection (drop or flake the next
//!   N messages, partition a service away or over a scheduled virtual-time
//!   window, inject seeded latency and probabilistic loss) for the failure
//!   tests.
//! * [`cluster`] — consistent-hash membership and replica-aware
//!   placement for running active files against a fleet of services
//!   instead of a single one.
//! * [`reliability`] — retry policies with deterministic exponential
//!   backoff, replica failover, per-service circuit breakers, and the
//!   counters the telemetry exports. A [`Network::with_policy`] clone runs
//!   every call through the recovery loop.
//!
//! Services execute inline on the caller's thread; their compute is free,
//! which matches the paper's measurement focus on the *client-side*
//! overheads of reaching them.

pub mod cluster;
pub mod error;
pub mod net;
pub mod reliability;
pub mod wire;

pub use cluster::{HashRing, Placement};
pub use error::NetError;
pub use net::{FaultPlan, Network, NetworkStats, Service};
pub use reliability::{
    BreakerConfig, CircuitBreaker, ReliabilityPolicy, ReliabilitySnapshot, ReliabilityStats,
    RetryPolicy,
};
pub use wire::{WireError, WireReader, WireWriter};

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;
