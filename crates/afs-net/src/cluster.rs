//! Membership and placement for a replicated active-file cluster.
//!
//! The paper's sentinels talk to one remote service per file. To run the
//! same files against a *fleet* of services, something has to decide
//! which service owns which path — and keep that decision stable as the
//! fleet grows or shrinks, or every membership change would invalidate
//! every client's routing.
//!
//! [`HashRing`] is the classic consistent-hash answer: each node is
//! hashed onto a ring at [`HashRing::DEFAULT_VNODES`] points, a key is
//! owned by the first node point at or after its own hash, and a
//! membership change only reassigns the keys adjacent to the points that
//! appeared or vanished — in expectation `1/N` of the keyspace for a
//! join of an `N+1`-th node, never a full reshuffle. [`Placement`] wraps
//! the ring with a replication factor and answers the routing question
//! the cluster client actually asks: `owners(path)` → the primary
//! followed by the replicas, each a distinct node, in deterministic
//! order.
//!
//! Everything here is pure data — hashing is an in-tree FNV-1a, so
//! placement is bit-identical across runs, processes, and the seed
//! sweep's seeds.

use std::collections::BTreeMap;

/// 64-bit FNV-1a with a SplitMix64-style finalizer: tiny,
/// dependency-free, and stable across platforms — placement must be
/// reproducible, not cryptographic. The finalizer matters: raw FNV of
/// short, similar strings ("files-1#0", "files-1#1", …) clusters in the
/// high bits, and ring placement keys off the whole word.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state ^= state >> 30;
    state = state.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    state ^= state >> 27;
    state = state.wrapping_mul(0x94D0_49BB_1331_11EB);
    state ^ (state >> 31)
}

/// A consistent-hash ring over named service nodes.
///
/// Nodes are placed at `vnodes` points each (virtual nodes smooth the
/// per-node load to within a few percent of uniform); a key belongs to
/// the first node point clockwise from the key's hash.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// Ring points: hash → owning node. `BTreeMap` gives the clockwise
    /// walk for free via `range(..)`.
    points: BTreeMap<u64, String>,
    /// Virtual-node count used for every member.
    vnodes: usize,
    /// Member names in insertion-independent (sorted) order.
    nodes: Vec<String>,
}

impl HashRing {
    /// Virtual nodes per member when none is specified: enough to keep
    /// per-node share within ~10% of uniform at small fleet sizes.
    pub const DEFAULT_VNODES: usize = 64;

    /// Creates an empty ring with `vnodes` points per member (clamped to
    /// at least 1).
    pub fn new(vnodes: usize) -> HashRing {
        HashRing {
            points: BTreeMap::new(),
            vnodes: vnodes.max(1),
            nodes: Vec::new(),
        }
    }

    /// The member names, sorted.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a member; a duplicate name is a no-op.
    pub fn add_node(&mut self, name: &str) {
        if self.nodes.iter().any(|n| n == name) {
            return;
        }
        for v in 0..self.vnodes {
            let point = fnv1a(format!("{name}#{v}").as_bytes());
            // A hash collision between distinct nodes' points would make
            // placement insertion-order dependent; resolve it
            // deterministically by name so it is not.
            match self.points.get(&point) {
                Some(existing) if existing.as_str() <= name => {}
                _ => {
                    self.points.insert(point, name.to_owned());
                }
            }
        }
        self.nodes.push(name.to_owned());
        self.nodes.sort();
    }

    /// Removes a member; an unknown name is a no-op.
    pub fn remove_node(&mut self, name: &str) {
        let Some(idx) = self.nodes.iter().position(|n| n == name) else {
            return;
        };
        self.nodes.remove(idx);
        self.points.retain(|_, n| n != name);
        // Re-add collision-displaced points of the surviving members.
        let survivors = self.nodes.clone();
        for node in survivors {
            for v in 0..self.vnodes {
                let point = fnv1a(format!("{node}#{v}").as_bytes());
                self.points.entry(point).or_insert_with(|| node.clone());
            }
        }
    }

    /// The first `count` *distinct* members clockwise from `key`'s hash:
    /// the primary first, then the failover/replica order. Returns fewer
    /// than `count` when the fleet is smaller than that.
    pub fn owners(&self, key: &str, count: usize) -> Vec<String> {
        if self.nodes.is_empty() || count == 0 {
            return Vec::new();
        }
        let want = count.min(self.nodes.len());
        let start = fnv1a(key.as_bytes());
        let mut out: Vec<String> = Vec::with_capacity(want);
        for (_, node) in self.points.range(start..).chain(self.points.range(..start)) {
            if !out.iter().any(|n| n == node) {
                out.push(node.clone());
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The single owner of `key`, when the ring is non-empty.
    pub fn primary(&self, key: &str) -> Option<String> {
        self.owners(key, 1).into_iter().next()
    }
}

/// Replica-aware placement: a [`HashRing`] plus a replication factor.
///
/// `owners(path)` answers the cluster client's routing question — writes
/// go to the first entry (the primary) and replicate to the rest; reads
/// try the entries in order.
#[derive(Debug, Clone)]
pub struct Placement {
    ring: HashRing,
    copies: usize,
}

impl Placement {
    /// Creates an empty placement keeping `copies` total copies of every
    /// file (primary included; clamped to at least 1), with the default
    /// virtual-node count.
    pub fn new(copies: usize) -> Placement {
        Placement {
            ring: HashRing::new(HashRing::DEFAULT_VNODES),
            copies: copies.max(1),
        }
    }

    /// Total copies kept per file (primary included).
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// The member names, sorted.
    pub fn nodes(&self) -> &[String] {
        self.ring.nodes()
    }

    /// Adds a member service to the fleet.
    pub fn add_node(&mut self, name: &str) {
        self.ring.add_node(name);
    }

    /// Removes a member service from the fleet.
    pub fn remove_node(&mut self, name: &str) {
        self.ring.remove_node(name);
    }

    /// `[primary, replica, ...]` for `path` — distinct nodes, at most
    /// [`copies`](Placement::copies), deterministic for a given
    /// membership.
    pub fn owners(&self, path: &str) -> Vec<String> {
        self.ring.owners(path, self.copies)
    }

    /// The primary for `path`, when the fleet is non-empty.
    pub fn primary(&self, path: &str) -> Option<String> {
        self.ring.primary(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> HashRing {
        let mut ring = HashRing::new(HashRing::DEFAULT_VNODES);
        for i in 0..n {
            ring.add_node(&format!("files-{i}"));
        }
        ring
    }

    fn keys(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("/data/file-{i}.af")).collect()
    }

    #[test]
    fn placement_is_deterministic_and_order_independent() {
        let mut a = HashRing::new(32);
        for n in ["beta", "alpha", "gamma"] {
            a.add_node(n);
        }
        let mut b = HashRing::new(32);
        for n in ["gamma", "beta", "alpha"] {
            b.add_node(n);
        }
        for key in keys(200) {
            assert_eq!(a.owners(&key, 2), b.owners(&key, 2), "{key}");
        }
    }

    #[test]
    fn owners_are_distinct_and_led_by_the_primary() {
        let ring = fleet(5);
        for key in keys(100) {
            let owners = ring.owners(&key, 3);
            assert_eq!(owners.len(), 3);
            assert_eq!(owners[0], ring.primary(&key).expect("primary"));
            let mut dedup = owners.clone();
            dedup.dedup();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "{key}: {owners:?}");
        }
    }

    #[test]
    fn small_fleets_return_every_node() {
        let ring = fleet(2);
        assert_eq!(ring.owners("/x", 3).len(), 2);
        assert!(HashRing::new(8).owners("/x", 3).is_empty());
        assert_eq!(HashRing::new(8).primary("/x"), None);
    }

    #[test]
    fn join_moves_at_most_its_fair_share_of_keys() {
        // The consistency bound the cluster gate also asserts: adding an
        // (N+1)-th node reassigns at most 1/(N+1) of keys, plus slack for
        // virtual-node variance.
        let keys = keys(10_000);
        for n in [2usize, 4, 8] {
            let before = fleet(n);
            let mut after = before.clone();
            after.add_node("files-new");
            let moved = keys
                .iter()
                .filter(|k| before.primary(k) != after.primary(k))
                .count();
            let bound = keys.len() / (n + 1) + keys.len() / 20;
            assert!(
                moved <= bound,
                "N={n}: moved {moved} of {} (bound {bound})",
                keys.len()
            );
            // And every moved key moved *to* the joiner, not between
            // incumbents.
            for k in &keys {
                if before.primary(k) != after.primary(k) {
                    assert_eq!(after.primary(k).as_deref(), Some("files-new"), "{k}");
                }
            }
        }
    }

    #[test]
    fn leave_reassigns_only_the_leavers_keys() {
        let before = fleet(5);
        let mut after = before.clone();
        after.remove_node("files-2");
        for key in keys(2_000) {
            let was = before.primary(&key).expect("primary");
            if was != "files-2" {
                assert_eq!(after.primary(&key).as_deref(), Some(was.as_str()), "{key}");
            } else {
                assert_ne!(after.primary(&key).as_deref(), Some("files-2"));
            }
        }
    }

    #[test]
    fn virtual_nodes_spread_load_evenly() {
        let ring = fleet(4);
        let mut counts = std::collections::BTreeMap::new();
        let total = 8_000usize;
        for key in keys(total) {
            *counts
                .entry(ring.primary(&key).expect("primary"))
                .or_insert(0usize) += 1;
        }
        for (node, count) in counts {
            let share = count as f64 / total as f64;
            assert!(
                (share - 0.25).abs() < 0.10,
                "{node} owns {share:.3} of the keyspace"
            );
        }
    }

    #[test]
    fn placement_wraps_the_ring_with_a_replication_factor() {
        let mut placement = Placement::new(3);
        assert_eq!(placement.copies(), 3);
        for i in 0..5 {
            placement.add_node(&format!("files-{i}"));
        }
        let owners = placement.owners("/data/x.af");
        assert_eq!(owners.len(), 3);
        assert_eq!(owners[0], placement.primary("/data/x.af").expect("primary"));
        placement.remove_node(&owners[0]);
        assert_eq!(placement.nodes().len(), 4);
        assert_ne!(placement.owners("/data/x.af")[0], owners[0]);
    }
}
