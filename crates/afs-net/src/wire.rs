//! Length-prefixed binary wire codec.
//!
//! Every remote-service protocol in the workspace (file server, POP,
//! quotes, registry, database) is encoded with this codec: little-endian
//! fixed-width integers, length-prefixed byte strings, and
//! count-prefixed sequences. It stands in for the ad-hoc wire formats
//! (FTP, HTTP, POP3) the paper's sentinels speak.

use std::error::Error;
use std::fmt;

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd,
    /// A byte string declared to be UTF-8 was not.
    InvalidUtf8,
    /// An enum tag was out of range.
    BadTag(u8),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd => f.write_str("unexpected end of message"),
            WireError::InvalidUtf8 => f.write_str("invalid utf-8 in string field"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for WireError {}

/// Serialises values into a byte vector.
///
/// # Examples
///
/// ```
/// use afs_net::{WireReader, WireWriter};
///
/// # fn main() -> Result<(), afs_net::WireError> {
/// let mut w = WireWriter::new();
/// w.u8(3).u64(42).str("hello");
/// let bytes = w.finish();
/// let mut r = WireReader::new(&bytes);
/// assert_eq!(r.u8()?, 3);
/// assert_eq!(r.u64()?, 42);
/// assert_eq!(r.str()?, "hello");
/// r.finish()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `i64` (little-endian).
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(u8::from(v))
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends a count prefix for a sequence of `n` elements.
    pub fn seq(&mut self, n: usize) -> &mut Self {
        self.u32(n as u32)
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserialises values from a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`] if the buffer is exhausted.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`].
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`].
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`].
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a bool.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`]; [`WireError::BadTag`] for values other
    /// than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }

    /// Reads a length-prefixed byte string (borrowed).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`].
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`], [`WireError::InvalidUtf8`].
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a sequence count prefix.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEnd`].
    pub fn seq(&mut self) -> Result<usize, WireError> {
        Ok(self.u32()? as usize)
    }

    /// Asserts the whole buffer was consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if data remains.
    pub fn finish(self) -> Result<(), WireError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(rest))
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u32(1_000)
            .u64(1 << 40)
            .i64(-9)
            .bool(true)
            .bytes(b"\x00\xff")
            .str("naïve");
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().expect("u8"), 7);
        assert_eq!(r.u32().expect("u32"), 1_000);
        assert_eq!(r.u64().expect("u64"), 1 << 40);
        assert_eq!(r.i64().expect("i64"), -9);
        assert!(r.bool().expect("bool"));
        assert_eq!(r.bytes().expect("bytes"), b"\x00\xff");
        assert_eq!(r.str().expect("str"), "naïve");
        r.finish().expect("consumed");
    }

    #[test]
    fn truncated_buffer_errors() {
        let mut w = WireWriter::new();
        w.u64(5);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..4]);
        assert_eq!(r.u64(), Err(WireError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = WireWriter::new();
        w.u8(1).u8(2);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        r.u8().expect("u8");
        assert_eq!(r.finish(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn bad_bool_tag() {
        let mut r = WireReader::new(&[9]);
        assert_eq!(r.bool(), Err(WireError::BadTag(9)));
    }

    #[test]
    fn invalid_utf8_detected() {
        let mut w = WireWriter::new();
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn seq_counts_roundtrip() {
        let mut w = WireWriter::new();
        w.seq(3);
        for i in 0..3u32 {
            w.u32(i);
        }
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let n = r.seq().expect("seq");
        let items: Vec<u32> = (0..n).map(|_| r.u32().expect("item")).collect();
        assert_eq!(items, vec![0, 1, 2]);
    }
}
