#![warn(missing_docs)]
//! A Win32-shaped file API over the simulated VFS.
//!
//! The legacy applications the paper integrates "assume a traditional
//! file-based interface" — concretely, the Win32 calls `CreateFile`,
//! `OpenFile`, `ReadFile`, `WriteFile`, `CloseHandle`, `GetFileSize`,
//! `SetFilePointer`, `ReadFileScatter`, and friends (§2.1). This crate
//! reproduces that surface as the object-safe [`FileApi`] trait so that:
//!
//! * simulated legacy applications can be written once against [`FileApi`]
//!   and run unchanged over passive files or active files, and
//! * the interception layer (`afs-interpose`) can divert the calls the
//!   way Mediating Connectors diverts the real IAT entries.
//!
//! [`PassiveFileApi`] is the direct, uninstrumented implementation — the
//! baseline the paper compares against ("the baseline costs for directly
//! accessing these paths is indistinguishable from the DLL-only case",
//! Figure 6 caption). Errors carry Win32 error codes ([`Win32Error`]).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use afs_winapi::{Access, Disposition, FileApi, PassiveFileApi};
//! use afs_vfs::Vfs;
//! use afs_sim::CostModel;
//!
//! # fn main() -> Result<(), afs_winapi::Win32Error> {
//! let api = PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free());
//! let h = api.create_file("/hello.txt", Access::read_write(), Disposition::CreateAlways)?;
//! api.write_file(h, b"hi")?;
//! api.set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)?;
//! let mut buf = [0u8; 2];
//! assert_eq!(api.read_file(h, &mut buf)?, 2);
//! api.close_handle(h)?;
//! # Ok(())
//! # }
//! ```

mod api;
mod error;
mod handle;
mod passive;

pub use api::{
    Access, DelegateFileApi, Disposition, FileApi, FileInformation, Layered, SeekMethod, ShareMode,
};
pub use error::Win32Error;
pub use handle::{Handle, HandleTable};
pub use passive::PassiveFileApi;

/// Result alias carrying Win32-style errors.
pub type ApiResult<T> = std::result::Result<T, Win32Error>;
