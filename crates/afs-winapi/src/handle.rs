//! Handles and the per-API handle table.
//!
//! The prototype returns a "fictitious handle" for active files and keeps
//! "an association … between the dummy handle and the two or three pipe
//! handles" (Appendix A.2). [`HandleTable`] provides exactly that
//! association: opaque [`Handle`] values mapped to arbitrary per-open
//! state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{ApiResult, Win32Error};

/// An opaque file handle, as returned by `CreateFile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle(u64);

impl Handle {
    /// The invalid handle value (`INVALID_HANDLE_VALUE`).
    pub const INVALID: Handle = Handle(u64::MAX);

    /// The raw handle number (diagnostic).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Handle({})", self.0)
    }
}

/// A concurrent map from [`Handle`] to per-open state `T`.
///
/// Handle values are never reused within one table, mirroring the
/// practical uniqueness guarantees applications rely on.
#[derive(Debug)]
pub struct HandleTable<T> {
    next: AtomicU64,
    entries: Mutex<HashMap<u64, Arc<T>>>,
}

impl<T> Default for HandleTable<T> {
    fn default() -> Self {
        HandleTable::new()
    }
}

impl<T> HandleTable<T> {
    /// Creates an empty table. The first issued handle is 16, leaving room
    /// below for well-known pseudo-handles.
    pub fn new() -> Self {
        HandleTable::with_start(16)
    }

    /// Creates an empty table whose first handle is `start`. Layered APIs
    /// use disjoint ranges so a handle can be routed to the layer that
    /// issued it.
    pub fn with_start(start: u64) -> Self {
        HandleTable {
            next: AtomicU64::new(start),
            entries: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `state` and returns its new handle.
    pub fn insert(&self, state: T) -> Handle {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(id, Arc::new(state));
        Handle(id)
    }

    /// Looks up the state for `handle`.
    ///
    /// # Errors
    ///
    /// [`Win32Error::InvalidHandle`] if the handle is unknown or closed.
    pub fn get(&self, handle: Handle) -> ApiResult<Arc<T>> {
        self.entries
            .lock()
            .get(&handle.0)
            .cloned()
            .ok_or(Win32Error::InvalidHandle)
    }

    /// Removes the handle, returning its state.
    ///
    /// # Errors
    ///
    /// [`Win32Error::InvalidHandle`] if the handle is unknown or already
    /// closed.
    pub fn remove(&self, handle: Handle) -> ApiResult<Arc<T>> {
        self.entries
            .lock()
            .remove(&handle.0)
            .ok_or(Win32Error::InvalidHandle)
    }

    /// Removes every open handle, returning the abandoned states so the
    /// caller controls when they drop (world teardown closes all active
    /// handles before shutting sentinels down).
    pub fn drain(&self) -> Vec<Arc<T>> {
        self.entries
            .lock()
            .drain()
            .map(|(_, state)| state)
            .collect()
    }

    /// Number of open handles.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// `true` if no handles are open.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_lifecycle() {
        let table: HandleTable<String> = HandleTable::new();
        let h = table.insert("state".to_owned());
        assert_ne!(h, Handle::INVALID);
        assert_eq!(*table.get(h).expect("get"), "state");
        assert_eq!(table.len(), 1);
        table.remove(h).expect("remove");
        assert_eq!(table.get(h), Err(Win32Error::InvalidHandle));
        assert!(table.is_empty());
    }

    #[test]
    fn handles_are_unique_and_not_reused() {
        let table: HandleTable<u32> = HandleTable::new();
        let a = table.insert(1);
        table.remove(a).expect("remove");
        let b = table.insert(2);
        assert_ne!(a, b);
    }

    #[test]
    fn double_close_is_invalid_handle() {
        let table: HandleTable<u32> = HandleTable::new();
        let h = table.insert(1);
        table.remove(h).expect("first close");
        assert_eq!(table.remove(h), Err(Win32Error::InvalidHandle));
    }

    #[test]
    fn drain_empties_the_table_and_returns_states() {
        let table: HandleTable<u32> = HandleTable::new();
        table.insert(1);
        table.insert(2);
        let states = table.drain();
        assert_eq!(states.len(), 2);
        assert!(table.is_empty());
        assert_eq!(table.get(Handle(16)), Err(Win32Error::InvalidHandle));
    }

    #[test]
    fn invalid_constant_never_collides() {
        let table: HandleTable<u32> = HandleTable::new();
        for _ in 0..1000 {
            assert_ne!(table.insert(0), Handle::INVALID);
        }
    }
}
