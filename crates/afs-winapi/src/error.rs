//! Win32-style error codes.

use std::error::Error;
use std::fmt;

use afs_vfs::VfsError;

/// A Win32 file-API error, mirroring `GetLastError` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Win32Error {
    /// `ERROR_FILE_NOT_FOUND` (2).
    FileNotFound,
    /// `ERROR_PATH_NOT_FOUND` (3).
    PathNotFound,
    /// `ERROR_ACCESS_DENIED` (5).
    AccessDenied,
    /// `ERROR_INVALID_HANDLE` (6).
    InvalidHandle,
    /// `ERROR_HANDLE_EOF` (38).
    HandleEof,
    /// `ERROR_NOT_SUPPORTED` (50) — e.g. `ReadFileScatter` against a
    /// simple process-based active file (§4.1).
    NotSupported,
    /// `ERROR_FILE_EXISTS` (80).
    FileExists,
    /// `ERROR_INVALID_PARAMETER` (87).
    InvalidParameter,
    /// `ERROR_BROKEN_PIPE` (109).
    BrokenPipe,
    /// `ERROR_CALL_NOT_IMPLEMENTED` (120).
    CallNotImplemented,
    /// `ERROR_INVALID_NAME` (123).
    InvalidName,
    /// `ERROR_DIR_NOT_EMPTY` (145).
    DirNotEmpty,
    /// `ERROR_ALREADY_EXISTS` (183).
    AlreadyExists,
    /// `ERROR_SHARING_VIOLATION` (32).
    SharingViolation,
    /// `ERROR_LOCK_VIOLATION` (33).
    LockViolation,
    /// `ERROR_DIRECTORY` (267) — directory operation on a file or vice
    /// versa.
    Directory,
    /// A failure reported by a remote information source through the
    /// sentinel (no single Win32 analogue; surfaced as code 59,
    /// `ERROR_UNEXP_NET_ERR`).
    NetworkError,
}

impl Win32Error {
    /// The numeric `GetLastError` code.
    pub fn code(self) -> u32 {
        match self {
            Win32Error::FileNotFound => 2,
            Win32Error::PathNotFound => 3,
            Win32Error::AccessDenied => 5,
            Win32Error::InvalidHandle => 6,
            Win32Error::SharingViolation => 32,
            Win32Error::LockViolation => 33,
            Win32Error::HandleEof => 38,
            Win32Error::NotSupported => 50,
            Win32Error::NetworkError => 59,
            Win32Error::FileExists => 80,
            Win32Error::InvalidParameter => 87,
            Win32Error::BrokenPipe => 109,
            Win32Error::CallNotImplemented => 120,
            Win32Error::InvalidName => 123,
            Win32Error::DirNotEmpty => 145,
            Win32Error::AlreadyExists => 183,
            Win32Error::Directory => 267,
        }
    }
}

impl fmt::Display for Win32Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Win32Error::FileNotFound => "file not found",
            Win32Error::PathNotFound => "path not found",
            Win32Error::AccessDenied => "access denied",
            Win32Error::InvalidHandle => "invalid handle",
            Win32Error::SharingViolation => "sharing violation",
            Win32Error::LockViolation => "lock violation",
            Win32Error::HandleEof => "end of file",
            Win32Error::NotSupported => "operation not supported",
            Win32Error::NetworkError => "unexpected network error",
            Win32Error::FileExists => "file exists",
            Win32Error::InvalidParameter => "invalid parameter",
            Win32Error::BrokenPipe => "broken pipe",
            Win32Error::CallNotImplemented => "call not implemented",
            Win32Error::InvalidName => "invalid name",
            Win32Error::DirNotEmpty => "directory not empty",
            Win32Error::AlreadyExists => "already exists",
            Win32Error::Directory => "invalid directory operation",
        };
        write!(f, "{name} (error {})", self.code())
    }
}

impl Error for Win32Error {}

impl From<VfsError> for Win32Error {
    fn from(e: VfsError) -> Self {
        match e {
            VfsError::NotFound(_) => Win32Error::FileNotFound,
            VfsError::NotADirectory(_) => Win32Error::PathNotFound,
            VfsError::IsADirectory(_) => Win32Error::Directory,
            VfsError::AlreadyExists(_) => Win32Error::AlreadyExists,
            VfsError::InvalidPath(_) => Win32Error::InvalidName,
            VfsError::AccessDenied(_) => Win32Error::AccessDenied,
            VfsError::LockConflict(_) => Win32Error::LockViolation,
            VfsError::StreamNotFound(_) => Win32Error::FileNotFound,
            VfsError::NotEmpty(_) => Win32Error::DirNotEmpty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_win32() {
        assert_eq!(Win32Error::FileNotFound.code(), 2);
        assert_eq!(Win32Error::AccessDenied.code(), 5);
        assert_eq!(Win32Error::InvalidHandle.code(), 6);
        assert_eq!(Win32Error::HandleEof.code(), 38);
        assert_eq!(Win32Error::CallNotImplemented.code(), 120);
    }

    #[test]
    fn vfs_errors_map() {
        assert_eq!(
            Win32Error::from(VfsError::LockConflict("/f".into())),
            Win32Error::LockViolation
        );
        assert_eq!(
            Win32Error::from(VfsError::NotFound("/f".into())),
            Win32Error::FileNotFound
        );
    }

    #[test]
    fn display_includes_code() {
        assert!(Win32Error::NotSupported.to_string().contains("50"));
    }
}
