//! The [`FileApi`] trait — the Win32 file surface applications call.

use crate::{ApiResult, Handle};
use afs_vfs::{DirEntry, FileAttributes};

/// Requested access rights, the `dwDesiredAccess` argument of
/// `CreateFile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// `GENERIC_READ`.
    pub read: bool,
    /// `GENERIC_WRITE`.
    pub write: bool,
}

impl Access {
    /// Read-only access.
    pub fn read_only() -> Self {
        Access {
            read: true,
            write: false,
        }
    }

    /// Write-only access.
    pub fn write_only() -> Self {
        Access {
            read: false,
            write: true,
        }
    }

    /// Read-write access.
    pub fn read_write() -> Self {
        Access {
            read: true,
            write: true,
        }
    }
}

/// The `dwCreationDisposition` argument of `CreateFile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Fail if the file exists (`CREATE_NEW`).
    CreateNew,
    /// Create or truncate (`CREATE_ALWAYS`).
    CreateAlways,
    /// Fail if the file does not exist (`OPEN_EXISTING`).
    OpenExisting,
    /// Open, creating if missing (`OPEN_ALWAYS`).
    OpenAlways,
    /// Open and truncate, failing if missing (`TRUNCATE_EXISTING`).
    TruncateExisting,
}

/// The `dwMoveMethod` argument of `SetFilePointer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SeekMethod {
    /// From the start of the file (`FILE_BEGIN`).
    Begin,
    /// From the current position (`FILE_CURRENT`).
    Current,
    /// From the end of the file (`FILE_END`).
    End,
}

/// Per-handle information, as from `GetFileInformationByHandle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInformation {
    /// File size in bytes.
    pub size: u64,
    /// Attribute bits.
    pub attributes: FileAttributes,
    /// Logical creation tick.
    pub created: u64,
    /// Logical last-modification tick.
    pub modified: u64,
}

/// The Win32 file API surface, object-safe so layers can wrap each other
/// the way intercepted DLL import tables chain on NT.
///
/// All path arguments are absolute VFS paths (`/dir/file.ext`), optionally
/// carrying an NTFS-style `:stream` suffix.
pub trait FileApi: Send + Sync {
    /// Opens or creates a file (`CreateFile`/`OpenFile`).
    ///
    /// # Errors
    ///
    /// Win32-style errors; notably [`crate::Win32Error::FileNotFound`],
    /// [`crate::Win32Error::FileExists`], and
    /// [`crate::Win32Error::AccessDenied`].
    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle>;

    /// Opens or creates a file with an explicit NT share mode. The
    /// default implementation ignores the share mode (plain
    /// [`FileApi::create_file`] behaves as `ShareMode::all()`);
    /// implementations that track opens enforce it.
    ///
    /// # Errors
    ///
    /// As [`FileApi::create_file`], plus
    /// [`crate::Win32Error::SharingViolation`] when the request conflicts
    /// with an existing open.
    fn create_file_shared(
        &self,
        path: &str,
        access: Access,
        share: ShareMode,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        let _ = share;
        self.create_file(path, access, disposition)
    }

    /// Reads up to `buf.len()` bytes at the current file pointer,
    /// advancing it (`ReadFile`). Returns 0 at end-of-file.
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`] on unknown handles,
    /// [`crate::Win32Error::AccessDenied`] for write-only handles.
    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize>;

    /// Writes `data` at the current file pointer, advancing it
    /// (`WriteFile`). Returns bytes written.
    ///
    /// # Errors
    ///
    /// As [`FileApi::read_file`], plus lock violations.
    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize>;

    /// Closes a handle (`CloseHandle`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`] if already closed.
    fn close_handle(&self, handle: Handle) -> ApiResult<()>;

    /// Returns the file size (`GetFileSize`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`]; strategies that cannot answer
    /// (simple process-based active files) return
    /// [`crate::Win32Error::CallNotImplemented`] (§4.1).
    fn get_file_size(&self, handle: Handle) -> ApiResult<u64>;

    /// Moves the file pointer (`SetFilePointer`), returning the new
    /// absolute position.
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidParameter`] for seeks before byte 0.
    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64>;

    /// Scatter read into several buffers (`ReadFileScatter`). Returns
    /// total bytes read.
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::NotSupported`] where the strategy has no pipe
    /// analogue (§4.1/A.2).
    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize>;

    /// Gather write from several buffers (`WriteFileGather`). Returns
    /// total bytes written.
    ///
    /// # Errors
    ///
    /// As [`FileApi::read_file_scatter`].
    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize>;

    /// Flushes buffered data (`FlushFileBuffers`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`].
    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()>;

    /// Acquires a byte-range lock (`LockFile`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::LockViolation`] on conflict.
    fn lock_file(&self, handle: Handle, offset: u64, len: u64, exclusive: bool) -> ApiResult<()>;

    /// Releases a byte-range lock (`UnlockFile`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::LockViolation`] if no matching lock is held.
    fn unlock_file(&self, handle: Handle, offset: u64, len: u64) -> ApiResult<()>;

    /// Deletes a file (`DeleteFile`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::FileNotFound`],
    /// [`crate::Win32Error::AccessDenied`] for read-only files.
    fn delete_file(&self, path: &str) -> ApiResult<()>;

    /// Copies a file with all its streams (`CopyFile`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::AlreadyExists`] if `to` exists.
    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()>;

    /// Renames/moves a file (`MoveFile`).
    ///
    /// # Errors
    ///
    /// As [`FileApi::copy_file`].
    fn move_file(&self, from: &str, to: &str) -> ApiResult<()>;

    /// Returns a path's attributes (`GetFileAttributes`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::FileNotFound`].
    fn get_file_attributes(&self, path: &str) -> ApiResult<FileAttributes>;

    /// Lists a directory (`FindFirstFile`/`FindNextFile` collapsed into one
    /// call).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::Directory`] when the path is not a directory.
    fn find_files(&self, dir: &str) -> ApiResult<Vec<DirEntry>>;

    /// Creates a directory (`CreateDirectory`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::AlreadyExists`].
    fn create_directory(&self, path: &str) -> ApiResult<()>;

    /// Per-handle metadata (`GetFileInformationByHandle`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`].
    fn get_file_information(&self, handle: Handle) -> ApiResult<FileInformation>;

    /// Truncates the file at the current file pointer (`SetEndOfFile`).
    ///
    /// # Errors
    ///
    /// [`crate::Win32Error::InvalidHandle`],
    /// [`crate::Win32Error::AccessDenied`].
    fn set_end_of_file(&self, handle: Handle) -> ApiResult<()>;

    /// Sends an out-of-band control request to the object behind `handle`
    /// (`DeviceIoControl`): an implementation-defined `code` plus opaque
    /// `input` bytes, returning opaque response bytes. Active files route
    /// this to the sentinel's control surface.
    ///
    /// # Errors
    ///
    /// Default: [`crate::Win32Error::NotSupported`] — passive files have
    /// no control surface.
    fn device_io_control(&self, handle: Handle, code: u32, input: &[u8]) -> ApiResult<Vec<u8>> {
        let _ = (handle, code, input);
        Err(crate::Win32Error::NotSupported)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_constructors() {
        assert!(Access::read_only().read && !Access::read_only().write);
        assert!(!Access::write_only().read && Access::write_only().write);
        assert!(Access::read_write().read && Access::read_write().write);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes(_api: &dyn FileApi) {}
    }
}

/// Boilerplate-free wrapping: implement [`DelegateFileApi`] (just
/// `delegate()` plus the methods you want to divert) and the blanket impl
/// forwards everything else to the inner API.
///
/// This mirrors how the prototype's injected DLL contains "a set of stubs,
/// one for each instrumented API call" that mostly pass through
/// (Appendix A.2).
pub trait DelegateFileApi: Send + Sync {
    /// The next API down the chain.
    fn delegate(&self) -> &dyn FileApi;

    /// See [`FileApi::create_file`].
    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.delegate().create_file(path, access, disposition)
    }

    /// See [`FileApi::create_file_shared`].
    fn create_file_shared(
        &self,
        path: &str,
        access: Access,
        share: ShareMode,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.delegate()
            .create_file_shared(path, access, share, disposition)
    }

    /// See [`FileApi::read_file`].
    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        self.delegate().read_file(handle, buf)
    }

    /// See [`FileApi::write_file`].
    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        self.delegate().write_file(handle, data)
    }

    /// See [`FileApi::close_handle`].
    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        self.delegate().close_handle(handle)
    }

    /// See [`FileApi::get_file_size`].
    fn get_file_size(&self, handle: Handle) -> ApiResult<u64> {
        self.delegate().get_file_size(handle)
    }

    /// See [`FileApi::set_file_pointer`].
    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64> {
        self.delegate().set_file_pointer(handle, offset, method)
    }

    /// See [`FileApi::read_file_scatter`].
    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize> {
        self.delegate().read_file_scatter(handle, bufs)
    }

    /// See [`FileApi::write_file_gather`].
    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize> {
        self.delegate().write_file_gather(handle, bufs)
    }

    /// See [`FileApi::flush_file_buffers`].
    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()> {
        self.delegate().flush_file_buffers(handle)
    }

    /// See [`FileApi::lock_file`].
    fn lock_file(&self, handle: Handle, offset: u64, len: u64, exclusive: bool) -> ApiResult<()> {
        self.delegate().lock_file(handle, offset, len, exclusive)
    }

    /// See [`FileApi::unlock_file`].
    fn unlock_file(&self, handle: Handle, offset: u64, len: u64) -> ApiResult<()> {
        self.delegate().unlock_file(handle, offset, len)
    }

    /// See [`FileApi::delete_file`].
    fn delete_file(&self, path: &str) -> ApiResult<()> {
        self.delegate().delete_file(path)
    }

    /// See [`FileApi::copy_file`].
    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.delegate().copy_file(from, to)
    }

    /// See [`FileApi::move_file`].
    fn move_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.delegate().move_file(from, to)
    }

    /// See [`FileApi::get_file_attributes`].
    fn get_file_attributes(&self, path: &str) -> ApiResult<FileAttributes> {
        self.delegate().get_file_attributes(path)
    }

    /// See [`FileApi::find_files`].
    fn find_files(&self, dir: &str) -> ApiResult<Vec<DirEntry>> {
        self.delegate().find_files(dir)
    }

    /// See [`FileApi::create_directory`].
    fn create_directory(&self, path: &str) -> ApiResult<()> {
        self.delegate().create_directory(path)
    }

    /// See [`FileApi::get_file_information`].
    fn get_file_information(&self, handle: Handle) -> ApiResult<FileInformation> {
        self.delegate().get_file_information(handle)
    }

    /// See [`FileApi::set_end_of_file`].
    fn set_end_of_file(&self, handle: Handle) -> ApiResult<()> {
        self.delegate().set_end_of_file(handle)
    }

    /// See [`FileApi::device_io_control`].
    fn device_io_control(&self, handle: Handle, code: u32, input: &[u8]) -> ApiResult<Vec<u8>> {
        self.delegate().device_io_control(handle, code, input)
    }
}

/// Adapter turning any [`DelegateFileApi`] into a [`FileApi`].
///
/// A blanket `impl FileApi for T: DelegateFileApi` would forbid any type
/// from implementing `FileApi` directly elsewhere in the workspace, so the
/// adapter is explicit: wrap your layer in [`Layered`] when registering it.
#[derive(Debug)]
pub struct Layered<T>(pub T);

impl<T: DelegateFileApi> FileApi for Layered<T> {
    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        DelegateFileApi::create_file(&self.0, path, access, disposition)
    }
    fn create_file_shared(
        &self,
        path: &str,
        access: Access,
        share: ShareMode,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        DelegateFileApi::create_file_shared(&self.0, path, access, share, disposition)
    }
    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        DelegateFileApi::read_file(&self.0, handle, buf)
    }
    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        DelegateFileApi::write_file(&self.0, handle, data)
    }
    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        DelegateFileApi::close_handle(&self.0, handle)
    }
    fn get_file_size(&self, handle: Handle) -> ApiResult<u64> {
        DelegateFileApi::get_file_size(&self.0, handle)
    }
    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64> {
        DelegateFileApi::set_file_pointer(&self.0, handle, offset, method)
    }
    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize> {
        DelegateFileApi::read_file_scatter(&self.0, handle, bufs)
    }
    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize> {
        DelegateFileApi::write_file_gather(&self.0, handle, bufs)
    }
    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()> {
        DelegateFileApi::flush_file_buffers(&self.0, handle)
    }
    fn lock_file(&self, handle: Handle, offset: u64, len: u64, exclusive: bool) -> ApiResult<()> {
        DelegateFileApi::lock_file(&self.0, handle, offset, len, exclusive)
    }
    fn unlock_file(&self, handle: Handle, offset: u64, len: u64) -> ApiResult<()> {
        DelegateFileApi::unlock_file(&self.0, handle, offset, len)
    }
    fn delete_file(&self, path: &str) -> ApiResult<()> {
        DelegateFileApi::delete_file(&self.0, path)
    }
    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        DelegateFileApi::copy_file(&self.0, from, to)
    }
    fn move_file(&self, from: &str, to: &str) -> ApiResult<()> {
        DelegateFileApi::move_file(&self.0, from, to)
    }
    fn get_file_attributes(&self, path: &str) -> ApiResult<FileAttributes> {
        DelegateFileApi::get_file_attributes(&self.0, path)
    }
    fn find_files(&self, dir: &str) -> ApiResult<Vec<DirEntry>> {
        DelegateFileApi::find_files(&self.0, dir)
    }
    fn create_directory(&self, path: &str) -> ApiResult<()> {
        DelegateFileApi::create_directory(&self.0, path)
    }
    fn get_file_information(&self, handle: Handle) -> ApiResult<FileInformation> {
        DelegateFileApi::get_file_information(&self.0, handle)
    }
    fn set_end_of_file(&self, handle: Handle) -> ApiResult<()> {
        DelegateFileApi::set_end_of_file(&self.0, handle)
    }
    fn device_io_control(&self, handle: Handle, code: u32, input: &[u8]) -> ApiResult<Vec<u8>> {
        DelegateFileApi::device_io_control(&self.0, handle, code, input)
    }
}

/// The `dwShareMode` argument of `CreateFile`: which rights *other*
/// handles may hold or acquire while this one is open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShareMode {
    /// Others may read (`FILE_SHARE_READ`).
    pub read: bool,
    /// Others may write (`FILE_SHARE_WRITE`).
    pub write: bool,
    /// Others may delete the file (`FILE_SHARE_DELETE`).
    pub delete: bool,
}

impl ShareMode {
    /// Exclusive access: no other handle may read, write, or delete.
    pub fn none() -> Self {
        ShareMode {
            read: false,
            write: false,
            delete: false,
        }
    }

    /// Others may read but not write or delete.
    pub fn read_only() -> Self {
        ShareMode {
            read: true,
            write: false,
            delete: false,
        }
    }

    /// Others may read and write but not delete.
    pub fn read_write() -> Self {
        ShareMode {
            read: true,
            write: true,
            delete: false,
        }
    }

    /// Fully shared (the behaviour of plain [`FileApi::create_file`]).
    pub fn all() -> Self {
        ShareMode {
            read: true,
            write: true,
            delete: true,
        }
    }
}

impl Default for ShareMode {
    fn default() -> Self {
        ShareMode::all()
    }
}
