//! The direct (uninstrumented) implementation of [`FileApi`] over the
//! VFS — the paper's baseline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use afs_sim::{Cost, CostModel};
use afs_vfs::{DirEntry, FileAttributes, LockKind, LockOwner, NodeKind, VPath, Vfs};

use std::collections::HashMap;

use crate::api::{Access, Disposition, FileApi, FileInformation, SeekMethod, ShareMode};
use crate::handle::{Handle, HandleTable};
use crate::{ApiResult, Win32Error};

#[derive(Debug)]
pub(crate) struct OpenFile {
    path: VPath,
    access: Access,
    pos: Mutex<u64>,
    lock_owner: LockOwner,
}

/// One live open recorded in the sharing table.
#[derive(Debug, Clone, Copy)]
struct ShareEntry {
    handle: Handle,
    access: Access,
    share: ShareMode,
}

fn share_compatible(existing: &ShareEntry, access: Access, share: ShareMode) -> bool {
    // NT rules: the new access must be permitted by every existing
    // handle's share mode, and every existing access must be permitted by
    // the new share mode.
    (!access.read || existing.share.read)
        && (!access.write || existing.share.write)
        && (!existing.access.read || share.read)
        && (!existing.access.write || share.write)
}

/// Direct implementation of the Win32 file API against the simulated VFS.
///
/// Each call charges one syscall to the cost model; the VFS content itself
/// is memory-resident (the Figure 6 baselines model their disk/network
/// costs at the point where a sentinel decides which backing it uses).
#[derive(Debug)]
pub struct PassiveFileApi {
    vfs: Arc<Vfs>,
    model: CostModel,
    handles: HandleTable<OpenFile>,
    next_owner: AtomicU64,
    sharing: Mutex<HashMap<String, Vec<ShareEntry>>>,
}

impl PassiveFileApi {
    /// Creates the API over `vfs`, charging to `model`.
    pub fn new(vfs: Arc<Vfs>, model: CostModel) -> Self {
        PassiveFileApi {
            vfs,
            model,
            handles: HandleTable::new(),
            next_owner: AtomicU64::new(1),
            sharing: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying file system (shared).
    pub fn vfs(&self) -> &Arc<Vfs> {
        &self.vfs
    }

    /// The cost model charged by this API.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Number of open handles (diagnostic).
    pub fn open_handles(&self) -> usize {
        self.handles.len()
    }

    fn parse(path: &str) -> ApiResult<VPath> {
        VPath::parse(path).map_err(Win32Error::from)
    }
}

impl FileApi for PassiveFileApi {
    fn create_file(
        &self,
        path: &str,
        access: Access,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.create_file_shared(path, access, ShareMode::all(), disposition)
    }

    fn create_file_shared(
        &self,
        path: &str,
        access: Access,
        share: ShareMode,
        disposition: Disposition,
    ) -> ApiResult<Handle> {
        self.model.charge(Cost::Syscall);
        let vpath = Self::parse(path)?;
        let file_path = vpath.file_path();
        let exists = self.vfs.is_file(&file_path);
        if self.vfs.is_dir(&file_path) {
            return Err(Win32Error::Directory);
        }
        match disposition {
            Disposition::CreateNew => {
                if exists {
                    return Err(Win32Error::FileExists);
                }
                self.vfs.create_file(&file_path)?;
            }
            Disposition::CreateAlways => {
                if exists {
                    self.vfs.write_stream_replace(&vpath, &[])?;
                } else {
                    self.vfs.create_file(&file_path)?;
                }
            }
            Disposition::OpenExisting => {
                if !exists {
                    return Err(Win32Error::FileNotFound);
                }
            }
            Disposition::OpenAlways => {
                if !exists {
                    self.vfs.create_file(&file_path)?;
                }
            }
            Disposition::TruncateExisting => {
                if !exists {
                    return Err(Win32Error::FileNotFound);
                }
                if !access.write {
                    return Err(Win32Error::AccessDenied);
                }
                self.vfs.write_stream_replace(&vpath, &[])?;
            }
        }
        // Opening a named stream for the first time materialises it lazily
        // on first write; reads of a missing stream report FileNotFound,
        // as NT does.
        // Share-mode admission against every live open of this file.
        let key = file_path.to_string();
        let mut sharing = self.sharing.lock();
        let entries = sharing.entry(key).or_default();
        if entries.iter().any(|e| !share_compatible(e, access, share)) {
            return Err(Win32Error::SharingViolation);
        }
        let owner = LockOwner(self.next_owner.fetch_add(1, Ordering::Relaxed));
        let handle = self.handles.insert(OpenFile {
            path: vpath,
            access,
            pos: Mutex::new(0),
            lock_owner: owner,
        });
        entries.push(ShareEntry {
            handle,
            access,
            share,
        });
        Ok(handle)
    }

    fn read_file(&self, handle: Handle, buf: &mut [u8]) -> ApiResult<usize> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        if !open.access.read {
            return Err(Win32Error::AccessDenied);
        }
        let mut pos = open.pos.lock();
        self.vfs.check_access(
            &open.path,
            open.lock_owner,
            *pos,
            buf.len() as u64,
            LockKind::Shared,
        )?;
        let n = self.vfs.read_stream(&open.path, *pos, buf)?;
        self.model.charge(Cost::Memcpy { bytes: n });
        *pos += n as u64;
        Ok(n)
    }

    fn write_file(&self, handle: Handle, data: &[u8]) -> ApiResult<usize> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        if !open.access.write {
            return Err(Win32Error::AccessDenied);
        }
        let mut pos = open.pos.lock();
        self.vfs.check_access(
            &open.path,
            open.lock_owner,
            *pos,
            data.len() as u64,
            LockKind::Exclusive,
        )?;
        let n = self.vfs.write_stream(&open.path, *pos, data)?;
        self.model.charge(Cost::Memcpy { bytes: n });
        *pos += n as u64;
        Ok(n)
    }

    fn close_handle(&self, handle: Handle) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.remove(handle)?;
        self.vfs.unlock_all(&open.path, open.lock_owner);
        let key = open.path.file_path().to_string();
        let mut sharing = self.sharing.lock();
        if let Some(entries) = sharing.get_mut(&key) {
            entries.retain(|e| e.handle != handle);
            if entries.is_empty() {
                sharing.remove(&key);
            }
        }
        Ok(())
    }

    fn get_file_size(&self, handle: Handle) -> ApiResult<u64> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        Ok(self.vfs.stream_len(&open.path).unwrap_or(0))
    }

    fn set_file_pointer(&self, handle: Handle, offset: i64, method: SeekMethod) -> ApiResult<u64> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        let mut pos = open.pos.lock();
        let base: i64 = match method {
            SeekMethod::Begin => 0,
            SeekMethod::Current => *pos as i64,
            SeekMethod::End => self.vfs.stream_len(&open.path).unwrap_or(0) as i64,
        };
        let target = base
            .checked_add(offset)
            .ok_or(Win32Error::InvalidParameter)?;
        if target < 0 {
            return Err(Win32Error::InvalidParameter);
        }
        *pos = target as u64;
        Ok(*pos)
    }

    fn read_file_scatter(&self, handle: Handle, bufs: &mut [&mut [u8]]) -> ApiResult<usize> {
        let mut total = 0;
        for buf in bufs.iter_mut() {
            let n = self.read_file(handle, buf)?;
            total += n;
            if n < buf.len() {
                break;
            }
        }
        Ok(total)
    }

    fn write_file_gather(&self, handle: Handle, bufs: &[&[u8]]) -> ApiResult<usize> {
        let mut total = 0;
        for buf in bufs {
            total += self.write_file(handle, buf)?;
        }
        Ok(total)
    }

    fn flush_file_buffers(&self, handle: Handle) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        self.handles.get(handle).map(|_| ())
    }

    fn lock_file(&self, handle: Handle, offset: u64, len: u64, exclusive: bool) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        let kind = if exclusive {
            LockKind::Exclusive
        } else {
            LockKind::Shared
        };
        self.vfs
            .lock_range(&open.path, open.lock_owner, offset, len, kind)
            .map_err(Win32Error::from)
    }

    fn unlock_file(&self, handle: Handle, offset: u64, len: u64) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        self.vfs
            .unlock_range(&open.path, open.lock_owner, offset, len)
            .map_err(Win32Error::from)
    }

    fn delete_file(&self, path: &str) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let vpath = Self::parse(path)?;
        // NT refuses deletion while any open lacks FILE_SHARE_DELETE.
        {
            let sharing = self.sharing.lock();
            if let Some(entries) = sharing.get(&vpath.file_path().to_string()) {
                if entries.iter().any(|e| !e.share.delete) {
                    return Err(Win32Error::SharingViolation);
                }
            }
        }
        self.vfs
            .delete(&vpath.file_path())
            .map_err(Win32Error::from)
    }

    fn copy_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let from = Self::parse(from)?;
        let to = Self::parse(to)?;
        self.vfs
            .copy_file(&from.file_path(), &to.file_path())
            .map_err(Win32Error::from)
    }

    fn move_file(&self, from: &str, to: &str) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let from = Self::parse(from)?;
        let to = Self::parse(to)?;
        self.vfs
            .rename(&from.file_path(), &to.file_path())
            .map_err(Win32Error::from)
    }

    fn get_file_attributes(&self, path: &str) -> ApiResult<FileAttributes> {
        self.model.charge(Cost::Syscall);
        let vpath = Self::parse(path)?;
        Ok(self.vfs.stat(&vpath.file_path())?.attributes)
    }

    fn find_files(&self, dir: &str) -> ApiResult<Vec<DirEntry>> {
        self.model.charge(Cost::Syscall);
        let vpath = Self::parse(dir)?;
        let meta = self.vfs.stat(&vpath)?;
        if meta.kind != NodeKind::Directory {
            return Err(Win32Error::Directory);
        }
        self.vfs.list_dir(&vpath).map_err(Win32Error::from)
    }

    fn create_directory(&self, path: &str) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let vpath = Self::parse(path)?;
        self.vfs.create_dir(&vpath).map_err(Win32Error::from)
    }

    fn get_file_information(&self, handle: Handle) -> ApiResult<FileInformation> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        let meta = self.vfs.stat(&open.path.file_path())?;
        Ok(FileInformation {
            size: self.vfs.stream_len(&open.path).unwrap_or(0),
            attributes: meta.attributes,
            created: meta.created,
            modified: meta.modified,
        })
    }

    fn set_end_of_file(&self, handle: Handle) -> ApiResult<()> {
        self.model.charge(Cost::Syscall);
        let open = self.handles.get(handle)?;
        if !open.access.write {
            return Err(Win32Error::AccessDenied);
        }
        let pos = *open.pos.lock();
        self.vfs
            .set_stream_len(&open.path, pos)
            .map_err(Win32Error::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn api() -> PassiveFileApi {
        PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free())
    }

    #[test]
    fn create_write_seek_read() {
        let api = api();
        let h = api
            .create_file("/f.txt", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        assert_eq!(api.write_file(h, b"hello world").expect("write"), 11);
        api.set_file_pointer(h, 6, SeekMethod::Begin).expect("seek");
        let mut buf = [0u8; 5];
        assert_eq!(api.read_file(h, &mut buf).expect("read"), 5);
        assert_eq!(&buf, b"world");
        assert_eq!(api.get_file_size(h).expect("size"), 11);
        api.close_handle(h).expect("close");
    }

    #[test]
    fn dispositions_behave_like_win32() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create new");
        api.write_file(h, b"data").expect("write");
        api.close_handle(h).expect("close");
        assert_eq!(
            api.create_file("/f", Access::read_write(), Disposition::CreateNew),
            Err(Win32Error::FileExists)
        );
        assert_eq!(
            api.create_file("/missing", Access::read_only(), Disposition::OpenExisting),
            Err(Win32Error::FileNotFound)
        );
        // CreateAlways truncates.
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateAlways)
            .expect("create always");
        assert_eq!(api.get_file_size(h).expect("size"), 0);
        api.close_handle(h).expect("close");
        // OpenAlways creates when missing.
        let h = api
            .create_file("/new", Access::read_write(), Disposition::OpenAlways)
            .expect("open always");
        api.close_handle(h).expect("close");
        // TruncateExisting needs write access.
        assert_eq!(
            api.create_file("/new", Access::read_only(), Disposition::TruncateExisting),
            Err(Win32Error::AccessDenied)
        );
    }

    #[test]
    fn access_rights_enforced() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_only(), Disposition::OpenAlways)
            .expect("create");
        let mut buf = [0u8; 1];
        assert_eq!(api.read_file(h, &mut buf).expect("read"), 0);
        assert_eq!(api.write_file(h, b"x"), Err(Win32Error::AccessDenied));
        api.close_handle(h).expect("close");
        let h = api
            .create_file("/f", Access::write_only(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.read_file(h, &mut buf), Err(Win32Error::AccessDenied));
        api.write_file(h, b"x").expect("write");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn seek_variants_and_bad_seek() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"0123456789").expect("write");
        assert_eq!(
            api.set_file_pointer(h, -3, SeekMethod::End).expect("end-3"),
            7
        );
        assert_eq!(
            api.set_file_pointer(h, 1, SeekMethod::Current)
                .expect("cur+1"),
            8
        );
        assert_eq!(
            api.set_file_pointer(h, -20, SeekMethod::Current),
            Err(Win32Error::InvalidParameter)
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file_gather(h, &[b"ab", b"cd", b"ef"])
            .expect("gather");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let mut b1 = [0u8; 3];
        let mut b2 = [0u8; 3];
        let n = api
            .read_file_scatter(h, &mut [&mut b1[..], &mut b2[..]])
            .expect("scatter");
        assert_eq!(n, 6);
        assert_eq!((&b1[..], &b2[..]), (&b"abc"[..], &b"def"[..]));
        api.close_handle(h).expect("close");
    }

    #[test]
    fn locks_block_other_handles() {
        let api = api();
        let h1 = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("h1");
        api.write_file(h1, b"0123456789").expect("seed");
        let h2 = api
            .create_file("/f", Access::read_write(), Disposition::OpenExisting)
            .expect("h2");
        api.lock_file(h1, 0, 5, true).expect("lock");
        api.set_file_pointer(h2, 0, SeekMethod::Begin)
            .expect("seek");
        assert_eq!(api.write_file(h2, b"XX"), Err(Win32Error::LockViolation));
        // Reads under an exclusive lock by another handle also fail.
        let mut buf = [0u8; 2];
        assert_eq!(api.read_file(h2, &mut buf), Err(Win32Error::LockViolation));
        api.unlock_file(h1, 0, 5).expect("unlock");
        assert_eq!(api.write_file(h2, b"XX").expect("write"), 2);
        api.close_handle(h1).expect("close1");
        api.close_handle(h2).expect("close2");
    }

    #[test]
    fn close_releases_locks() {
        let api = api();
        let h1 = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("h1");
        api.write_file(h1, b"abcdef").expect("seed");
        api.lock_file(h1, 0, 6, true).expect("lock");
        api.close_handle(h1).expect("close");
        let h2 = api
            .create_file("/f", Access::read_write(), Disposition::OpenExisting)
            .expect("h2");
        api.write_file(h2, b"zz").expect("write freely");
        api.close_handle(h2).expect("close");
    }

    #[test]
    fn named_stream_io_via_api() {
        let api = api();
        let h = api
            .create_file("/f.af:active", Access::read_write(), Disposition::CreateNew)
            .expect("create stream handle");
        api.write_file(h, b"spec").expect("write");
        api.close_handle(h).expect("close");
        let h = api
            .create_file("/f.af", Access::read_only(), Disposition::OpenExisting)
            .expect("default stream");
        assert_eq!(
            api.get_file_size(h).expect("size"),
            0,
            "default stream untouched"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn directory_operations() {
        let api = api();
        api.create_directory("/d").expect("mkdir");
        assert_eq!(api.create_directory("/d"), Err(Win32Error::AlreadyExists));
        let h = api
            .create_file("/d/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.close_handle(h).expect("close");
        let listing = api.find_files("/d").expect("list");
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "f");
        assert_eq!(api.find_files("/d/f"), Err(Win32Error::Directory));
        assert_eq!(
            api.create_file("/d", Access::read_only(), Disposition::OpenExisting),
            Err(Win32Error::Directory)
        );
    }

    #[test]
    fn copy_and_move_files() {
        let api = api();
        let h = api
            .create_file("/a", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"payload").expect("write");
        api.close_handle(h).expect("close");
        api.copy_file("/a", "/b").expect("copy");
        api.move_file("/b", "/c").expect("move");
        let h = api
            .create_file("/c", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 7];
        assert_eq!(api.read_file(h, &mut buf).expect("read"), 7);
        assert_eq!(&buf, b"payload");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn set_end_of_file_truncates_at_pointer() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"0123456789").expect("write");
        api.set_file_pointer(h, 4, SeekMethod::Begin).expect("seek");
        api.set_end_of_file(h).expect("truncate");
        assert_eq!(api.get_file_size(h).expect("size"), 4);
        api.close_handle(h).expect("close");
    }

    #[test]
    fn file_information_reflects_state() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.write_file(h, b"xyz").expect("write");
        let info = api.get_file_information(h).expect("info");
        assert_eq!(info.size, 3);
        assert!(info.modified >= info.created);
        api.close_handle(h).expect("close");
    }

    #[test]
    fn operations_on_closed_handle_fail() {
        let api = api();
        let h = api
            .create_file("/f", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        api.close_handle(h).expect("close");
        let mut buf = [0u8; 1];
        assert_eq!(api.read_file(h, &mut buf), Err(Win32Error::InvalidHandle));
        assert_eq!(api.write_file(h, b"x"), Err(Win32Error::InvalidHandle));
        assert_eq!(api.close_handle(h), Err(Win32Error::InvalidHandle));
    }
}
