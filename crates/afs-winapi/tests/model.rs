//! Model-based property test of the Win32-shaped API: the file pointer
//! and read/write semantics against a cursor-over-Vec model.

use std::sync::Arc;

use afs_sim::CostModel;
use afs_vfs::Vfs;
use afs_winapi::{Access, Disposition, FileApi, PassiveFileApi, SeekMethod, Win32Error};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Write(Vec<u8>),
    Read(usize),
    Seek(i64, u8), // method selector 0..3
    SetEof,
    Size,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..48).prop_map(Op::Write),
        (1usize..48).prop_map(Op::Read),
        (-64i64..256, 0u8..3).prop_map(|(o, m)| Op::Seek(o, m)),
        Just(Op::SetEof),
        Just(Op::Size),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn file_pointer_semantics_match_model(ops in proptest::collection::vec(op(), 1..40)) {
        let api = PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free());
        let h = api
            .create_file("/m", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        let mut content: Vec<u8> = Vec::new();
        let mut pos: u64 = 0;

        for op in &ops {
            match op {
                Op::Write(data) => {
                    let n = api.write_file(h, data).expect("write");
                    prop_assert_eq!(n, data.len());
                    let end = pos as usize + data.len();
                    if content.len() < end {
                        content.resize(end, 0);
                    }
                    content[pos as usize..end].copy_from_slice(data);
                    pos += data.len() as u64;
                }
                Op::Read(len) => {
                    let mut buf = vec![0u8; *len];
                    let n = api.read_file(h, &mut buf).expect("read");
                    let start = (pos as usize).min(content.len());
                    let expect = (*len).min(content.len() - start);
                    prop_assert_eq!(n, expect);
                    prop_assert_eq!(&buf[..n], &content[start..start + n]);
                    pos += n as u64;
                }
                Op::Seek(offset, method) => {
                    let (method, base) = match method {
                        0 => (SeekMethod::Begin, 0i64),
                        1 => (SeekMethod::Current, pos as i64),
                        _ => (SeekMethod::End, content.len() as i64),
                    };
                    let target = base + offset;
                    let real = api.set_file_pointer(h, *offset, method);
                    if target < 0 {
                        prop_assert_eq!(real, Err(Win32Error::InvalidParameter));
                    } else {
                        prop_assert_eq!(real.expect("seek"), target as u64);
                        pos = target as u64;
                    }
                }
                Op::SetEof => {
                    api.set_end_of_file(h).expect("set eof");
                    content.resize(pos as usize, 0);
                }
                Op::Size => {
                    prop_assert_eq!(api.get_file_size(h).expect("size"), content.len() as u64);
                }
            }
        }
        api.close_handle(h).expect("close");
    }

    #[test]
    fn scatter_gather_equals_flat_io(
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 1..6)
    ) {
        let api = PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free());
        let h = api
            .create_file("/sg", Access::read_write(), Disposition::CreateNew)
            .expect("create");
        let refs: Vec<&[u8]> = chunks.iter().map(Vec::as_slice).collect();
        let flat: Vec<u8> = chunks.concat();
        let n = api.write_file_gather(h, &refs).expect("gather");
        prop_assert_eq!(n, flat.len());
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let mut bufs: Vec<Vec<u8>> = chunks.iter().map(|c| vec![0u8; c.len()]).collect();
        let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(Vec::as_mut_slice).collect();
        let n = api.read_file_scatter(h, &mut views).expect("scatter");
        prop_assert_eq!(n, flat.len());
        prop_assert_eq!(bufs.concat(), flat);
        api.close_handle(h).expect("close");
    }
}
