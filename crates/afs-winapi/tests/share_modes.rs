//! NT share-mode semantics: `dwShareMode` admission against live opens.

use std::sync::Arc;

use afs_sim::CostModel;
use afs_vfs::Vfs;
use afs_winapi::{Access, Disposition, FileApi, PassiveFileApi, ShareMode, Win32Error};

fn api() -> PassiveFileApi {
    let api = PassiveFileApi::new(Arc::new(Vfs::new()), CostModel::free());
    let h = api
        .create_file("/f", Access::read_write(), Disposition::CreateNew)
        .expect("seed");
    api.write_file(h, b"content").expect("seed write");
    api.close_handle(h).expect("close");
    api
}

#[test]
fn exclusive_open_blocks_everyone() {
    let api = api();
    let h = api
        .create_file_shared(
            "/f",
            Access::read_write(),
            ShareMode::none(),
            Disposition::OpenExisting,
        )
        .expect("exclusive open");
    assert_eq!(
        api.create_file_shared(
            "/f",
            Access::read_only(),
            ShareMode::all(),
            Disposition::OpenExisting
        ),
        Err(Win32Error::SharingViolation)
    );
    api.close_handle(h).expect("close");
    // After close the file is free again.
    let h = api
        .create_file("/f", Access::read_only(), Disposition::OpenExisting)
        .expect("open after close");
    api.close_handle(h).expect("close");
}

#[test]
fn share_read_allows_readers_blocks_writers() {
    let api = api();
    let h = api
        .create_file_shared(
            "/f",
            Access::read_only(),
            ShareMode::read_only(),
            Disposition::OpenExisting,
        )
        .expect("open share-read");
    let r = api
        .create_file_shared(
            "/f",
            Access::read_only(),
            ShareMode::read_only(),
            Disposition::OpenExisting,
        )
        .expect("concurrent reader fine");
    assert_eq!(
        api.create_file_shared(
            "/f",
            Access::write_only(),
            ShareMode::all(),
            Disposition::OpenExisting
        ),
        Err(Win32Error::SharingViolation),
        "writer denied by the readers' share mode"
    );
    api.close_handle(h).expect("close");
    api.close_handle(r).expect("close");
}

#[test]
fn new_open_must_share_back() {
    let api = api();
    // First open: read access, fully sharing.
    let h = api
        .create_file_shared(
            "/f",
            Access::read_only(),
            ShareMode::all(),
            Disposition::OpenExisting,
        )
        .expect("first");
    // Second open refuses to share read — but the first open reads.
    assert_eq!(
        api.create_file_shared(
            "/f",
            Access::write_only(),
            ShareMode {
                read: false,
                write: true,
                delete: true
            },
            Disposition::OpenExisting
        ),
        Err(Win32Error::SharingViolation)
    );
    api.close_handle(h).expect("close");
}

#[test]
fn delete_requires_share_delete_from_all_opens() {
    let api = api();
    let h = api
        .create_file_shared(
            "/f",
            Access::read_only(),
            ShareMode::read_write(),
            Disposition::OpenExisting,
        )
        .expect("open without share-delete");
    assert_eq!(api.delete_file("/f"), Err(Win32Error::SharingViolation));
    api.close_handle(h).expect("close");
    api.delete_file("/f").expect("deletable after close");
}

#[test]
fn plain_create_file_is_fully_shared() {
    let api = api();
    let a = api
        .create_file("/f", Access::read_write(), Disposition::OpenExisting)
        .expect("a");
    let b = api
        .create_file("/f", Access::read_write(), Disposition::OpenExisting)
        .expect("b — default opens never conflict");
    api.close_handle(a).expect("close");
    api.close_handle(b).expect("close");
}

#[test]
fn sharing_is_per_file() {
    let api = api();
    let h = api
        .create_file_shared(
            "/f",
            Access::read_write(),
            ShareMode::none(),
            Disposition::OpenExisting,
        )
        .expect("exclusive on /f");
    // A different file is unaffected.
    let g = api
        .create_file("/g", Access::read_write(), Disposition::CreateNew)
        .expect("independent file");
    api.close_handle(h).expect("close");
    api.close_handle(g).expect("close");
}
