//! Per-operation observability: the [`OpTrace`] ring.
//!
//! The paper's §4 analysis reasons about each strategy in terms of *what
//! one operation costs*: how many protection-domain crossings, how many
//! buffer copies, how many bytes moved. The [`CostModel`](crate::CostModel)
//! counters aggregate those quantities globally; an [`OpTrace`] attributes
//! them to individual application-visible operations, so a run can be
//! audited against the paper's table (process strategies: 2 kernel copies
//! and 2 process switches per transfer; DLL-with-thread: 1 user copy and
//! 2 thread switches; DLL-only: nothing).
//!
//! The strategy handles record one [`TraceRecord`] per completed
//! operation. Records land in a bounded ring (old entries drop) *and* in a
//! cumulative per-(strategy, op) aggregate, so long benchmark runs keep
//! exact totals while interactive tools can still inspect recent history.

use std::collections::VecDeque;
use std::fmt;

use parking_lot::Mutex;

/// Which application-visible operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// `ReadFile`.
    Read,
    /// `ReadFileScatter`.
    ReadScatter,
    /// `WriteFile` (and each buffer of `WriteFileGather`).
    Write,
    /// `GetFileSize`.
    Size,
    /// `FlushFileBuffers`.
    Flush,
    /// `DeviceIoControl`.
    Control,
    /// `CloseHandle`.
    Close,
}

impl OpKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Read => "read",
            OpKind::ReadScatter => "scatter",
            OpKind::Write => "write",
            OpKind::Size => "size",
            OpKind::Flush => "flush",
            OpKind::Control => "control",
            OpKind::Close => "close",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed operation, as observed at the application-side handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Strategy label (e.g. `"Process"`, `"Thread"`, `"DLL"`).
    pub strategy: &'static str,
    /// What the operation was.
    pub op: OpKind,
    /// Payload bytes moved by this operation.
    pub bytes: u64,
    /// Virtual nanoseconds the operation took on the calling thread.
    pub elapsed_ns: u64,
    /// Protection-domain crossings (process + thread switches) charged
    /// while the operation ran.
    pub crossings: u64,
    /// Buffer copies (kernel pipe copies + user memcpys) charged while the
    /// operation ran.
    pub copies: u64,
}

/// Cumulative totals for one (strategy, op) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSummary {
    /// Strategy label.
    pub strategy: &'static str,
    /// Operation kind.
    pub op: OpKind,
    /// Number of operations recorded.
    pub count: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Total virtual nanoseconds.
    pub elapsed_ns: u64,
    /// Total crossings.
    pub crossings: u64,
    /// Total copies.
    pub copies: u64,
}

impl OpSummary {
    /// Mean payload bytes per operation.
    pub fn bytes_per_op(&self) -> f64 {
        self.per(self.bytes)
    }

    /// Mean virtual microseconds per operation.
    pub fn micros_per_op(&self) -> f64 {
        self.per(self.elapsed_ns) / 1_000.0
    }

    /// Mean domain crossings per operation.
    pub fn crossings_per_op(&self) -> f64 {
        self.per(self.crossings)
    }

    /// Mean buffer copies per operation.
    pub fn copies_per_op(&self) -> f64 {
        self.per(self.copies)
    }

    fn per(&self, total: u64) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            total as f64 / self.count as f64
        }
    }
}

/// Default number of recent records the ring retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug, Default)]
struct TraceState {
    ring: VecDeque<TraceRecord>,
    totals: Vec<OpSummary>,
}

/// A bounded ring of recent [`TraceRecord`]s plus exact cumulative
/// per-(strategy, op) totals. Cheap to share behind an `Arc`; recording is
/// one short mutex hold.
#[derive(Debug)]
pub struct OpTrace {
    capacity: usize,
    state: Mutex<TraceState>,
}

impl OpTrace {
    /// Creates a trace retaining [`DEFAULT_TRACE_CAPACITY`] recent records.
    pub fn new() -> Self {
        OpTrace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a trace retaining up to `capacity` recent records (totals
    /// are always exact regardless of capacity).
    pub fn with_capacity(capacity: usize) -> Self {
        OpTrace {
            capacity: capacity.max(1),
            state: Mutex::new(TraceState::default()),
        }
    }

    /// Appends one record, evicting the oldest if the ring is full.
    pub fn record(&self, record: TraceRecord) {
        let mut state = self.state.lock();
        if let Some(total) = state
            .totals
            .iter_mut()
            .find(|t| t.strategy == record.strategy && t.op == record.op)
        {
            total.count += 1;
            total.bytes += record.bytes;
            total.elapsed_ns += record.elapsed_ns;
            total.crossings += record.crossings;
            total.copies += record.copies;
        } else {
            state.totals.push(OpSummary {
                strategy: record.strategy,
                op: record.op,
                count: 1,
                bytes: record.bytes,
                elapsed_ns: record.elapsed_ns,
                crossings: record.crossings,
                copies: record.copies,
            });
        }
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(record);
    }

    /// Copies out the retained recent records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.state.lock().ring.iter().cloned().collect()
    }

    /// Cumulative per-(strategy, op) totals, ordered by strategy then op.
    pub fn summary(&self) -> Vec<OpSummary> {
        let mut totals = self.state.lock().totals.clone();
        totals.sort_by(|a, b| a.strategy.cmp(b.strategy).then(a.op.cmp(&b.op)));
        totals
    }

    /// Total number of operations ever recorded.
    pub fn len(&self) -> u64 {
        self.state.lock().totals.iter().map(|t| t.count).sum()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all records and totals.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.ring.clear();
        state.totals.clear();
    }
}

impl Default for OpTrace {
    fn default() -> Self {
        OpTrace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(strategy: &'static str, op: OpKind, bytes: u64) -> TraceRecord {
        TraceRecord {
            strategy,
            op,
            bytes,
            elapsed_ns: 1_000,
            crossings: 2,
            copies: 2,
        }
    }

    #[test]
    fn records_and_summarises() {
        let trace = OpTrace::new();
        trace.record(rec("Process", OpKind::Read, 100));
        trace.record(rec("Process", OpKind::Read, 300));
        trace.record(rec("Thread", OpKind::Write, 50));
        assert_eq!(trace.len(), 3);
        let summary = trace.summary();
        assert_eq!(summary.len(), 2);
        let reads = &summary[0];
        assert_eq!(
            (reads.strategy, reads.op, reads.count),
            ("Process", OpKind::Read, 2)
        );
        assert_eq!(reads.bytes, 400);
        assert!((reads.bytes_per_op() - 200.0).abs() < f64::EPSILON);
        assert!((reads.crossings_per_op() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn ring_is_bounded_but_totals_are_exact() {
        let trace = OpTrace::with_capacity(4);
        for i in 0..10 {
            trace.record(rec("DLL", OpKind::Read, i));
        }
        assert_eq!(trace.records().len(), 4);
        assert_eq!(trace.records()[0].bytes, 6, "oldest records evicted");
        assert_eq!(trace.summary()[0].count, 10, "totals survive eviction");
    }

    #[test]
    fn clear_resets_everything() {
        let trace = OpTrace::new();
        trace.record(rec("DLL", OpKind::Close, 0));
        assert!(!trace.is_empty());
        trace.clear();
        assert!(trace.is_empty());
        assert!(trace.records().is_empty());
    }

    #[test]
    fn micros_per_op_divides() {
        let trace = OpTrace::new();
        trace.record(rec("Thread", OpKind::Read, 8));
        trace.record(rec("Thread", OpKind::Read, 8));
        let s = trace.summary();
        assert!((s[0].micros_per_op() - 1.0).abs() < f64::EPSILON);
    }
}
