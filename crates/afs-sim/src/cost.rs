//! The hardware cost model.
//!
//! Each parameter corresponds to a cost the paper's prototype paid on its
//! 300 MHz Pentium II / 100 Mbps Fast Ethernet testbed. Substrate code
//! charges abstract [`Cost`]s; the model translates them into nanoseconds
//! and advances the caller's virtual clock. A [`CostSnapshot`] additionally
//! counts how many of each kind of charge happened, which backs the
//! `figure6 --copies` diagnostic table.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::clock;

/// Which protection boundary a handoff crosses. Determines whether a
/// blocking handoff costs a process context switch, a thread switch, or
/// nothing (inline call).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrossingKind {
    /// Between two processes (the paper's process-based strategies).
    InterProcess,
    /// Between two threads of one process (the DLL-with-thread strategy).
    InterThread,
    /// No boundary (the DLL-only strategy).
    None,
}

impl CrossingKind {
    /// Number of domain crossings a single round trip over this boundary
    /// performs (out and back).
    pub fn round_trip_switches(self) -> u64 {
        match self {
            CrossingKind::None => 0,
            _ => 2,
        }
    }
}

/// An abstract cost charged by substrate code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cost {
    /// Entering and leaving the kernel once.
    Syscall,
    /// A full process context switch (address-space change).
    ProcessSwitch,
    /// A same-process thread switch.
    ThreadSwitch,
    /// A user-level memory copy of `bytes`.
    Memcpy {
        /// Number of bytes.
        bytes: usize,
    },
    /// One user<->kernel copy of `bytes` (half of a pipe transfer).
    PipeCopy {
        /// Number of bytes.
        bytes: usize,
    },
    /// Fixed per-message pipe bookkeeping (buffer management, wakeup).
    PipeMessage,
    /// A network round trip (request out, response header back).
    NetRoundTrip,
    /// Streaming `bytes` over the network (no round trip).
    NetBytes {
        /// Number of bytes.
        bytes: usize,
    },
    /// Seek + rotational latency of one disk access.
    DiskAccess,
    /// Transferring `bytes` from/to the disk surface.
    DiskReadBytes {
        /// Number of bytes.
        bytes: usize,
    },
    /// Transferring `bytes` to the disk write cache.
    DiskWriteBytes {
        /// Number of bytes.
        bytes: usize,
    },
    /// Signalling an event object (SetEvent + wait-satisfy).
    EventSignal,
    /// A context switch across the given boundary.
    Crossing(CrossingKind),
}

/// Calibrated per-operation costs, all in nanoseconds (per byte where
/// noted).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable name, e.g. `"pentium-ii-300"`.
    pub name: &'static str,
    /// One kernel entry/exit.
    pub syscall_ns: u64,
    /// One process (address space) context switch.
    pub process_switch_ns: u64,
    /// One intra-process thread switch.
    pub thread_switch_ns: u64,
    /// User-level memcpy, per byte.
    pub memcpy_ns_per_byte: u64,
    /// One user<->kernel pipe copy, per byte.
    pub pipe_copy_ns_per_byte: u64,
    /// Fixed overhead per pipe message.
    pub pipe_message_ns: u64,
    /// Small-message network round-trip time.
    pub net_round_trip_ns: u64,
    /// Network streaming cost per byte (100 Mbps = 80 ns/B).
    pub net_ns_per_byte: u64,
    /// Disk access (seek + rotation) latency.
    pub disk_access_ns: u64,
    /// Disk read transfer per byte (through the filesystem).
    pub disk_read_ns_per_byte: u64,
    /// Disk write transfer per byte (into the write cache).
    pub disk_write_ns_per_byte: u64,
    /// Signalling an event object.
    pub event_signal_ns: u64,
}

impl HardwareProfile {
    /// The paper's testbed: 300 MHz Pentium II PCs, Windows NT, 100 Mbps
    /// Fast Ethernet (§6). Values are calibrated so that the regenerated
    /// Figure 6 lands in the same range as the published plots; the *shape*
    /// claims (ordering, growth with block size, read/write asymmetry) are
    /// insensitive to modest recalibration — see EXPERIMENTS.md.
    pub fn pentium_ii_300() -> Self {
        HardwareProfile {
            name: "pentium-ii-300",
            syscall_ns: 2_000,
            process_switch_ns: 15_000,
            thread_switch_ns: 5_000,
            memcpy_ns_per_byte: 12,
            pipe_copy_ns_per_byte: 30,
            pipe_message_ns: 10_000,
            net_round_trip_ns: 130_000,
            net_ns_per_byte: 80,
            disk_access_ns: 250_000,
            disk_read_ns_per_byte: 120,
            disk_write_ns_per_byte: 60,
            event_signal_ns: 2_000,
        }
    }

    /// A roughly contemporary machine, used by ablation benches to show how
    /// the strategy trade-off shifts when context switches get cheaper
    /// faster than memory copies do.
    pub fn modern() -> Self {
        HardwareProfile {
            name: "modern",
            syscall_ns: 300,
            process_switch_ns: 2_000,
            thread_switch_ns: 700,
            memcpy_ns_per_byte: 1,
            pipe_copy_ns_per_byte: 1,
            pipe_message_ns: 500,
            net_round_trip_ns: 30_000,
            net_ns_per_byte: 1,
            disk_access_ns: 80_000,
            disk_read_ns_per_byte: 2,
            disk_write_ns_per_byte: 1,
            event_signal_ns: 200,
        }
    }

    /// All-zero profile: charges advance no time. Used by wall-clock
    /// (Criterion) benches and by semantics-only tests.
    pub fn free() -> Self {
        HardwareProfile {
            name: "free",
            syscall_ns: 0,
            process_switch_ns: 0,
            thread_switch_ns: 0,
            memcpy_ns_per_byte: 0,
            pipe_copy_ns_per_byte: 0,
            pipe_message_ns: 0,
            net_round_trip_ns: 0,
            net_ns_per_byte: 0,
            disk_access_ns: 0,
            disk_read_ns_per_byte: 0,
            disk_write_ns_per_byte: 0,
            event_signal_ns: 0,
        }
    }

    /// Nanoseconds for one instance of `cost` under this profile.
    pub fn price(&self, cost: Cost) -> u64 {
        match cost {
            Cost::Syscall => self.syscall_ns,
            Cost::ProcessSwitch => self.process_switch_ns,
            Cost::ThreadSwitch => self.thread_switch_ns,
            Cost::Memcpy { bytes } => self.memcpy_ns_per_byte * bytes as u64,
            Cost::PipeCopy { bytes } => self.pipe_copy_ns_per_byte * bytes as u64,
            Cost::PipeMessage => self.pipe_message_ns,
            Cost::NetRoundTrip => self.net_round_trip_ns,
            Cost::NetBytes { bytes } => self.net_ns_per_byte * bytes as u64,
            Cost::DiskAccess => self.disk_access_ns,
            Cost::DiskReadBytes { bytes } => self.disk_read_ns_per_byte * bytes as u64,
            Cost::DiskWriteBytes { bytes } => self.disk_write_ns_per_byte * bytes as u64,
            Cost::EventSignal => self.event_signal_ns,
            Cost::Crossing(kind) => match kind {
                CrossingKind::InterProcess => self.process_switch_ns,
                CrossingKind::InterThread => self.thread_switch_ns,
                CrossingKind::None => 0,
            },
        }
    }
}

/// Per-kind counters accumulated by a [`CostModel`].
///
/// The counters are global across all threads sharing the model; they back
/// the "copies per operation" diagnostic of the benchmark harness.
#[derive(Debug, Default)]
struct Counters {
    syscalls: AtomicU64,
    process_switches: AtomicU64,
    thread_switches: AtomicU64,
    memcpy_bytes: AtomicU64,
    pipe_copy_bytes: AtomicU64,
    pipe_messages: AtomicU64,
    net_round_trips: AtomicU64,
    net_bytes: AtomicU64,
    disk_accesses: AtomicU64,
    disk_bytes: AtomicU64,
    event_signals: AtomicU64,
    copies: AtomicU64,
}

/// A point-in-time copy of the model's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    /// Kernel entries.
    pub syscalls: u64,
    /// Process context switches.
    pub process_switches: u64,
    /// Thread switches.
    pub thread_switches: u64,
    /// Bytes moved by user-level memcpy.
    pub memcpy_bytes: u64,
    /// Bytes moved through pipe (user<->kernel) copies.
    pub pipe_copy_bytes: u64,
    /// Pipe messages.
    pub pipe_messages: u64,
    /// Network round trips.
    pub net_round_trips: u64,
    /// Bytes streamed over the network.
    pub net_bytes: u64,
    /// Disk accesses.
    pub disk_accesses: u64,
    /// Bytes moved to/from disk.
    pub disk_bytes: u64,
    /// Event signals.
    pub event_signals: u64,
    /// Total buffer copies of any kind (memcpy + pipe copies), counted per
    /// copy operation rather than per byte.
    pub copies: u64,
}

impl CostSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            process_switches: self
                .process_switches
                .saturating_sub(earlier.process_switches),
            thread_switches: self.thread_switches.saturating_sub(earlier.thread_switches),
            memcpy_bytes: self.memcpy_bytes.saturating_sub(earlier.memcpy_bytes),
            pipe_copy_bytes: self.pipe_copy_bytes.saturating_sub(earlier.pipe_copy_bytes),
            pipe_messages: self.pipe_messages.saturating_sub(earlier.pipe_messages),
            net_round_trips: self.net_round_trips.saturating_sub(earlier.net_round_trips),
            net_bytes: self.net_bytes.saturating_sub(earlier.net_bytes),
            disk_accesses: self.disk_accesses.saturating_sub(earlier.disk_accesses),
            disk_bytes: self.disk_bytes.saturating_sub(earlier.disk_bytes),
            event_signals: self.event_signals.saturating_sub(earlier.event_signals),
            copies: self.copies.saturating_sub(earlier.copies),
        }
    }
}

/// Translates abstract costs into virtual time and counts them.
///
/// Cloning is cheap (`Arc` internally); clones share counters.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: Arc<HardwareProfile>,
    counters: Arc<Counters>,
}

impl CostModel {
    /// Creates a model from a profile.
    pub fn new(profile: HardwareProfile) -> Self {
        CostModel {
            profile: Arc::new(profile),
            counters: Arc::new(Counters::default()),
        }
    }

    /// A model that charges nothing (wall-clock mode).
    pub fn free() -> Self {
        CostModel::new(HardwareProfile::free())
    }

    /// The profile this model prices against.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Charges `cost` to the current thread's virtual clock and updates the
    /// shared counters. If the thread has no clock the time is dropped but
    /// the counters still move (so copy accounting works in wall-clock
    /// benches too).
    pub fn charge(&self, cost: Cost) {
        self.count(cost);
        let ns = self.profile.price(cost);
        if ns > 0 {
            clock::advance(ns);
        }
    }

    /// Prices a cost without charging it; useful for analytic assertions in
    /// tests.
    pub fn price(&self, cost: Cost) -> u64 {
        self.profile.price(cost)
    }

    fn count(&self, cost: Cost) {
        let c = &*self.counters;
        match cost {
            Cost::Syscall => {
                c.syscalls.fetch_add(1, Ordering::Relaxed);
            }
            Cost::ProcessSwitch | Cost::Crossing(CrossingKind::InterProcess) => {
                c.process_switches.fetch_add(1, Ordering::Relaxed);
            }
            Cost::ThreadSwitch | Cost::Crossing(CrossingKind::InterThread) => {
                c.thread_switches.fetch_add(1, Ordering::Relaxed);
            }
            Cost::Crossing(CrossingKind::None) => {}
            Cost::Memcpy { bytes } => {
                c.memcpy_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                c.copies.fetch_add(1, Ordering::Relaxed);
            }
            Cost::PipeCopy { bytes } => {
                c.pipe_copy_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
                c.copies.fetch_add(1, Ordering::Relaxed);
            }
            Cost::PipeMessage => {
                c.pipe_messages.fetch_add(1, Ordering::Relaxed);
            }
            Cost::NetRoundTrip => {
                c.net_round_trips.fetch_add(1, Ordering::Relaxed);
            }
            Cost::NetBytes { bytes } => {
                c.net_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            Cost::DiskAccess => {
                c.disk_accesses.fetch_add(1, Ordering::Relaxed);
            }
            Cost::DiskReadBytes { bytes } | Cost::DiskWriteBytes { bytes } => {
                c.disk_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            Cost::EventSignal => {
                c.event_signals.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Copies out the current counters.
    pub fn snapshot(&self) -> CostSnapshot {
        let c = &*self.counters;
        CostSnapshot {
            syscalls: c.syscalls.load(Ordering::Relaxed),
            process_switches: c.process_switches.load(Ordering::Relaxed),
            thread_switches: c.thread_switches.load(Ordering::Relaxed),
            memcpy_bytes: c.memcpy_bytes.load(Ordering::Relaxed),
            pipe_copy_bytes: c.pipe_copy_bytes.load(Ordering::Relaxed),
            pipe_messages: c.pipe_messages.load(Ordering::Relaxed),
            net_round_trips: c.net_round_trips.load(Ordering::Relaxed),
            net_bytes: c.net_bytes.load(Ordering::Relaxed),
            disk_accesses: c.disk_accesses.load(Ordering::Relaxed),
            disk_bytes: c.disk_bytes.load(Ordering::Relaxed),
            event_signals: c.event_signals.load(Ordering::Relaxed),
            copies: c.copies.load(Ordering::Relaxed),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock;

    #[test]
    fn prices_follow_profile() {
        let p = HardwareProfile::pentium_ii_300();
        assert_eq!(p.price(Cost::Syscall), p.syscall_ns);
        assert_eq!(
            p.price(Cost::Memcpy { bytes: 10 }),
            10 * p.memcpy_ns_per_byte
        );
        assert_eq!(
            p.price(Cost::Crossing(CrossingKind::InterProcess)),
            p.process_switch_ns
        );
        assert_eq!(p.price(Cost::Crossing(CrossingKind::None)), 0);
    }

    #[test]
    fn charge_advances_installed_clock() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        let _g = clock::install(0);
        model.charge(Cost::Syscall);
        assert_eq!(clock::now(), model.price(Cost::Syscall));
    }

    #[test]
    fn charge_without_clock_counts_but_keeps_time_zero() {
        let model = CostModel::new(HardwareProfile::pentium_ii_300());
        model.charge(Cost::PipeCopy { bytes: 128 });
        assert_eq!(clock::now(), 0);
        let snap = model.snapshot();
        assert_eq!(snap.pipe_copy_bytes, 128);
        assert_eq!(snap.copies, 1);
    }

    #[test]
    fn free_model_is_zero_cost() {
        let model = CostModel::free();
        let _g = clock::install(0);
        model.charge(Cost::NetRoundTrip);
        model.charge(Cost::DiskAccess);
        assert_eq!(clock::now(), 0);
        // Counters still move.
        assert_eq!(model.snapshot().net_round_trips, 1);
    }

    #[test]
    fn snapshot_since_subtracts() {
        let model = CostModel::free();
        model.charge(Cost::Syscall);
        let a = model.snapshot();
        model.charge(Cost::Syscall);
        model.charge(Cost::Memcpy { bytes: 7 });
        let b = model.snapshot();
        let d = b.since(&a);
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.memcpy_bytes, 7);
    }

    #[test]
    fn clones_share_counters() {
        let model = CostModel::free();
        let clone = model.clone();
        clone.charge(Cost::EventSignal);
        assert_eq!(model.snapshot().event_signals, 1);
    }

    #[test]
    fn round_trip_switch_counts() {
        assert_eq!(CrossingKind::InterProcess.round_trip_switches(), 2);
        assert_eq!(CrossingKind::InterThread.round_trip_switches(), 2);
        assert_eq!(CrossingKind::None.round_trip_switches(), 0);
    }
}
