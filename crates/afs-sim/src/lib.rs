#![warn(missing_docs)]
//! Deterministic virtual-time simulation substrate for the Active Files
//! reproduction.
//!
//! The original paper measured its prototype on a 300 MHz Pentium II cluster
//! connected by 100 Mbps Fast Ethernet. We cannot re-run that hardware, so
//! every substrate component in this workspace (pipes, shared buffers, the
//! simulated network, the simulated disk) *charges* the cost of what it does
//! to a per-thread **virtual clock**. Charges are expressed through a
//! [`CostModel`] whose parameters are calibrated to the paper's platform
//! (see [`HardwareProfile::pentium_ii_300`]).
//!
//! The design is a lightweight Lamport-style virtual time scheme:
//!
//! * every simulated thread owns a thread-local clock ([`clock`]),
//! * local work advances the local clock ([`CostModel::charge`]),
//! * data handed between threads carries the producer's timestamp, and the
//!   consumer synchronises its clock to `max(own, producer)` when it picks
//!   the data up ([`clock::sync_to`]).
//!
//! This reproduces the two behaviours Figure 6 of the paper hinges on
//! without any wall-clock timing:
//!
//! * **reads are latency-bound** — the application blocks until the sentinel
//!   produced the data, so the sentinel's work lands on the application's
//!   critical path, and
//! * **writes are bandwidth-bound** — the application returns as soon as the
//!   bytes are in the pipe; only when the bounded pipe fills up does
//!   backpressure transfer the sentinel's drain rate onto the application
//!   ("data streaming hides some of the latency", §6).
//!
//! When no virtual clock is registered on the current thread every charge is
//! a no-op, so the exact same component code can be benchmarked under
//! Criterion for wall-clock measurements.
//!
//! # Examples
//!
//! ```
//! use afs_sim::{clock, Cost, CostModel, HardwareProfile};
//!
//! let model = CostModel::new(HardwareProfile::pentium_ii_300());
//! let _guard = clock::install(0);
//! model.charge(Cost::Syscall);
//! model.charge(Cost::Memcpy { bytes: 1024 });
//! assert!(clock::now() > 0);
//! ```

pub mod clock;
pub mod cost;
pub mod rng;
pub mod stats;
pub mod trace;

pub use clock::{ClockGuard, SimTime};
pub use cost::{Cost, CostModel, CostSnapshot, CrossingKind, HardwareProfile};
pub use rng::SimRng;
pub use stats::{Series, Summary};
pub use trace::{OpKind, OpSummary, OpTrace, TraceRecord, DEFAULT_TRACE_CAPACITY};
