//! A tiny deterministic RNG for fault schedules and retry jitter.
//!
//! The simulation must be reproducible run to run and machine to machine:
//! every random decision (injected latency jitter, probabilistic message
//! loss, retry backoff jitter) draws from a [`SimRng`] seeded from the
//! world's seed, which in turn honours the `AFS_TEST_SEED` environment
//! variable so CI can sweep seeds deterministically.
//!
//! The generator is SplitMix64: tiny, fast, full-period over 2^64, and —
//! unlike the vendored `rand` shim — guaranteed stable output forever,
//! which the seed-sweep CI job relies on.

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives a generator from `seed` and a label (e.g. a service name),
    /// so different services seeded from one world seed draw independent
    /// streams.
    pub fn derive(seed: u64, label: &str) -> Self {
        SimRng::new(seed ^ fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Modulo bias is irrelevant at the scales used here (jitter
        // windows, ppm rolls), and determinism matters more than
        // uniformity in the last decimal.
        self.next_u64() % bound
    }

    /// One roll with probability `num_ppm` parts-per-million.
    pub fn roll_ppm(&mut self, num_ppm: u64) -> bool {
        self.next_below(1_000_000) < num_ppm
    }
}

/// FNV-1a over `bytes` — stable label hashing for [`SimRng::derive`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_separates_labels() {
        let mut a = SimRng::derive(7, "files-a");
        let mut b = SimRng::derive(7, "files-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn ppm_extremes() {
        let mut rng = SimRng::new(9);
        assert!(!rng.roll_ppm(0));
        assert!(rng.roll_ppm(1_000_000));
    }
}
