//! Tiny statistics helpers for the benchmark harness.
//!
//! The Figure 6 harness times 1000 operations per configuration (matching
//! the paper's methodology) and reports summary statistics of the virtual
//! durations.

/// A collection of per-operation durations (nanoseconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    samples: Vec<u64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series {
            samples: Vec::new(),
        }
    }

    /// Creates a series with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Series {
            samples: Vec::with_capacity(n),
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, nanos: u64) {
        self.samples.push(nanos);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Read-only view of the raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Computes summary statistics.
    ///
    /// Returns a zeroed [`Summary`] for an empty series.
    pub fn summarize(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let total: u128 = sorted.iter().map(|&v| v as u128).sum();
        let mean = (total / sorted.len() as u128) as u64;
        Summary {
            count: sorted.len(),
            mean_ns: mean,
            min_ns: sorted[0],
            max_ns: *sorted.last().expect("non-empty"),
            p50_ns: percentile(&sorted, 50),
            p99_ns: percentile(&sorted, 99),
        }
    }
}

impl FromIterator<u64> for Series {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Series {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<u64> for Series {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    debug_assert!(!sorted.is_empty() && pct <= 100);
    let rank = (pct * (sorted.len() - 1)).div_euclid(100);
    sorted[rank]
}

/// Summary statistics over a [`Series`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, ns.
    pub mean_ns: u64,
    /// Minimum, ns.
    pub min_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
}

impl Summary {
    /// Mean in microseconds as a float, the unit Figure 6 is plotted in.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_summarizes_to_zero() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.summarize(), Summary::default());
    }

    #[test]
    fn summary_of_known_values() {
        let s: Series = [10u64, 20, 30, 40].into_iter().collect();
        let sum = s.summarize();
        assert_eq!(sum.count, 4);
        assert_eq!(sum.mean_ns, 25);
        assert_eq!(sum.min_ns, 10);
        assert_eq!(sum.max_ns, 40);
        assert_eq!(sum.p50_ns, 20);
    }

    #[test]
    fn mean_us_converts() {
        let s: Series = [2_000u64, 4_000].into_iter().collect();
        assert!((s.summarize().mean_us() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_extremes() {
        let s: Series = (1..=100u64).collect();
        let sum = s.summarize();
        assert_eq!(sum.p99_ns, 99);
        assert_eq!(sum.p50_ns, 50);
    }

    #[test]
    fn extend_appends() {
        let mut s = Series::with_capacity(3);
        s.extend([1u64, 2, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples(), &[1, 2, 3]);
    }

    #[test]
    fn large_values_do_not_overflow_mean() {
        let s: Series = [u64::MAX / 2, u64::MAX / 2].into_iter().collect();
        assert_eq!(s.summarize().mean_ns, u64::MAX / 2);
    }
}
