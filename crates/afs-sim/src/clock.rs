//! Per-thread virtual clocks.
//!
//! A virtual clock is a plain nanosecond counter attached to the current OS
//! thread. Simulated threads are still *real* threads (they really block on
//! condvars, really hand bytes through pipes); the clock only decides what
//! the experiment reports as elapsed time.
//!
//! Threads that never call [`install`] have no clock, and all charging
//! operations silently do nothing — that is the wall-clock benchmarking
//! mode.

use std::cell::Cell;

thread_local! {
    static CLOCK: Cell<Option<u64>> = const { Cell::new(None) };
}

/// A point in virtual time, in nanoseconds since the start of the
/// simulation.
pub type SimTime = u64;

/// Installs a virtual clock on the current thread, starting at `start`.
///
/// Returns a guard; when the guard is dropped the clock is removed again.
/// Installing while a clock is already present resets it to `start` (the
/// previous value is restored on drop).
///
/// # Examples
///
/// ```
/// let guard = afs_sim::clock::install(100);
/// assert_eq!(afs_sim::clock::now(), 100);
/// drop(guard);
/// assert!(!afs_sim::clock::is_active());
/// ```
#[must_use = "dropping the guard uninstalls the clock"]
pub fn install(start: SimTime) -> ClockGuard {
    let previous = CLOCK.with(|c| c.replace(Some(start)));
    ClockGuard { previous }
}

/// Returns `true` if the current thread has a virtual clock.
pub fn is_active() -> bool {
    CLOCK.with(|c| c.get().is_some())
}

/// Reads the current thread's virtual time.
///
/// Returns `0` when no clock is installed so that diagnostic code can call
/// it unconditionally.
pub fn now() -> SimTime {
    CLOCK.with(|c| c.get().unwrap_or(0))
}

/// Advances the current thread's clock by `nanos`. No-op without a clock.
pub fn advance(nanos: u64) {
    CLOCK.with(|c| {
        if let Some(t) = c.get() {
            c.set(Some(t.saturating_add(nanos)));
        }
    });
}

/// Synchronises the current thread's clock forward to `t` if `t` is later
/// than the local time. This is the "message receive" rule of Lamport
/// clocks and is what makes cross-thread data handoff carry time.
pub fn sync_to(t: SimTime) {
    CLOCK.with(|c| {
        if let Some(local) = c.get() {
            if t > local {
                c.set(Some(t));
            }
        }
    });
}

/// Runs `f` and returns the virtual time it consumed on this thread.
///
/// Returns `0` when no clock is installed.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = now();
    let out = f();
    let after = now();
    (out, after.saturating_sub(before))
}

/// Guard returned by [`install`]; restores the previous clock state on
/// drop.
#[derive(Debug)]
pub struct ClockGuard {
    previous: Option<u64>,
}

impl Drop for ClockGuard {
    fn drop(&mut self) {
        CLOCK.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_clock_is_inert() {
        assert!(!is_active());
        assert_eq!(now(), 0);
        advance(50);
        sync_to(1_000);
        assert_eq!(now(), 0);
    }

    #[test]
    fn install_advance_drop() {
        let g = install(10);
        assert!(is_active());
        assert_eq!(now(), 10);
        advance(5);
        assert_eq!(now(), 15);
        drop(g);
        assert!(!is_active());
    }

    #[test]
    fn sync_only_moves_forward() {
        let _g = install(100);
        sync_to(50);
        assert_eq!(now(), 100);
        sync_to(200);
        assert_eq!(now(), 200);
    }

    #[test]
    fn nested_install_restores_previous() {
        let _outer = install(1);
        {
            let _inner = install(500);
            assert_eq!(now(), 500);
        }
        assert_eq!(now(), 1);
    }

    #[test]
    fn measure_reports_consumed_time() {
        let _g = install(0);
        let ((), used) = measure(|| advance(42));
        assert_eq!(used, 42);
    }

    #[test]
    fn advance_saturates() {
        let _g = install(u64::MAX - 1);
        advance(100);
        assert_eq!(now(), u64::MAX);
    }

    #[test]
    fn clocks_are_per_thread() {
        let _g = install(77);
        let handle = std::thread::spawn(|| {
            assert!(!is_active());
            let _g2 = install(5);
            advance(1);
            now()
        });
        assert_eq!(handle.join().expect("thread"), 6);
        assert_eq!(now(), 77);
    }
}
