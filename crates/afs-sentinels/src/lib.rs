#![warn(missing_docs)]
//! A library of ready-made sentinels covering every use case in §3 of the
//! paper.
//!
//! | §3 action        | Sentinels here                                                        |
//! |------------------|------------------------------------------------------------------------|
//! | Data generation  | [`generate::RandomGenSentinel`], [`generate::SequenceSentinel`]        |
//! | I/O filtering    | [`filter::UppercaseSentinel`], [`filter::Rot13Sentinel`], [`filter::LineEndingSentinel`], [`compress::CompressSentinel`], [`cipher::XorCipherSentinel`] |
//! | Aggregation      | [`aggregate::RemoteFileSentinel`], [`aggregate::MergeSentinel`], [`aggregate::InboxSentinel`], [`aggregate::StockTickerSentinel`], [`aggregate::RegistryFileSentinel`], [`aggregate::TableSentinel`], [`mirror::MirrorSentinel`], [`consistency::LiveQuerySentinel`] |
//! | Distribution     | [`distribute::OutboxSentinel`], [`distribute::FanOutSentinel`], [`distribute::NotifySentinel`] |
//! | Logging/locking  | [`logging::SharedLogSentinel`], [`logging::AccessLogSentinel`]         |
//!
//! Call [`register_all`] to make every sentinel available by name in a
//! [`SentinelRegistry`]; each sentinel documents its configuration keys.

pub mod aggregate;
pub mod cipher;
pub mod compress;
pub mod consistency;
pub mod distribute;
pub mod filter;
pub mod generate;
pub mod guard;
pub mod logging;
pub mod mirror;
pub mod relay;

use afs_core::SentinelRegistry;

/// Registers every sentinel in this crate under its canonical name.
///
/// Names: `random`, `sequence`, `uppercase`, `lowercase`, `rot13`,
/// `line-ending`, `compress`, `xor-cipher`, `remote-file`, `merge`,
/// `inbox`, `stock-ticker`, `registry-file`, `table`, `mirror`,
/// `live-query`, `outbox`, `fan-out`, `notify`, `shared-log`,
/// `access-log`, `quota`, `checksum`, `relay`.
pub fn register_all(registry: &SentinelRegistry) {
    generate::register(registry);
    filter::register(registry);
    compress::register(registry);
    cipher::register(registry);
    aggregate::register(registry);
    distribute::register(registry);
    logging::register(registry);
    mirror::register(registry);
    consistency::register(registry);
    guard::register(registry);
    relay::register(registry);
}

/// Test helper: a world with every sentinel of this crate registered.
#[cfg(test)]
pub(crate) fn test_world() -> afs_core::AfsWorld {
    let world = afs_core::AfsWorld::new();
    register_all(world.sentinels());
    world
}

/// Test helper: read an active file to the end through the file API.
#[cfg(test)]
pub(crate) fn read_active(world: &afs_core::AfsWorld, path: &str) -> Vec<u8> {
    use afs_winapi::{Access, Disposition, FileApi};
    let api = world.api();
    let h = api
        .create_file(path, Access::read_only(), Disposition::OpenExisting)
        .expect("open for read");
    let mut out = Vec::new();
    let mut buf = [0u8; 128];
    loop {
        let n = api.read_file(h, &mut buf).expect("read");
        if n == 0 {
            break;
        }
        out.extend_from_slice(&buf[..n]);
    }
    api.close_handle(h).expect("close");
    out
}

/// Test helper: write bytes to an active file through the file API.
#[cfg(test)]
pub(crate) fn write_active(world: &afs_core::AfsWorld, path: &str, data: &[u8]) {
    use afs_winapi::{Access, Disposition, FileApi};
    let api = world.api();
    let h = api
        .create_file(path, Access::write_only(), Disposition::OpenExisting)
        .expect("open for write");
    api.write_file(h, data).expect("write");
    api.close_handle(h).expect("close");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_registers_everything() {
        let registry = SentinelRegistry::new();
        register_all(&registry);
        for name in [
            "random",
            "sequence",
            "uppercase",
            "lowercase",
            "rot13",
            "line-ending",
            "compress",
            "xor-cipher",
            "remote-file",
            "merge",
            "inbox",
            "stock-ticker",
            "registry-file",
            "table",
            "mirror",
            "live-query",
            "outbox",
            "fan-out",
            "notify",
            "shared-log",
            "access-log",
            "quota",
            "checksum",
            "relay",
        ] {
            assert!(registry.contains(name), "{name} must be registered");
        }
    }
}
