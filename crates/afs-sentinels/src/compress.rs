//! The compressed-file sentinel (§3).
//!
//! "A simple example of such filtering is a compressed file. In this
//! case, the sentinel process compresses and decompresses the file data
//! as it is written and read. An advantage of this approach over
//! compressed file systems is that file compression can be handled on a
//! per-file basis with different compression algorithms used for
//! different types of files. … Note that the client application is
//! completely unaware that it is interacting with a compressed file."
//!
//! Two codecs are provided ("different compression algorithms … for
//! different types of files"): [`Codec::Lzss`], an LZSS dictionary coder
//! (window 4096, match length 3–18), and [`Codec::Rle`], run-length
//! encoding for highly repetitive data. Both are self-contained
//! implementations — no external compression crates.

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};

/// Available compression codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// LZSS: flag-byte framed literals and `(distance, length)` matches.
    Lzss,
    /// Byte-level run-length encoding.
    Rle,
}

impl Codec {
    fn id(self) -> u8 {
        match self {
            Codec::Lzss => 1,
            Codec::Rle => 2,
        }
    }

    fn from_id(id: u8) -> Option<Codec> {
        match id {
            1 => Some(Codec::Lzss),
            2 => Some(Codec::Rle),
            _ => None,
        }
    }
}

// ---- LZSS ------------------------------------------------------------------

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;

/// Compresses `input` with LZSS.
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut pos = 0;
    while pos < input.len() {
        // One flag byte governs the next 8 tokens: bit set = literal.
        let flag_index = out.len();
        out.push(0);
        let mut flags = 0u8;
        for bit in 0..8 {
            if pos >= input.len() {
                break;
            }
            let (dist, len) = best_match(input, pos);
            if len >= MIN_MATCH {
                // Match token: 12-bit distance, 4-bit (len - MIN_MATCH).
                let token = ((dist as u16) << 4) | ((len - MIN_MATCH) as u16);
                out.extend_from_slice(&token.to_le_bytes());
                pos += len;
            } else {
                flags |= 1 << bit;
                out.push(input[pos]);
                pos += 1;
            }
        }
        out[flag_index] = flags;
    }
    out
}

fn best_match(input: &[u8], pos: usize) -> (usize, usize) {
    let window_start = pos.saturating_sub(WINDOW - 1);
    let mut best = (0usize, 0usize);
    let max_len = MAX_MATCH.min(input.len() - pos);
    if max_len < MIN_MATCH {
        return best;
    }
    let mut candidate = window_start;
    while candidate < pos {
        // Matches may overlap the current position (classic LZ): the
        // comparison reads bytes the match itself will have produced.
        let mut len = 0;
        while len < max_len && input[candidate + len] == input[pos + len] {
            len += 1;
        }
        if len > best.1 {
            best = (pos - candidate, len);
            if len == max_len {
                break;
            }
        }
        candidate += 1;
    }
    best
}

/// Decompresses LZSS output.
///
/// # Errors
///
/// [`SentinelError::Other`] on truncated or corrupt input.
pub fn lzss_decompress(input: &[u8]) -> SentinelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0;
    while pos < input.len() {
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if pos >= input.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(input[pos]);
                pos += 1;
            } else {
                if pos + 2 > input.len() {
                    return Err(SentinelError::Other("truncated lzss match token".into()));
                }
                let token = u16::from_le_bytes([input[pos], input[pos + 1]]);
                pos += 2;
                let dist = (token >> 4) as usize;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if dist == 0 || dist > out.len() {
                    return Err(SentinelError::Other("corrupt lzss distance".into()));
                }
                let start = out.len() - dist;
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
        }
    }
    Ok(out)
}

// ---- RLE -------------------------------------------------------------------

/// Compresses with byte-level RLE: `(count, byte)` pairs.
pub fn rle_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = input.iter().peekable();
    while let Some(&byte) = iter.next() {
        let mut count: u8 = 1;
        while count < u8::MAX {
            match iter.peek() {
                Some(&&next) if next == byte => {
                    iter.next();
                    count += 1;
                }
                _ => break,
            }
        }
        out.push(count);
        out.push(byte);
    }
    out
}

/// Decompresses RLE output.
///
/// # Errors
///
/// [`SentinelError::Other`] on odd-length (corrupt) input.
pub fn rle_decompress(input: &[u8]) -> SentinelResult<Vec<u8>> {
    if !input.len().is_multiple_of(2) {
        return Err(SentinelError::Other("corrupt rle stream".into()));
    }
    let mut out = Vec::new();
    for pair in input.chunks_exact(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    Ok(out)
}

// ---- the sentinel ------------------------------------------------------------

/// Stored format: `[codec id: u8][compressed bytes…]`; an empty cache is
/// an empty file.
pub struct CompressSentinel {
    codec: Codec,
    plain: Vec<u8>,
    dirty: bool,
}

impl CompressSentinel {
    /// Creates the sentinel with the given codec.
    pub fn new(codec: Codec) -> Self {
        CompressSentinel {
            codec,
            plain: Vec::new(),
            dirty: false,
        }
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let body = match self.codec {
            Codec::Lzss => lzss_compress(data),
            Codec::Rle => rle_compress(data),
        };
        let mut out = Vec::with_capacity(body.len() + 1);
        out.push(self.codec.id());
        out.extend_from_slice(&body);
        out
    }
}

impl SentinelLogic for CompressSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let stored = ctx.cache().to_vec()?;
        if stored.is_empty() {
            self.plain = Vec::new();
            return Ok(());
        }
        let codec = Codec::from_id(stored[0])
            .ok_or_else(|| SentinelError::Other("unknown compression codec id".into()))?;
        self.plain = match codec {
            Codec::Lzss => lzss_decompress(&stored[1..])?,
            Codec::Rle => rle_decompress(&stored[1..])?,
        };
        Ok(())
    }

    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let start = (offset as usize).min(self.plain.len());
        let n = buf.len().min(self.plain.len() - start);
        buf[..n].copy_from_slice(&self.plain[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, _ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset as usize + data.len();
        if self.plain.len() < end {
            self.plain.resize(end, 0);
        }
        self.plain[offset as usize..end].copy_from_slice(data);
        self.dirty = true;
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        // The application sees the *decompressed* size.
        Ok(self.plain.len() as u64)
    }

    fn flush(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.dirty {
            let stored = self.compress(&self.plain);
            ctx.cache().replace(&stored)?;
            self.dirty = false;
        }
        Ok(())
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.flush(ctx)
    }
}

/// Registers `compress` (config: `codec` = `lzss` (default) | `rle`).
pub fn register(registry: &SentinelRegistry) {
    registry.register("compress", |spec| {
        let codec = match spec.config().get("codec").map(String::as_str) {
            Some("rle") => Codec::Rle,
            _ => Codec::Lzss,
        };
        Box::new(CompressSentinel::new(codec))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_vfs::VPath;
    use proptest::prelude::*;

    #[test]
    fn lzss_roundtrips_simple_cases() {
        for case in [
            &b""[..],
            b"a",
            b"abcabcabcabcabc",
            b"the quick brown fox jumps over the lazy dog",
            &[0u8; 10_000],
        ] {
            let compressed = lzss_compress(case);
            assert_eq!(lzss_decompress(&compressed).expect("decompress"), case);
        }
    }

    #[test]
    fn lzss_actually_compresses_repetitive_data() {
        let data = b"abcdefgh".repeat(512);
        let compressed = lzss_compress(&data);
        assert!(
            compressed.len() < data.len() / 2,
            "expected real compression: {} vs {}",
            compressed.len(),
            data.len()
        );
    }

    #[test]
    fn rle_roundtrips_and_compresses_runs() {
        let data = [vec![7u8; 1000], vec![9u8; 3]].concat();
        let compressed = rle_compress(&data);
        assert!(compressed.len() < 20);
        assert_eq!(rle_decompress(&compressed).expect("decompress"), data);
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(
            lzss_decompress(&[0b0000_0000, 0x01]).is_err(),
            "truncated token"
        );
        assert!(rle_decompress(&[1]).is_err(), "odd rle length");
        // A match pointing before the start of output.
        assert!(lzss_decompress(&[0b0000_0000, 0xFF, 0xFF]).is_err());
    }

    proptest! {
        #[test]
        fn lzss_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let compressed = lzss_compress(&data);
            prop_assert_eq!(lzss_decompress(&compressed).expect("decompress"), data);
        }

        #[test]
        fn rle_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let compressed = rle_compress(&data);
            prop_assert_eq!(rle_decompress(&compressed).expect("decompress"), data);
        }
    }

    #[test]
    fn application_is_unaware_of_compression() {
        let world = test_world();
        world
            .install_active_file(
                "/doc.af",
                &SentinelSpec::new("compress", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        let doc = b"compress me, compress me, compress me again and again".repeat(20);
        write_active(&world, "/doc.af", &doc);
        assert_eq!(read_active(&world, "/doc.af"), doc);
        // The stored data part is smaller and starts with the codec id.
        let stored = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/doc.af").expect("p"))
            .expect("read");
        assert!(stored.len() < doc.len() / 2);
        assert_eq!(stored[0], Codec::Lzss.id());
    }

    #[test]
    fn per_file_codecs_differ() {
        let world = test_world();
        world
            .install_active_file(
                "/runs.af",
                &SentinelSpec::new("compress", Strategy::ProcessControl)
                    .backing(Backing::Disk)
                    .with("codec", "rle"),
            )
            .expect("install");
        write_active(&world, "/runs.af", &[42u8; 4096]);
        let stored = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/runs.af").expect("p"))
            .expect("read");
        assert_eq!(stored[0], Codec::Rle.id());
        assert!(stored.len() < 64);
        assert_eq!(read_active(&world, "/runs.af"), vec![42u8; 4096]);
    }

    #[test]
    fn compressed_file_size_reports_plain_length() {
        use afs_winapi::{Access, Disposition, FileApi};
        let world = test_world();
        world
            .install_active_file(
                "/z.af",
                &SentinelSpec::new("compress", Strategy::DllThread).backing(Backing::Memory),
            )
            .expect("install");
        write_active(&world, "/z.af", &b"x".repeat(500));
        let api = world.api();
        let h = api
            .create_file("/z.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.get_file_size(h).expect("size"), 500);
        api.close_handle(h).expect("close");
    }
}
