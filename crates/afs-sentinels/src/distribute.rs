//! Distribution sentinels (§3).
//!
//! "Sentinel processes can also distribute information to various
//! sources, triggered by file operations against the active file."

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};
use afs_net::WireWriter;

/// The outbox file: "the outbox-file can be programmed to send email to a
/// particular recipient, every time some data is written to it. This
/// concept can be extended such that the sentinel process parses the data
/// written to the file to extract the 'To' addresses and send the data to
/// each recipient" (§3).
///
/// The message accumulates across writes and is parsed and sent on flush
/// or close. Expected format:
///
/// ```text
/// To: a@x, b@y
/// Subject: hello
///
/// body…
/// ```
///
/// Configuration: `service` (SMTP service name), `from` (sender; defaults
/// to the opening user).
pub struct OutboxSentinel {
    buffer: Vec<u8>,
}

impl OutboxSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        OutboxSentinel { buffer: Vec::new() }
    }

    fn parse(text: &str) -> SentinelResult<(Vec<String>, String, String)> {
        let mut recipients = Vec::new();
        let mut subject = String::new();
        let mut lines = text.lines();
        let mut body_lines = Vec::new();
        let mut in_body = false;
        for line in lines.by_ref() {
            if in_body {
                body_lines.push(line);
                continue;
            }
            if line.trim().is_empty() {
                in_body = true;
                continue;
            }
            if let Some(rest) = line.strip_prefix("To:") {
                recipients.extend(
                    rest.split(',')
                        .map(|r| r.trim().to_owned())
                        .filter(|r| !r.is_empty()),
                );
            } else if let Some(rest) = line.strip_prefix("Subject:") {
                subject = rest.trim().to_owned();
            }
        }
        if recipients.is_empty() {
            return Err(SentinelError::Other(
                "outbox message has no To: header".into(),
            ));
        }
        Ok((recipients, subject, body_lines.join("\n")))
    }
}

impl Default for OutboxSentinel {
    fn default() -> Self {
        OutboxSentinel::new()
    }
}

impl SentinelLogic for OutboxSentinel {
    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        // Reading the outbox shows what is queued, like a draft.
        let start = (offset as usize).min(self.buffer.len());
        let n = buf.len().min(self.buffer.len() - start);
        buf[..n].copy_from_slice(&self.buffer[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, _ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset as usize + data.len();
        if self.buffer.len() < end {
            self.buffer.resize(end, 0);
        }
        self.buffer[offset as usize..end].copy_from_slice(data);
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.buffer.len() as u64)
    }

    fn flush(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let service = ctx.require_str("service")?.to_owned();
        let from = ctx
            .config_str("from")
            .map(str::to_owned)
            .unwrap_or_else(|| ctx.user().to_owned());
        let text = String::from_utf8_lossy(&self.buffer).into_owned();
        let (recipients, subject, body) = Self::parse(&text)?;
        let refs: Vec<&str> = recipients.iter().map(String::as_str).collect();
        ctx.mail_client()
            .send(&service, &from, &refs, &subject, &body)?;
        self.buffer.clear();
        Ok(())
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.flush(ctx)
    }
}

/// Replicates every write to N remote files — distribution fan-out over
/// file servers. Reads come from the local cache.
///
/// Configuration: `service`, `targets` (comma-separated remote paths).
pub struct FanOutSentinel;

impl FanOutSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        FanOutSentinel
    }
}

impl Default for FanOutSentinel {
    fn default() -> Self {
        FanOutSentinel::new()
    }
}

impl SentinelLogic for FanOutSentinel {
    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let n = ctx.cache().write_at(offset, data)?;
        let service = ctx.require_str("service")?.to_owned();
        let targets = ctx.require_str("targets")?.to_owned();
        let client = ctx.file_client(&service);
        for target in targets.split(',').map(str::trim) {
            // Streamed (asynchronous) update to each replica (§6).
            client.put_async(target, offset, data)?;
        }
        Ok(n)
    }
}

/// Triggers a notification message to a service whenever the file is
/// accessed — the "side effect (such as notification) … triggered as a
/// result of the access" of §1. Otherwise behaves like a null filter.
///
/// Configuration: `service` (notification sink service), `events`
/// (comma-separated subset of `open,read,write,close`; default all).
pub struct NotifySentinel;

impl NotifySentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        NotifySentinel
    }

    fn notify(ctx: &SentinelCtx, event: &str) -> SentinelResult<()> {
        let Some(service) = ctx.config_str("service") else {
            return Ok(());
        };
        if let Some(events) = ctx.config_str("events") {
            if !events.split(',').any(|e| e.trim() == event) {
                return Ok(());
            }
        }
        let mut w = WireWriter::new();
        w.str(event).str(&ctx.path().to_string()).str(ctx.user());
        ctx.net().cast(service, &w.finish())?;
        Ok(())
    }
}

impl Default for NotifySentinel {
    fn default() -> Self {
        NotifySentinel::new()
    }
}

impl SentinelLogic for NotifySentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        Self::notify(ctx, "open")
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        Self::notify(ctx, "read")?;
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        Self::notify(ctx, "write")?;
        ctx.cache().write_at(offset, data)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        Self::notify(ctx, "close")
    }
}

/// Registers `outbox`, `fan-out`, and `notify`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("outbox", |_| Box::new(OutboxSentinel::new()));
    registry.register("fan-out", |_| Box::new(FanOutSentinel::new()));
    registry.register("notify", |_| Box::new(NotifySentinel::new()));
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::{test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::{FileServer, MailStore, PopServer, SmtpServer};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn outbox_parses_recipients_and_delivers() {
        let world = test_world();
        let store = MailStore::new();
        world
            .net()
            .register("smtp", SmtpServer::new(store.clone()) as Arc<dyn Service>);
        world
            .net()
            .register("pop", PopServer::new(store.clone()) as Arc<dyn Service>);
        world
            .install_active_file(
                "/outbox.af",
                &SentinelSpec::new("outbox", Strategy::ProcessControl)
                    .with("service", "smtp")
                    .with("from", "me@here"),
            )
            .expect("install");
        write_active(
            &world,
            "/outbox.af",
            b"To: a@x, b@y\nSubject: greetings\n\nhello everyone\nsecond line",
        );
        assert_eq!(store.count("a@x"), 1);
        assert_eq!(store.count("b@y"), 1);
        let client = afs_remote::MailClient::new(world.net().clone());
        let ids = client.list("pop", "a@x").expect("list");
        let msg = client.retrieve("pop", "a@x", ids[0]).expect("retr");
        assert_eq!(msg.from, "me@here");
        assert_eq!(msg.subject, "greetings");
        assert_eq!(msg.body, "hello everyone\nsecond line");
    }

    #[test]
    fn outbox_without_recipients_fails_the_close() {
        use afs_winapi::{Access, Disposition, FileApi};
        let world = test_world();
        let store = MailStore::new();
        world
            .net()
            .register("smtp", SmtpServer::new(store) as Arc<dyn Service>);
        world
            .install_active_file(
                "/outbox.af",
                &SentinelSpec::new("outbox", Strategy::DllOnly).with("service", "smtp"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file(
                "/outbox.af",
                Access::write_only(),
                Disposition::OpenExisting,
            )
            .expect("open");
        api.write_file(h, b"Subject: no recipients\n\nbody")
            .expect("write");
        assert!(
            api.close_handle(h).is_err(),
            "missing To: surfaces at close"
        );
    }

    #[test]
    fn fan_out_replicates_writes_to_all_targets() {
        let world = test_world();
        let server = FileServer::new();
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/pub.af",
                &SentinelSpec::new("fan-out", Strategy::DllThread)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("targets", "/r1, /r2, /r3"),
            )
            .expect("install");
        write_active(&world, "/pub.af", b"replicated payload");
        let client = afs_remote::FileClient::new(world.net().clone(), "files");
        for target in ["/r1", "/r2", "/r3"] {
            assert_eq!(client.get_all(target).expect("get"), b"replicated payload");
        }
    }

    /// Collects notification messages for assertions.
    #[derive(Default)]
    struct Sink {
        events: Mutex<Vec<(String, String, String)>>,
    }

    impl Service for Sink {
        fn handle(&self, request: &[u8]) -> afs_net::Result<Vec<u8>> {
            let mut r = afs_net::WireReader::new(request);
            let event = r.str()?.to_owned();
            let path = r.str()?.to_owned();
            let user = r.str()?.to_owned();
            self.events.lock().push((event, path, user));
            Ok(Vec::new())
        }
    }

    #[test]
    fn notify_fires_selected_events() {
        let world = test_world();
        let sink = Arc::new(Sink::default());
        world
            .net()
            .register("audit", Arc::clone(&sink) as Arc<dyn Service>);
        world
            .install_active_file(
                "/watched.af",
                &SentinelSpec::new("notify", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "audit")
                    .with("events", "open,close"),
            )
            .expect("install");
        write_active(&world, "/watched.af", b"x");
        let events = sink.events.lock();
        let kinds: Vec<&str> = events.iter().map(|(e, _, _)| e.as_str()).collect();
        assert_eq!(kinds, vec!["open", "close"], "write events filtered out");
        assert_eq!(events[0].1, "/watched.af");
    }

    #[test]
    fn notify_defaults_to_all_events() {
        let world = test_world();
        let sink = Arc::new(Sink::default());
        world
            .net()
            .register("audit", Arc::clone(&sink) as Arc<dyn Service>);
        world
            .install_active_file(
                "/w.af",
                &SentinelSpec::new("notify", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "audit"),
            )
            .expect("install");
        write_active(&world, "/w.af", b"x");
        let _ = crate::read_active(&world, "/w.af");
        let kinds: Vec<String> = sink
            .events
            .lock()
            .iter()
            .map(|(e, _, _)| e.clone())
            .collect();
        assert!(kinds.contains(&"open".to_owned()));
        assert!(kinds.contains(&"write".to_owned()));
        assert!(kinds.contains(&"read".to_owned()));
        assert!(kinds.contains(&"close".to_owned()));
    }
}
