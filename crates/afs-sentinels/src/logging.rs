//! Logging and locking sentinels (§3).
//!
//! Two of the paper's motivating examples:
//!
//! * "A file containing sensitive data would like to log every access
//!   from users, even if these users are trusted users" —
//!   [`AccessLogSentinel`].
//! * "Assume that several processes log events using the same log file.
//!   As the sentinel receives each log record, it locks the file, writes
//!   the record and unlocks the file. The processes generating the logs
//!   do not need to know about log file locking" — [`SharedLogSentinel`].

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};
use afs_vfs::VPath;

/// Appends every record written to the active file to the shared data
/// part under a named mutex, so concurrent sentinels never interleave
/// records. Reads return the whole log.
///
/// Configuration: `lock` (mutex name; default `log:<path>`); `rotate`
/// (bytes — when the log exceeds this, the sentinel trims the oldest
/// half at the next newline boundary, "the sentinel can perform a
/// variety of functions in the background such as cleaning up the
/// logs", §3).
pub struct SharedLogSentinel;

impl SharedLogSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        SharedLogSentinel
    }

    fn lock_name(ctx: &SentinelCtx) -> String {
        match ctx.config_str("lock") {
            Some(name) => name.to_owned(),
            None => format!("log:{}", ctx.path()),
        }
    }

    /// The §3 "cleaning up the logs" housekeeping: keep the newest half
    /// when the configured size is exceeded, cutting at a record
    /// boundary. Runs under the log mutex.
    fn rotate_if_needed(ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let Some(limit) = ctx.config_u64("rotate") else {
            return Ok(());
        };
        let len = ctx.cache().len()?;
        if len <= limit {
            return Ok(());
        }
        let contents = ctx.cache().to_vec()?;
        let half = contents.len() / 2;
        let cut = contents[half..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| half + i + 1)
            .unwrap_or(half);
        ctx.cache().replace(&contents[cut..])?;
        Ok(())
    }
}

impl Default for SharedLogSentinel {
    fn default() -> Self {
        SharedLogSentinel::new()
    }
}

impl SentinelLogic for SharedLogSentinel {
    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let mutex = ctx.mutex(&Self::lock_name(ctx))?;
        mutex.acquire();
        let result = ctx.cache().read_at(offset, buf);
        mutex.release();
        result
    }

    fn write(&mut self, ctx: &mut SentinelCtx, _offset: u64, data: &[u8]) -> SentinelResult<usize> {
        // Log semantics: writes always append, whatever the caller's file
        // pointer says — the sentinel owns the placement policy.
        let mutex = ctx.mutex(&Self::lock_name(ctx))?;
        mutex.acquire();
        let result = (|| {
            let end = ctx.cache().len()?;
            let n = ctx.cache().write_at(end, data)?;
            Self::rotate_if_needed(ctx)?;
            Ok(n)
        })();
        mutex.release();
        result
    }
}

/// Wraps the data part with an audit trail: every open, read, write, and
/// close is recorded (with the acting user) into a separate local audit
/// file.
///
/// Configuration: `audit` — path of the audit file (required).
pub struct AccessLogSentinel {
    audit: Option<VPath>,
}

impl AccessLogSentinel {
    /// Creates the sentinel (audit path resolved on open).
    pub fn new() -> Self {
        AccessLogSentinel { audit: None }
    }

    fn record(&self, ctx: &SentinelCtx, event: &str) -> SentinelResult<()> {
        let Some(audit) = &self.audit else {
            return Ok(());
        };
        let line = format!("{} {} {}\n", ctx.user(), event, ctx.path());
        let vfs = ctx.vfs();
        if !vfs.is_file(audit) {
            if let Some(parent) = audit.parent() {
                vfs.create_dir_all(&parent).map_err(SentinelError::from)?;
            }
            vfs.create_file(audit).map_err(SentinelError::from)?;
        }
        let len = vfs.stream_len(audit).map_err(SentinelError::from)?;
        vfs.write_stream(audit, len, line.as_bytes())
            .map_err(SentinelError::from)?;
        Ok(())
    }
}

impl Default for AccessLogSentinel {
    fn default() -> Self {
        AccessLogSentinel::new()
    }
}

impl SentinelLogic for AccessLogSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let path = ctx.require_str("audit")?;
        self.audit = Some(VPath::parse(path).map_err(|e| SentinelError::Other(e.to_string()))?);
        self.record(ctx, "open")
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        self.record(ctx, "read")?;
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        self.record(ctx, "write")?;
        ctx.cache().write_at(offset, data)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.record(ctx, "close")
    }
}

/// Registers `shared-log` and `access-log`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("shared-log", |_| Box::new(SharedLogSentinel::new()));
    registry.register("access-log", |_| Box::new(AccessLogSentinel::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_winapi::{Access, Disposition, FileApi};

    #[test]
    fn concurrent_writers_never_tear_records() {
        let world = std::sync::Arc::new(test_world());
        world
            .install_active_file(
                "/log.af",
                &SentinelSpec::new("shared-log", Strategy::DllThread).backing(Backing::Disk),
            )
            .expect("install");
        let mut handles = Vec::new();
        for writer in 0..4u8 {
            let world = std::sync::Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let api = world.api();
                let h = api
                    .create_file("/log.af", Access::write_only(), Disposition::OpenExisting)
                    .expect("open");
                for i in 0..50 {
                    let record = format!("w{writer}-{i:03};");
                    api.write_file(h, record.as_bytes()).expect("append");
                }
                api.close_handle(h).expect("close");
            }));
        }
        for t in handles {
            t.join().expect("join");
        }
        let log = String::from_utf8(read_active(&world, "/log.af")).expect("utf8");
        let records: Vec<&str> = log.split_terminator(';').collect();
        assert_eq!(records.len(), 200);
        for r in &records {
            assert!(r.len() == 6 && r.starts_with('w'), "torn record {r:?}");
        }
        // Per-writer order is preserved even though writers interleave.
        for writer in 0..4u8 {
            let mine: Vec<&&str> = records
                .iter()
                .filter(|r| r.starts_with(&format!("w{writer}")))
                .collect();
            assert_eq!(mine.len(), 50);
            for (i, r) in mine.iter().enumerate() {
                assert_eq!(***r, format!("w{writer}-{i:03}"));
            }
        }
    }

    #[test]
    fn log_writes_append_regardless_of_pointer() {
        let world = test_world();
        world
            .install_active_file(
                "/log.af",
                &SentinelSpec::new("shared-log", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/log.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        api.write_file(h, b"first|").expect("w1");
        // Rewind; the sentinel still appends.
        api.set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)
            .expect("seek");
        api.write_file(h, b"second|").expect("w2");
        api.close_handle(h).expect("close");
        assert_eq!(read_active(&world, "/log.af"), b"first|second|");
    }

    #[test]
    fn access_log_records_every_operation_with_user() {
        let world = afs_core::AfsWorld::builder().user("carol").build();
        crate::register_all(world.sentinels());
        world
            .install_active_file(
                "/sensitive.af",
                &SentinelSpec::new("access-log", Strategy::ProcessControl)
                    .backing(Backing::Disk)
                    .with("audit", "/var/audit.log"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file(
                "/sensitive.af",
                Access::read_write(),
                Disposition::OpenExisting,
            )
            .expect("open");
        api.write_file(h, b"data").expect("write");
        let mut buf = [0u8; 4];
        api.set_file_pointer(h, 0, afs_winapi::SeekMethod::Begin)
            .expect("seek");
        api.read_file(h, &mut buf).expect("read");
        api.close_handle(h).expect("close");
        let audit = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/var/audit.log").expect("p"))
            .expect("audit exists");
        let text = String::from_utf8(audit).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "carol open /sensitive.af");
        assert!(lines.contains(&"carol write /sensitive.af"));
        assert!(lines.contains(&"carol read /sensitive.af"));
        assert_eq!(
            *lines.last().expect("nonempty"),
            "carol close /sensitive.af"
        );
    }

    #[test]
    fn rotation_trims_the_oldest_records() {
        let world = test_world();
        world
            .install_active_file(
                "/rot.af",
                &SentinelSpec::new("shared-log", Strategy::DllOnly)
                    .backing(Backing::Disk)
                    .with("rotate", "100"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/rot.af", Access::write_only(), Disposition::OpenExisting)
            .expect("open");
        for i in 0..30 {
            api.write_file(h, format!("record-{i:04}\n").as_bytes())
                .expect("append");
        }
        api.close_handle(h).expect("close");
        let log = String::from_utf8(read_active(&world, "/rot.af")).expect("utf8");
        assert!(
            log.len() <= 112,
            "rotation keeps the log bounded, got {}",
            log.len()
        );
        assert!(!log.contains("record-0000"), "oldest records trimmed");
        assert!(log.contains("record-0029"), "newest records kept");
        for line in log.lines() {
            assert!(
                line.starts_with("record-"),
                "rotation cuts at record boundaries: {line:?}"
            );
        }
    }

    #[test]
    fn access_log_requires_audit_config() {
        let world = test_world();
        world
            .install_active_file(
                "/bad.af",
                &SentinelSpec::new("access-log", Strategy::DllOnly).backing(Backing::Memory),
            )
            .expect("install");
        let api = world.api();
        assert!(
            api.create_file("/bad.af", Access::read_only(), Disposition::OpenExisting)
                .is_err(),
            "missing audit config fails the open"
        );
    }
}
