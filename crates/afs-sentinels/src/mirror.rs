//! The benchmark sentinel behind Figure 6.
//!
//! §6 measures "an application that reads and writes fixed-size blocks
//! from an active file" where the sentinel either contacts a remote
//! service (path 1), a local on-disk cache (path 2), or an in-memory
//! cache (path 3). [`MirrorSentinel`] is that sentinel:
//!
//! * with configuration `service`/`remote` set, reads issue a remote GET
//!   for exactly the requested range and writes stream an asynchronous
//!   PUT ("the buffer is sent directly to the sentinel, which then sends
//!   an update message to the remote service");
//! * without a remote, it reads/writes the cache selected by the spec's
//!   [`Backing`](afs_core::Backing) — disk or memory.

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};

/// `DeviceIoControl` code: set readahead from the first payload byte
/// (non-zero = on); the reply is the *previous* setting as one byte.
pub const CTL_SET_READAHEAD: u32 = 1;

/// `DeviceIoControl` code: query readahead; the reply is one byte,
/// `1` when on.
pub const CTL_GET_READAHEAD: u32 = 2;

/// The Figure 6 workload sentinel. See the module docs.
///
/// With `readahead=true` the sentinel implements §4.2's eager
/// optimisation ("the sentinel process might choose to eagerly inject
/// data … anticipating read requests from the user"): each remote fetch
/// pulls twice the requested range and the second half is served from
/// memory if the next read is sequential — halving round trips for
/// streaming readers.
pub struct MirrorSentinel {
    remote: Option<(String, String)>,
    readahead: bool,
    prefetched: Option<(u64, Vec<u8>)>,
}

impl MirrorSentinel {
    /// Creates a cache-backed mirror.
    pub fn new() -> Self {
        MirrorSentinel {
            remote: None,
            readahead: false,
            prefetched: None,
        }
    }

    fn serve_prefetch(&mut self, offset: u64, buf: &mut [u8]) -> Option<usize> {
        let (start, data) = self.prefetched.as_ref()?;
        let start = *start;
        if offset < start || offset >= start + data.len() as u64 {
            return None;
        }
        let begin = (offset - start) as usize;
        let n = buf.len().min(data.len() - begin);
        if n < buf.len() && begin + n < data.len() {
            return None; // partial hit; go remote for a clean answer
        }
        buf[..n].copy_from_slice(&data[begin..begin + n]);
        Some(n)
    }
}

impl Default for MirrorSentinel {
    fn default() -> Self {
        MirrorSentinel::new()
    }
}

impl SentinelLogic for MirrorSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.remote = match (ctx.config_str("service"), ctx.config_str("remote")) {
            (Some(s), Some(r)) => Some((s.to_owned(), r.to_owned())),
            _ => None,
        };
        self.readahead = ctx.config_bool("readahead");
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let Some((service, remote)) = self.remote.clone() else {
            return ctx.cache().read_at(offset, buf);
        };
        if self.readahead {
            if let Some(n) = self.serve_prefetch(offset, buf) {
                return Ok(n);
            }
            let want = buf.len() * 2;
            let data = ctx.file_client(&service).get(&remote, offset, want)?;
            let n = buf.len().min(data.len());
            buf[..n].copy_from_slice(&data[..n]);
            if data.len() > n {
                self.prefetched = Some((offset + n as u64, data[n..].to_vec()));
            } else {
                self.prefetched = None;
            }
            return Ok(n);
        }
        let data = ctx.file_client(&service).get(&remote, offset, buf.len())?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        match &self.remote {
            Some((service, remote)) => {
                // Any write invalidates the readahead window — cheap and
                // always safe.
                self.prefetched = None;
                ctx.file_client(service).put_async(remote, offset, data)?;
                Ok(data.len())
            }
            None => ctx.cache().write_at(offset, data),
        }
    }

    fn len(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        match &self.remote {
            Some((service, remote)) => Ok(ctx.file_client(service).stat(remote)?.len),
            None => ctx.cache().len(),
        }
    }

    fn control(
        &mut self,
        _ctx: &mut SentinelCtx,
        code: u32,
        payload: &[u8],
    ) -> SentinelResult<Vec<u8>> {
        match code {
            CTL_SET_READAHEAD => {
                let previous = self.readahead;
                self.readahead = payload.first().copied().unwrap_or(0) != 0;
                if !self.readahead {
                    self.prefetched = None;
                }
                Ok(vec![u8::from(previous)])
            }
            CTL_GET_READAHEAD => Ok(vec![u8::from(self.readahead)]),
            _ => Err(SentinelError::Unsupported),
        }
    }
}

/// Registers `mirror`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("mirror", |_| Box::new(MirrorSentinel::new()));
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::FileServer;
    use std::sync::Arc;

    #[test]
    fn remote_mode_reads_and_writes_through() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/blob", b"0123456789abcdef");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("mirror", Strategy::ProcessControl)
                    .with("service", "files")
                    .with("remote", "/blob"),
            )
            .expect("install");
        assert_eq!(read_active(&world, "/m.af"), b"0123456789abcdef");
        write_active(&world, "/m.af", b"XY");
        let client = afs_remote::FileClient::new(world.net().clone(), "files");
        assert_eq!(client.get_all("/blob").expect("get"), b"XY23456789abcdef");
    }

    #[test]
    fn remote_mode_reports_remote_size() {
        use afs_winapi::{Access, Disposition, FileApi};
        let world = test_world();
        let server = FileServer::new();
        server.seed("/blob", &[0u8; 321]);
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("mirror", Strategy::DllOnly)
                    .with("service", "files")
                    .with("remote", "/blob"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.get_file_size(h).expect("size"), 321);
        api.close_handle(h).expect("close");
    }

    #[test]
    fn cache_mode_uses_backing() {
        let world = test_world();
        world
            .install_active_file(
                "/c.af",
                &SentinelSpec::new("mirror", Strategy::DllThread).backing(Backing::Disk),
            )
            .expect("install");
        write_active(&world, "/c.af", b"cached bytes");
        assert_eq!(read_active(&world, "/c.af"), b"cached bytes");
    }

    #[test]
    fn remote_reads_charge_round_trips() {
        use afs_sim::{clock, HardwareProfile};
        use afs_winapi::{Access, Disposition, FileApi};
        let world = afs_core::AfsWorld::builder()
            .profile(HardwareProfile::pentium_ii_300())
            .build();
        crate::register_all(world.sentinels());
        let server = FileServer::new();
        server.seed("/blob", &[0u8; 4096]);
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("mirror", Strategy::DllOnly)
                    .with("service", "files")
                    .with("remote", "/blob"),
            )
            .expect("install");
        let api = world.api();
        let _guard = clock::install(0);
        let h = api
            .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let before = clock::now();
        let mut buf = [0u8; 2048];
        api.read_file(h, &mut buf).expect("read");
        let elapsed = clock::now() - before;
        // At minimum one network round trip plus the response bytes.
        let floor = world.model().profile().net_round_trip_ns
            + 2048 * world.model().profile().net_ns_per_byte;
        assert!(
            elapsed >= floor,
            "read {elapsed} ns must include the network, floor {floor}"
        );
        api.close_handle(h).expect("close");
    }
}

#[cfg(test)]
mod readahead_tests {
    use crate::{read_active, test_world};
    use afs_core::{SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::FileServer;
    use std::sync::Arc;

    fn world_with_blob(readahead: bool) -> (afs_core::AfsWorld, afs_net::Network) {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/blob", &(0..=255u8).collect::<Vec<u8>>().repeat(8));
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("mirror", Strategy::DllOnly)
                    .with("service", "files")
                    .with("remote", "/blob")
                    .with("readahead", if readahead { "true" } else { "false" }),
            )
            .expect("install");
        let net = world.net().clone();
        (world, net)
    }

    #[test]
    fn readahead_preserves_content_exactly() {
        let (plain_world, _) = world_with_blob(false);
        let (eager_world, _) = world_with_blob(true);
        assert_eq!(
            read_active(&plain_world, "/m.af"),
            read_active(&eager_world, "/m.af"),
            "eager injection must be invisible to the application"
        );
    }

    #[test]
    fn readahead_halves_round_trips_for_sequential_reads() {
        let (plain_world, plain_net) = world_with_blob(false);
        let (eager_world, eager_net) = world_with_blob(true);
        let _ = read_active(&plain_world, "/m.af");
        let _ = read_active(&eager_world, "/m.af");
        let plain_rpcs = plain_net.stats().rpcs;
        let eager_rpcs = eager_net.stats().rpcs;
        assert!(
            eager_rpcs * 1000 <= plain_rpcs * 700,
            "eager ({eager_rpcs}) should need far fewer round trips than lazy ({plain_rpcs})"
        );
    }

    #[test]
    fn control_toggles_readahead_at_runtime() {
        use afs_winapi::{Access, Disposition, FileApi, Win32Error};
        let (world, net) = world_with_blob(false);
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        // Query, then flip on via DeviceIoControl, then confirm the
        // round-trip saving shows up in live traffic.
        assert_eq!(
            api.device_io_control(h, super::CTL_GET_READAHEAD, &[])
                .expect("get"),
            vec![0]
        );
        assert_eq!(
            api.device_io_control(h, super::CTL_SET_READAHEAD, &[1])
                .expect("set"),
            vec![0],
            "reply is the previous setting"
        );
        assert_eq!(
            api.device_io_control(h, super::CTL_GET_READAHEAD, &[])
                .expect("get"),
            vec![1]
        );
        let before = net.stats().rpcs;
        let mut buf = [0u8; 64];
        api.read_file(h, &mut buf).expect("read primes prefetch");
        api.read_file(h, &mut buf)
            .expect("sequential read hits prefetch");
        assert_eq!(net.stats().rpcs - before, 1, "two reads, one fetch");
        assert_eq!(
            api.device_io_control(h, 999, &[]),
            Err(Win32Error::NotSupported),
            "unknown codes are refused"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn writes_invalidate_the_readahead_window() {
        use afs_winapi::{Access, Disposition, FileApi, SeekMethod};
        let (world, _) = world_with_blob(true);
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 64];
        api.read_file(h, &mut buf).expect("read primes prefetch");
        // Overwrite the region the prefetch covers.
        api.set_file_pointer(h, 64, SeekMethod::Begin)
            .expect("seek");
        api.write_file(h, &[0xEE; 64]).expect("write");
        api.set_file_pointer(h, 64, SeekMethod::Begin)
            .expect("seek back");
        api.read_file(h, &mut buf).expect("read");
        assert_eq!(buf, [0xEE; 64], "stale prefetch must not be served");
        api.close_handle(h).expect("close");
    }
}
