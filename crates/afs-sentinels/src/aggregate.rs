//! Aggregation sentinels (§3).
//!
//! "The sentinel can aggregate information from various sources,
//! presenting it to client applications as a conventional file. Examples
//! of these sources include other local or remote files, databases,
//! network connections, or even other processes."

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};
use afs_remote::RegistryValue;

/// Seamless access to one remote file: fetched into the local cache on
/// open, written back on close if modified — "the sentinel accesses the
/// remote file using a standard protocol (e.g., FTP or HTTP), creates a
/// local copy, and makes the copy available to the client application"
/// (§3).
///
/// Configuration: `service` (file-server name), `remote` (path on the
/// server), `writeback` (`true` to push changes on close; default true).
pub struct RemoteFileSentinel {
    dirty: bool,
}

impl RemoteFileSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        RemoteFileSentinel { dirty: false }
    }
}

impl Default for RemoteFileSentinel {
    fn default() -> Self {
        RemoteFileSentinel::new()
    }
}

impl SentinelLogic for RemoteFileSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let remote = ctx.require_str("remote")?.to_owned();
        let client = ctx.file_client(&service);
        let data = client.get_all(&remote)?;
        ctx.cache().replace(&data)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let n = ctx.cache().write_at(offset, data)?;
        self.dirty = true;
        Ok(n)
    }

    fn flush(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.dirty {
            let service = ctx.require_str("service")?.to_owned();
            let remote = ctx.require_str("remote")?.to_owned();
            let writeback = ctx
                .config_str("writeback")
                .map(|v| v != "false")
                .unwrap_or(true);
            if writeback {
                let data = ctx.cache().to_vec()?;
                ctx.file_client(&service).replace(&remote, &data)?;
                self.dirty = false;
            }
        }
        Ok(())
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.flush(ctx)
    }
}

/// Merges several remote files into one local view: "the sentinel can
/// also merge multiple remote files into a single local file" (§3).
/// Read-only.
///
/// Configuration: `service`, `remotes` (comma-separated paths),
/// `separator` (string inserted between parts; default none).
pub struct MergeSentinel;

impl MergeSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        MergeSentinel
    }
}

impl Default for MergeSentinel {
    fn default() -> Self {
        MergeSentinel::new()
    }
}

impl SentinelLogic for MergeSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let remotes = ctx.require_str("remotes")?.to_owned();
        let separator = ctx.config_str("separator").unwrap_or("").to_owned();
        let client = ctx.file_client(&service);
        let mut merged = Vec::new();
        for (i, remote) in remotes.split(',').map(str::trim).enumerate() {
            if i > 0 {
                merged.extend_from_slice(separator.as_bytes());
            }
            merged.extend_from_slice(&client.get_all(remote)?);
        }
        ctx.cache().replace(&merged)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The POP inbox file: "an inbox file of an E-mail program can be such
/// that reading it causes new messages to be retrieved possibly from
/// multiple remote POP servers" (§3). Messages are rendered mbox-style;
/// retrieved messages are deleted from the servers when `delete=true`.
///
/// Configuration: `servers` (comma-separated POP service names), `user`
/// (mailbox owner; defaults to the opening user), `delete`
/// (default false).
pub struct InboxSentinel;

impl InboxSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        InboxSentinel
    }
}

impl Default for InboxSentinel {
    fn default() -> Self {
        InboxSentinel::new()
    }
}

impl SentinelLogic for InboxSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let servers = ctx.require_str("servers")?.to_owned();
        let user = ctx
            .config_str("user")
            .map(str::to_owned)
            .unwrap_or_else(|| ctx.user().to_owned());
        let delete = ctx.config_bool("delete");
        let client = ctx.mail_client();
        let mut rendered = Vec::new();
        for server in servers.split(',').map(str::trim) {
            for id in client.list(server, &user)? {
                let msg = client.retrieve(server, &user, id)?;
                rendered.extend_from_slice(
                    format!(
                        "From: {}\nSubject: {}\n\n{}\n\n",
                        msg.from, msg.subject, msg.body
                    )
                    .as_bytes(),
                );
                if delete {
                    client.delete(server, &user, id)?;
                }
            }
        }
        ctx.cache().replace(&rendered)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The stock-quote file: "an active file that reflects the latest stock
/// quotes (downloaded by the sentinel from a server) every time the file
/// is opened" (§3). Renders `SYMBOL<TAB>dollars.cents` lines.
///
/// Configuration: `service` (quote service name), `symbols`
/// (comma-separated tickers).
pub struct StockTickerSentinel;

impl StockTickerSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        StockTickerSentinel
    }
}

impl Default for StockTickerSentinel {
    fn default() -> Self {
        StockTickerSentinel::new()
    }
}

impl SentinelLogic for StockTickerSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let symbols_cfg = ctx.require_str("symbols")?.to_owned();
        let symbols: Vec<&str> = symbols_cfg.split(',').map(str::trim).collect();
        let quotes = ctx.quote_client(&service).quotes(&symbols)?;
        let mut rendered = String::new();
        for q in &quotes {
            rendered.push_str(&format!(
                "{}\t{}.{:02}\n",
                q.symbol,
                q.cents / 100,
                q.cents % 100
            ));
        }
        ctx.cache().replace(rendered.as_bytes())?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The registry-as-a-file sentinel: "filtering can also be used to
/// provide a file-based interface to the Windows system registry …
/// providing a simplified version (e.g., a plain text file) to the
/// client application. Any modifications by the client application can
/// in turn be parsed by the sentinel process and translated into
/// appropriate registry modifications" (§3).
///
/// The rendered text is one `name=value` line per value of the
/// configured key, sorted by name. Writing the file back applies the
/// diff: changed/added lines become `SetValue`, removed lines become
/// `DeleteValue`. String values only (the "simplified version").
///
/// Configuration: `service` (registry service name), `key` (key path).
pub struct RegistryFileSentinel {
    view: Vec<u8>,
    dirty: bool,
}

impl RegistryFileSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        RegistryFileSentinel {
            view: Vec::new(),
            dirty: false,
        }
    }

    fn parse_lines(text: &str) -> Vec<(String, String)> {
        text.lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() {
                    return None;
                }
                line.split_once('=')
                    .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
            })
            .collect()
    }
}

impl Default for RegistryFileSentinel {
    fn default() -> Self {
        RegistryFileSentinel::new()
    }
}

impl SentinelLogic for RegistryFileSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let key = ctx.require_str("key")?.to_owned();
        let values = ctx.registry_client(&service).enum_values(&key)?;
        let mut rendered = String::new();
        for (name, value) in values {
            let shown = match value {
                RegistryValue::Str(s) => s,
                RegistryValue::U32(v) => v.to_string(),
                RegistryValue::Bin(b) => b
                    .iter()
                    .map(|byte| format!("{byte:02x}"))
                    .collect::<String>(),
            };
            rendered.push_str(&format!("{name}={shown}\n"));
        }
        self.view = rendered.into_bytes();
        Ok(())
    }

    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let start = (offset as usize).min(self.view.len());
        let n = buf.len().min(self.view.len() - start);
        buf[..n].copy_from_slice(&self.view[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, _ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset as usize + data.len();
        if self.view.len() < end {
            self.view.resize(end, 0);
        }
        self.view[offset as usize..end].copy_from_slice(data);
        self.dirty = true;
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.view.len() as u64)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if !self.dirty {
            return Ok(());
        }
        let service = ctx.require_str("service")?.to_owned();
        let key = ctx.require_str("key")?.to_owned();
        let client = ctx.registry_client(&service);
        let current: std::collections::BTreeMap<String, String> = client
            .enum_values(&key)?
            .into_iter()
            .map(|(name, value)| {
                let shown = match value {
                    RegistryValue::Str(s) => s,
                    RegistryValue::U32(v) => v.to_string(),
                    RegistryValue::Bin(b) => b
                        .iter()
                        .map(|byte| format!("{byte:02x}"))
                        .collect::<String>(),
                };
                (name, shown)
            })
            .collect();
        let text = String::from_utf8_lossy(&self.view).into_owned();
        let edited = Self::parse_lines(&text);
        let edited_map: std::collections::BTreeMap<_, _> = edited.iter().cloned().collect();
        // Apply additions and modifications.
        for (name, value) in &edited_map {
            if current.get(name) != Some(value) {
                client.set_value(&key, name, &RegistryValue::Str(value.clone()))?;
            }
        }
        // Apply deletions.
        for name in current.keys() {
            if !edited_map.contains_key(name) {
                client.delete_value(&key, name)?;
            }
        }
        Ok(())
    }
}

/// Registers `remote-file`, `merge`, `inbox`, `stock-ticker`, and
/// `registry-file`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("remote-file", |_| Box::new(RemoteFileSentinel::new()));
    registry.register("merge", |_| Box::new(MergeSentinel::new()));
    registry.register("inbox", |_| Box::new(InboxSentinel::new()));
    registry.register("stock-ticker", |_| Box::new(StockTickerSentinel::new()));
    registry.register("registry-file", |_| Box::new(RegistryFileSentinel::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::{FileServer, MailStore, PopServer, QuoteServer, RegistryServer};
    use std::sync::Arc;

    #[test]
    fn remote_file_fetches_and_writes_back() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/pub/data.txt", b"remote original");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/local.af",
                &SentinelSpec::new("remote-file", Strategy::ProcessControl)
                    .backing(Backing::Disk)
                    .with("service", "files")
                    .with("remote", "/pub/data.txt"),
            )
            .expect("install");
        assert_eq!(read_active(&world, "/local.af"), b"remote original");
        // Writing through the active file propagates on close.
        write_active(&world, "/local.af", b"edited locally!");
        let client = afs_remote::FileClient::new(world.net().clone(), "files");
        assert_eq!(
            client.get_all("/pub/data.txt").expect("get"),
            b"edited locally!"
        );
    }

    #[test]
    fn remote_file_tracks_source_changes_across_opens() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/doc", b"v1");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/doc.af",
                &SentinelSpec::new("remote-file", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remote", "/doc"),
            )
            .expect("install");
        assert_eq!(read_active(&world, "/doc.af"), b"v1");
        // The source changes behind the intermediary's back; the next open
        // sees it — the capability §1 says static aggregation lacks.
        server.seed("/doc", b"v2 fresh");
        assert_eq!(read_active(&world, "/doc.af"), b"v2 fresh");
    }

    #[test]
    fn merge_concatenates_remote_files_with_separator() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/parts/a", b"alpha");
        server.seed("/parts/b", b"beta");
        server.seed("/parts/c", b"gamma");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/all.af",
                &SentinelSpec::new("merge", Strategy::DllThread)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remotes", "/parts/a, /parts/b, /parts/c")
                    .with("separator", "\n--\n"),
            )
            .expect("install");
        assert_eq!(
            read_active(&world, "/all.af"),
            b"alpha\n--\nbeta\n--\ngamma"
        );
    }

    #[test]
    fn inbox_aggregates_multiple_pop_servers() {
        let world = test_world();
        let store1 = MailStore::new();
        let store2 = MailStore::new();
        store1.deliver("alice@a", "me@here", "first", "body one");
        store2.deliver("bob@b", "me@here", "second", "body two");
        world
            .net()
            .register("pop1", PopServer::new(store1.clone()) as Arc<dyn Service>);
        world
            .net()
            .register("pop2", PopServer::new(store2.clone()) as Arc<dyn Service>);
        world
            .install_active_file(
                "/inbox.af",
                &SentinelSpec::new("inbox", Strategy::ProcessControl)
                    .backing(Backing::Memory)
                    .with("servers", "pop1, pop2")
                    .with("user", "me@here"),
            )
            .expect("install");
        let text = String::from_utf8(read_active(&world, "/inbox.af")).expect("utf8");
        assert!(text.contains("From: alice@a"));
        assert!(text.contains("Subject: second"));
        assert!(text.contains("body two"));
        // delete=false keeps messages on the servers.
        assert_eq!(store1.count("me@here"), 1);
    }

    #[test]
    fn inbox_delete_drains_servers() {
        let world = test_world();
        let store = MailStore::new();
        store.deliver("x@y", "me@here", "s", "b");
        world
            .net()
            .register("pop", PopServer::new(store.clone()) as Arc<dyn Service>);
        world
            .install_active_file(
                "/inbox.af",
                &SentinelSpec::new("inbox", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("servers", "pop")
                    .with("user", "me@here")
                    .with("delete", "true"),
            )
            .expect("install");
        let _ = read_active(&world, "/inbox.af");
        assert_eq!(store.count("me@here"), 0, "retrieval drained the mailbox");
    }

    #[test]
    fn stock_ticker_renders_quotes_and_refreshes_per_open() {
        let world = test_world();
        let server = QuoteServer::new(11, &["ACME", "INIT"]);
        world
            .net()
            .register("quotes", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/stocks.af",
                &SentinelSpec::new("stock-ticker", Strategy::DllThread)
                    .backing(Backing::Memory)
                    .with("service", "quotes")
                    .with("symbols", "ACME, INIT"),
            )
            .expect("install");
        let first = String::from_utf8(read_active(&world, "/stocks.af")).expect("utf8");
        assert!(first.starts_with("ACME\t"));
        assert_eq!(first.lines().count(), 2);
        // Market moves; a fresh open downloads the latest quotes.
        for _ in 0..10 {
            server.advance();
        }
        let second = String::from_utf8(read_active(&world, "/stocks.af")).expect("utf8");
        assert_ne!(
            first, second,
            "file reflects the latest stock quotes on every open"
        );
    }

    #[test]
    fn registry_file_round_trips_edits() {
        let world = test_world();
        let server = RegistryServer::new();
        server.set("HKLM/Soft/App", "theme", RegistryValue::Str("dark".into()));
        server.set("HKLM/Soft/App", "volume", RegistryValue::U32(7));
        world
            .net()
            .register("registry", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/config.af",
                &SentinelSpec::new("registry-file", Strategy::DllOnly)
                    .with("service", "registry")
                    .with("key", "HKLM/Soft/App"),
            )
            .expect("install");
        let text = String::from_utf8(read_active(&world, "/config.af")).expect("utf8");
        assert_eq!(text, "theme=dark\nvolume=7\n");

        // Edit through the file interface: change theme, drop volume, add
        // a new value — like editing an INI file.
        {
            use afs_winapi::{Access, Disposition, FileApi};
            let api = world.api();
            let h = api
                .create_file(
                    "/config.af",
                    Access::read_write(),
                    Disposition::OpenExisting,
                )
                .expect("open");
            // Overwrite the whole view.
            let new_text = b"lang=en\ntheme=light\n";
            api.write_file(h, new_text).expect("write");
            api.set_end_of_file(h).err(); // not supported on active: ignore
            api.close_handle(h).expect("close applies the diff");
        }
        assert_eq!(
            server.get("HKLM/Soft/App", "theme"),
            Some(RegistryValue::Str("light".into()))
        );
        assert_eq!(
            server.get("HKLM/Soft/App", "lang"),
            Some(RegistryValue::Str("en".into()))
        );
        assert_eq!(
            server.get("HKLM/Soft/App", "volume"),
            None,
            "removed line deletes the value"
        );
    }

    #[test]
    fn aggregators_reject_writes() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/a", b"x");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("merge", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remotes", "/a"),
            )
            .expect("install");
        use afs_winapi::{Access, Disposition, FileApi, Win32Error};
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.write_file(h, b"no"), Err(Win32Error::NotSupported));
        api.close_handle(h).expect("close");
    }
}
