//! Aggregation sentinels (§3).
//!
//! "The sentinel can aggregate information from various sources,
//! presenting it to client applications as a conventional file. Examples
//! of these sources include other local or remote files, databases,
//! network connections, or even other processes."

use std::collections::BTreeMap;

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};
use afs_remote::RegistryValue;

/// Seamless access to one remote file: fetched into the local cache on
/// open, written back on close if modified — "the sentinel accesses the
/// remote file using a standard protocol (e.g., FTP or HTTP), creates a
/// local copy, and makes the copy available to the client application"
/// (§3).
///
/// Configuration: `service` (file-server name), `remote` (path on the
/// server), `writeback` (`true` to push changes on close; default true).
pub struct RemoteFileSentinel {
    dirty: bool,
}

impl RemoteFileSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        RemoteFileSentinel { dirty: false }
    }
}

impl Default for RemoteFileSentinel {
    fn default() -> Self {
        RemoteFileSentinel::new()
    }
}

impl SentinelLogic for RemoteFileSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let remote = ctx.require_str("remote")?.to_owned();
        let client = ctx.file_client(&service);
        let data = client.get_all(&remote)?;
        ctx.cache().replace(&data)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let n = ctx.cache().write_at(offset, data)?;
        self.dirty = true;
        Ok(n)
    }

    fn flush(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.dirty {
            let service = ctx.require_str("service")?.to_owned();
            let remote = ctx.require_str("remote")?.to_owned();
            let writeback = ctx
                .config_str("writeback")
                .map(|v| v != "false")
                .unwrap_or(true);
            if writeback {
                let data = ctx.cache().to_vec()?;
                ctx.file_client(&service).replace(&remote, &data)?;
                self.dirty = false;
            }
        }
        Ok(())
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.flush(ctx)
    }
}

/// Merges several remote files into one local view: "the sentinel can
/// also merge multiple remote files into a single local file" (§3).
/// Read-only.
///
/// Configuration: `service`, `remotes` (comma-separated paths),
/// `separator` (string inserted between parts; default none).
pub struct MergeSentinel;

impl MergeSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        MergeSentinel
    }
}

impl Default for MergeSentinel {
    fn default() -> Self {
        MergeSentinel::new()
    }
}

impl SentinelLogic for MergeSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let remotes = ctx.require_str("remotes")?.to_owned();
        let separator = ctx.config_str("separator").unwrap_or("").to_owned();
        let client = ctx.file_client(&service);
        let mut merged = Vec::new();
        for (i, remote) in remotes.split(',').map(str::trim).enumerate() {
            if i > 0 {
                merged.extend_from_slice(separator.as_bytes());
            }
            merged.extend_from_slice(&client.get_all(remote)?);
        }
        ctx.cache().replace(&merged)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The POP inbox file: "an inbox file of an E-mail program can be such
/// that reading it causes new messages to be retrieved possibly from
/// multiple remote POP servers" (§3). Messages are rendered mbox-style;
/// retrieved messages are deleted from the servers when `delete=true`.
///
/// Configuration: `servers` (comma-separated POP service names), `user`
/// (mailbox owner; defaults to the opening user), `delete`
/// (default false).
pub struct InboxSentinel;

impl InboxSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        InboxSentinel
    }
}

impl Default for InboxSentinel {
    fn default() -> Self {
        InboxSentinel::new()
    }
}

impl SentinelLogic for InboxSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let servers = ctx.require_str("servers")?.to_owned();
        let user = ctx
            .config_str("user")
            .map(str::to_owned)
            .unwrap_or_else(|| ctx.user().to_owned());
        let delete = ctx.config_bool("delete");
        let client = ctx.mail_client();
        let mut rendered = Vec::new();
        for server in servers.split(',').map(str::trim) {
            for id in client.list(server, &user)? {
                let msg = client.retrieve(server, &user, id)?;
                rendered.extend_from_slice(
                    format!(
                        "From: {}\nSubject: {}\n\n{}\n\n",
                        msg.from, msg.subject, msg.body
                    )
                    .as_bytes(),
                );
                if delete {
                    client.delete(server, &user, id)?;
                }
            }
        }
        ctx.cache().replace(&rendered)?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The stock-quote file: "an active file that reflects the latest stock
/// quotes (downloaded by the sentinel from a server) every time the file
/// is opened" (§3). Renders `SYMBOL<TAB>dollars.cents` lines.
///
/// Configuration: `service` (quote service name), `symbols`
/// (comma-separated tickers).
pub struct StockTickerSentinel;

impl StockTickerSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        StockTickerSentinel
    }
}

impl Default for StockTickerSentinel {
    fn default() -> Self {
        StockTickerSentinel::new()
    }
}

impl SentinelLogic for StockTickerSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let symbols_cfg = ctx.require_str("symbols")?.to_owned();
        let symbols: Vec<&str> = symbols_cfg.split(',').map(str::trim).collect();
        let quotes = ctx.quote_client(&service).quotes(&symbols)?;
        let mut rendered = String::new();
        for q in &quotes {
            rendered.push_str(&format!(
                "{}\t{}.{:02}\n",
                q.symbol,
                q.cents / 100,
                q.cents % 100
            ));
        }
        ctx.cache().replace(rendered.as_bytes())?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }
}

/// The registry-as-a-file sentinel: "filtering can also be used to
/// provide a file-based interface to the Windows system registry …
/// providing a simplified version (e.g., a plain text file) to the
/// client application. Any modifications by the client application can
/// in turn be parsed by the sentinel process and translated into
/// appropriate registry modifications" (§3).
///
/// The rendered text is one `name=value` line per value of the
/// configured key, sorted by name. Writing the file back applies the
/// diff: changed/added lines become `SetValue`, removed lines become
/// `DeleteValue`. String values only (the "simplified version").
///
/// Configuration: `service` (registry service name), `key` (key path).
pub struct RegistryFileSentinel {
    view: Vec<u8>,
    dirty: bool,
}

impl RegistryFileSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        RegistryFileSentinel {
            view: Vec::new(),
            dirty: false,
        }
    }

    fn parse_lines(text: &str) -> Vec<(String, String)> {
        text.lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() {
                    return None;
                }
                line.split_once('=')
                    .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
            })
            .collect()
    }
}

impl Default for RegistryFileSentinel {
    fn default() -> Self {
        RegistryFileSentinel::new()
    }
}

impl SentinelLogic for RegistryFileSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let key = ctx.require_str("key")?.to_owned();
        let values = ctx.registry_client(&service).enum_values(&key)?;
        let mut rendered = String::new();
        for (name, value) in values {
            let shown = match value {
                RegistryValue::Str(s) => s,
                RegistryValue::U32(v) => v.to_string(),
                RegistryValue::Bin(b) => b
                    .iter()
                    .map(|byte| format!("{byte:02x}"))
                    .collect::<String>(),
            };
            rendered.push_str(&format!("{name}={shown}\n"));
        }
        self.view = rendered.into_bytes();
        Ok(())
    }

    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let start = (offset as usize).min(self.view.len());
        let n = buf.len().min(self.view.len() - start);
        buf[..n].copy_from_slice(&self.view[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, _ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset as usize + data.len();
        if self.view.len() < end {
            self.view.resize(end, 0);
        }
        self.view[offset as usize..end].copy_from_slice(data);
        self.dirty = true;
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.view.len() as u64)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if !self.dirty {
            return Ok(());
        }
        let service = ctx.require_str("service")?.to_owned();
        let key = ctx.require_str("key")?.to_owned();
        let client = ctx.registry_client(&service);
        let current: std::collections::BTreeMap<String, String> = client
            .enum_values(&key)?
            .into_iter()
            .map(|(name, value)| {
                let shown = match value {
                    RegistryValue::Str(s) => s,
                    RegistryValue::U32(v) => v.to_string(),
                    RegistryValue::Bin(b) => b
                        .iter()
                        .map(|byte| format!("{byte:02x}"))
                        .collect::<String>(),
                };
                (name, shown)
            })
            .collect();
        let text = String::from_utf8_lossy(&self.view).into_owned();
        let edited = Self::parse_lines(&text);
        let edited_map: std::collections::BTreeMap<_, _> = edited.iter().cloned().collect();
        // Apply additions and modifications.
        for (name, value) in &edited_map {
            if current.get(name) != Some(value) {
                client.set_value(&key, name, &RegistryValue::Str(value.clone()))?;
            }
        }
        // Apply deletions.
        for name in current.keys() {
            if !edited_map.contains_key(name) {
                client.delete_value(&key, name)?;
            }
        }
        Ok(())
    }
}

/// Control code: get (empty payload) or set (comma-separated payload)
/// the table schema of a [`TableSentinel`].
pub const CTL_SQL_SCHEMA: u32 = 0xAF00_5C01;
/// Control code: install a new query (the payload, `select … [where …]`)
/// on a [`TableSentinel`] and return its rendered result.
pub const CTL_SQL_QUERY: u32 = 0xAF00_5C02;
/// Control code: count rows of a [`TableSentinel`]; an optional payload
/// `<col> <op> <value>` counts only matching rows.
pub const CTL_SQL_COUNT: u32 = 0xAF00_5C03;

/// A comparison in the predicate mini-language of [`TableSentinel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredOp {
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    Contains,
}

impl PredOp {
    fn parse(tok: &str) -> Option<PredOp> {
        Some(match tok {
            "=" | "==" => PredOp::Eq,
            "!=" | "<>" => PredOp::Ne,
            "<" => PredOp::Lt,
            ">" => PredOp::Gt,
            "<=" => PredOp::Le,
            ">=" => PredOp::Ge,
            "contains" => PredOp::Contains,
            _ => return None,
        })
    }

    /// Compares numerically when both sides parse as numbers, else
    /// lexicographically — the usual "schemaless SQL" affordance.
    fn matches(self, lhs: &str, rhs: &str) -> bool {
        use std::cmp::Ordering;
        let ord = match (lhs.parse::<f64>(), rhs.parse::<f64>()) {
            (Ok(a), Ok(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            _ => lhs.cmp(rhs),
        };
        match self {
            PredOp::Eq => ord == Ordering::Equal,
            PredOp::Ne => ord != Ordering::Equal,
            PredOp::Lt => ord == Ordering::Less,
            PredOp::Gt => ord == Ordering::Greater,
            PredOp::Le => ord != Ordering::Greater,
            PredOp::Ge => ord != Ordering::Less,
            PredOp::Contains => lhs.contains(rhs),
        }
    }
}

/// A parsed `select` statement: optional projection and optional
/// single-comparison predicate.
#[derive(Debug, Clone)]
struct Query {
    /// `None` = `select *`.
    cols: Option<Vec<String>>,
    predicate: Option<(String, PredOp, String)>,
}

impl Query {
    fn select_all() -> Self {
        Query {
            cols: None,
            predicate: None,
        }
    }
}

/// Strips optional single quotes so values may contain spaces.
fn unquote(v: &str) -> &str {
    v.strip_prefix('\'')
        .and_then(|v| v.strip_suffix('\''))
        .unwrap_or(v)
}

/// Parses `<col> <op> <value>` (value may be single-quoted).
fn parse_predicate(text: &str) -> SentinelResult<(String, PredOp, String)> {
    let text = text.trim();
    let (col, rest) = text
        .split_once(char::is_whitespace)
        .ok_or_else(|| SentinelError::Other(format!("bad predicate: `{text}`")))?;
    let rest = rest.trim_start();
    let (op_tok, value) = rest
        .split_once(char::is_whitespace)
        .ok_or_else(|| SentinelError::Other(format!("bad predicate: `{text}`")))?;
    let op = PredOp::parse(op_tok)
        .ok_or_else(|| SentinelError::Other(format!("unknown operator `{op_tok}`")))?;
    Ok((col.to_owned(), op, unquote(value.trim()).to_owned()))
}

/// Parses `select <cols|*> [where <col> <op> <value>]`.
fn parse_query(text: &str) -> SentinelResult<Query> {
    let text = text.trim();
    let rest = text
        .strip_prefix("select ")
        .or_else(|| text.strip_prefix("SELECT "))
        .ok_or_else(|| SentinelError::Other(format!("query must start with `select`: `{text}`")))?
        .trim_start();
    let (proj, predicate) = match rest.find(" where ").or_else(|| rest.find(" WHERE ")) {
        Some(i) => (&rest[..i], Some(parse_predicate(&rest[i + 7..])?)),
        None => (rest, None),
    };
    let proj = proj.trim();
    let cols = if proj == "*" {
        None
    } else {
        let cols: Vec<String> = proj
            .split(',')
            .map(|c| c.trim().to_owned())
            .filter(|c| !c.is_empty())
            .collect();
        if cols.is_empty() {
            return Err(SentinelError::Other("empty projection".into()));
        }
        Some(cols)
    };
    Ok(Query { cols, predicate })
}

/// Escapes a cell for the tab-separated persisted/rendered forms.
fn escape_cell(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

fn unescape_cell(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('t') => out.push('\t'),
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// The SQL-queryable aggregate table (§3 "databases" as a source, taken
/// literally): the active file *is* a table. Writing CSV lines upserts
/// rows keyed by the first schema column; reading renders the current
/// query's result; pragma-style [`SentinelLogic::control`] codes expose
/// schema ([`CTL_SQL_SCHEMA`]), ad-hoc queries ([`CTL_SQL_QUERY`]) and
/// row counts ([`CTL_SQL_COUNT`]). Rows live in the sentinel's cache, so
/// a spec with `durable=on` gets a WAL-backed table that survives crash
/// and reopen; the runtime's `CTL_STORE_*` codes then checkpoint it and
/// tune its sync mode.
///
/// Configuration: `schema` (comma-separated column names; the first is
/// the primary key), `query` (initial query; default `select *`).
pub struct TableSentinel {
    schema: Vec<String>,
    rows: BTreeMap<String, Vec<String>>,
    query: Query,
    pending: String,
}

impl TableSentinel {
    /// Creates the sentinel; schema is loaded on open.
    pub fn new() -> Self {
        TableSentinel {
            schema: Vec::new(),
            rows: BTreeMap::new(),
            query: Query::select_all(),
            pending: String::new(),
        }
    }

    /// Serialises schema + rows into the cache, which is where durability
    /// (if configured) lives.
    fn persist(&self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let mut out = String::new();
        out.push_str(
            &self
                .schema
                .iter()
                .map(|c| escape_cell(c))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in self.rows.values() {
            out.push_str(
                &row.iter()
                    .map(|c| escape_cell(c))
                    .collect::<Vec<_>>()
                    .join("\t"),
            );
            out.push('\n');
        }
        ctx.cache().replace(out.as_bytes())
    }

    /// Loads schema + rows from the cache image; `true` if it held a table.
    fn load(&mut self, image: &[u8]) -> bool {
        let text = String::from_utf8_lossy(image);
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return false;
        };
        let schema: Vec<String> = header.split('\t').map(unescape_cell).collect();
        if schema.is_empty() || schema.iter().any(String::is_empty) {
            return false;
        }
        let mut rows = BTreeMap::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut row: Vec<String> = line.split('\t').map(unescape_cell).collect();
            row.resize(schema.len(), String::new());
            rows.insert(row[0].clone(), row);
        }
        self.schema = schema;
        self.rows = rows;
        true
    }

    fn col_index(&self, name: &str) -> SentinelResult<usize> {
        self.schema
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| SentinelError::Other(format!("unknown column `{name}`")))
    }

    fn row_matches(&self, row: &[String], pred: &Option<(String, PredOp, String)>) -> bool {
        match pred {
            None => true,
            Some((col, op, value)) => match self.col_index(col) {
                Ok(i) => op.matches(&row[i], value),
                Err(_) => false,
            },
        }
    }

    /// Renders the current query over the current rows: a header line of
    /// projected column names, then one TSV line per matching row.
    fn render(&self) -> SentinelResult<String> {
        let indices: Vec<usize> = match &self.query.cols {
            None => (0..self.schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| self.col_index(c))
                .collect::<SentinelResult<_>>()?,
        };
        if let Some((col, _, _)) = &self.query.predicate {
            self.col_index(col)?;
        }
        let mut out = String::new();
        out.push_str(
            &indices
                .iter()
                .map(|&i| escape_cell(&self.schema[i]))
                .collect::<Vec<_>>()
                .join("\t"),
        );
        out.push('\n');
        for row in self.rows.values() {
            if !self.row_matches(row, &self.query.predicate) {
                continue;
            }
            out.push_str(
                &indices
                    .iter()
                    .map(|&i| escape_cell(&row[i]))
                    .collect::<Vec<_>>()
                    .join("\t"),
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Upserts one CSV line; blank lines are ignored.
    fn upsert_line(&mut self, line: &str) -> SentinelResult<()> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut row: Vec<String> = line
            .split(',')
            .map(|v| unquote(v.trim()).to_owned())
            .collect();
        if row.len() > self.schema.len() {
            return Err(SentinelError::Other(format!(
                "row has {} values but schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        row.resize(self.schema.len(), String::new());
        if row[0].is_empty() {
            return Err(SentinelError::Other("empty primary key".into()));
        }
        self.rows.insert(row[0].clone(), row);
        Ok(())
    }

    fn drain_pending(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let mut changed = false;
        while let Some(i) = self.pending.find('\n') {
            let line: String = self.pending.drain(..=i).collect();
            self.upsert_line(&line)?;
            changed = true;
        }
        if changed {
            self.persist(ctx)?;
        }
        Ok(())
    }

    fn set_schema(&mut self, ctx: &mut SentinelCtx, text: &str) -> SentinelResult<()> {
        let schema: Vec<String> = text
            .split(',')
            .map(|c| c.trim().to_owned())
            .filter(|c| !c.is_empty())
            .collect();
        if schema.is_empty() {
            return Err(SentinelError::Other("empty schema".into()));
        }
        if !self.rows.is_empty() && schema != self.schema {
            return Err(SentinelError::Other(
                "cannot change the schema of a non-empty table".into(),
            ));
        }
        self.schema = schema;
        self.persist(ctx)
    }
}

impl Default for TableSentinel {
    fn default() -> Self {
        TableSentinel::new()
    }
}

impl SentinelLogic for TableSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if ctx.cache().kind().is_none() {
            return Err(SentinelError::Other(
                "table sentinel requires a cache backing".into(),
            ));
        }
        // A persisted table (possibly recovered from the WAL) wins over
        // the spec: the data outlives any one open.
        let image = ctx.cache().to_vec()?;
        if !image.is_empty() && self.load(&image) {
            // Loaded from the cache.
        } else {
            let schema = ctx.require_str("schema")?.to_owned();
            self.set_schema(ctx, &schema)?;
        }
        if let Some(q) = ctx.config_str("query") {
            self.query = parse_query(q)?;
        }
        Ok(())
    }

    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let rendered = self.render()?;
        let bytes = rendered.as_bytes();
        let start = (offset as usize).min(bytes.len());
        let n = buf.len().min(bytes.len() - start);
        buf[..n].copy_from_slice(&bytes[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, _offset: u64, data: &[u8]) -> SentinelResult<usize> {
        // Writes are row upserts, not byte edits: the offset is ignored
        // and the payload is buffered until a full CSV line arrives.
        self.pending.push_str(&String::from_utf8_lossy(data));
        self.drain_pending(ctx)?;
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.render()?.len() as u64)
    }

    fn control(
        &mut self,
        ctx: &mut SentinelCtx,
        code: u32,
        payload: &[u8],
    ) -> SentinelResult<Vec<u8>> {
        let text = String::from_utf8_lossy(payload).into_owned();
        match code {
            CTL_SQL_SCHEMA => {
                if !text.trim().is_empty() {
                    self.set_schema(ctx, &text)?;
                }
                Ok(self.schema.join(",").into_bytes())
            }
            CTL_SQL_QUERY => {
                self.query = parse_query(&text)?;
                Ok(self.render()?.into_bytes())
            }
            CTL_SQL_COUNT => {
                let pred = if text.trim().is_empty() {
                    None
                } else {
                    Some(parse_predicate(&text)?)
                };
                if let Some((col, _, _)) = &pred {
                    self.col_index(col)?;
                }
                let n = self
                    .rows
                    .values()
                    .filter(|row| self.row_matches(row, &pred))
                    .count();
                Ok(n.to_string().into_bytes())
            }
            _ => Err(SentinelError::Unsupported),
        }
    }

    fn flush(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        // A trailing unterminated line is committed on flush/close so
        // `write; close` never loses the last row.
        if !self.pending.trim().is_empty() {
            let line = std::mem::take(&mut self.pending);
            self.upsert_line(&line)?;
            self.persist(ctx)?;
        } else {
            self.pending.clear();
        }
        Ok(())
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.flush(ctx)
    }
}

/// Registers `remote-file`, `merge`, `inbox`, `stock-ticker`,
/// `registry-file`, and `table` — each with its declared configuration
/// keys, so a typo'd key is rejected at open time.
pub fn register(registry: &SentinelRegistry) {
    registry.register_with_keys("remote-file", &["service", "remote", "writeback"], |_| {
        Box::new(RemoteFileSentinel::new())
    });
    registry.register_with_keys("merge", &["service", "remotes", "separator"], |_| {
        Box::new(MergeSentinel::new())
    });
    registry.register_with_keys("inbox", &["servers", "user", "delete"], |_| {
        Box::new(InboxSentinel::new())
    });
    registry.register_with_keys("stock-ticker", &["service", "symbols"], |_| {
        Box::new(StockTickerSentinel::new())
    });
    registry.register_with_keys("registry-file", &["service", "key"], |_| {
        Box::new(RegistryFileSentinel::new())
    });
    registry.register_with_keys("table", &["schema", "query"], |_| {
        Box::new(TableSentinel::new())
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::{FileServer, MailStore, PopServer, QuoteServer, RegistryServer};
    use std::sync::Arc;

    #[test]
    fn remote_file_fetches_and_writes_back() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/pub/data.txt", b"remote original");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/local.af",
                &SentinelSpec::new("remote-file", Strategy::ProcessControl)
                    .backing(Backing::Disk)
                    .with("service", "files")
                    .with("remote", "/pub/data.txt"),
            )
            .expect("install");
        assert_eq!(read_active(&world, "/local.af"), b"remote original");
        // Writing through the active file propagates on close.
        write_active(&world, "/local.af", b"edited locally!");
        let client = afs_remote::FileClient::new(world.net().clone(), "files");
        assert_eq!(
            client.get_all("/pub/data.txt").expect("get"),
            b"edited locally!"
        );
    }

    #[test]
    fn remote_file_tracks_source_changes_across_opens() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/doc", b"v1");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/doc.af",
                &SentinelSpec::new("remote-file", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remote", "/doc"),
            )
            .expect("install");
        assert_eq!(read_active(&world, "/doc.af"), b"v1");
        // The source changes behind the intermediary's back; the next open
        // sees it — the capability §1 says static aggregation lacks.
        server.seed("/doc", b"v2 fresh");
        assert_eq!(read_active(&world, "/doc.af"), b"v2 fresh");
    }

    #[test]
    fn merge_concatenates_remote_files_with_separator() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/parts/a", b"alpha");
        server.seed("/parts/b", b"beta");
        server.seed("/parts/c", b"gamma");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/all.af",
                &SentinelSpec::new("merge", Strategy::DllThread)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remotes", "/parts/a, /parts/b, /parts/c")
                    .with("separator", "\n--\n"),
            )
            .expect("install");
        assert_eq!(
            read_active(&world, "/all.af"),
            b"alpha\n--\nbeta\n--\ngamma"
        );
    }

    #[test]
    fn inbox_aggregates_multiple_pop_servers() {
        let world = test_world();
        let store1 = MailStore::new();
        let store2 = MailStore::new();
        store1.deliver("alice@a", "me@here", "first", "body one");
        store2.deliver("bob@b", "me@here", "second", "body two");
        world
            .net()
            .register("pop1", PopServer::new(store1.clone()) as Arc<dyn Service>);
        world
            .net()
            .register("pop2", PopServer::new(store2.clone()) as Arc<dyn Service>);
        world
            .install_active_file(
                "/inbox.af",
                &SentinelSpec::new("inbox", Strategy::ProcessControl)
                    .backing(Backing::Memory)
                    .with("servers", "pop1, pop2")
                    .with("user", "me@here"),
            )
            .expect("install");
        let text = String::from_utf8(read_active(&world, "/inbox.af")).expect("utf8");
        assert!(text.contains("From: alice@a"));
        assert!(text.contains("Subject: second"));
        assert!(text.contains("body two"));
        // delete=false keeps messages on the servers.
        assert_eq!(store1.count("me@here"), 1);
    }

    #[test]
    fn inbox_delete_drains_servers() {
        let world = test_world();
        let store = MailStore::new();
        store.deliver("x@y", "me@here", "s", "b");
        world
            .net()
            .register("pop", PopServer::new(store.clone()) as Arc<dyn Service>);
        world
            .install_active_file(
                "/inbox.af",
                &SentinelSpec::new("inbox", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("servers", "pop")
                    .with("user", "me@here")
                    .with("delete", "true"),
            )
            .expect("install");
        let _ = read_active(&world, "/inbox.af");
        assert_eq!(store.count("me@here"), 0, "retrieval drained the mailbox");
    }

    #[test]
    fn stock_ticker_renders_quotes_and_refreshes_per_open() {
        let world = test_world();
        let server = QuoteServer::new(11, &["ACME", "INIT"]);
        world
            .net()
            .register("quotes", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/stocks.af",
                &SentinelSpec::new("stock-ticker", Strategy::DllThread)
                    .backing(Backing::Memory)
                    .with("service", "quotes")
                    .with("symbols", "ACME, INIT"),
            )
            .expect("install");
        let first = String::from_utf8(read_active(&world, "/stocks.af")).expect("utf8");
        assert!(first.starts_with("ACME\t"));
        assert_eq!(first.lines().count(), 2);
        // Market moves; a fresh open downloads the latest quotes.
        for _ in 0..10 {
            server.advance();
        }
        let second = String::from_utf8(read_active(&world, "/stocks.af")).expect("utf8");
        assert_ne!(
            first, second,
            "file reflects the latest stock quotes on every open"
        );
    }

    #[test]
    fn registry_file_round_trips_edits() {
        let world = test_world();
        let server = RegistryServer::new();
        server.set("HKLM/Soft/App", "theme", RegistryValue::Str("dark".into()));
        server.set("HKLM/Soft/App", "volume", RegistryValue::U32(7));
        world
            .net()
            .register("registry", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/config.af",
                &SentinelSpec::new("registry-file", Strategy::DllOnly)
                    .with("service", "registry")
                    .with("key", "HKLM/Soft/App"),
            )
            .expect("install");
        let text = String::from_utf8(read_active(&world, "/config.af")).expect("utf8");
        assert_eq!(text, "theme=dark\nvolume=7\n");

        // Edit through the file interface: change theme, drop volume, add
        // a new value — like editing an INI file.
        {
            use afs_winapi::{Access, Disposition, FileApi};
            let api = world.api();
            let h = api
                .create_file(
                    "/config.af",
                    Access::read_write(),
                    Disposition::OpenExisting,
                )
                .expect("open");
            // Overwrite the whole view.
            let new_text = b"lang=en\ntheme=light\n";
            api.write_file(h, new_text).expect("write");
            api.set_end_of_file(h).err(); // not supported on active: ignore
            api.close_handle(h).expect("close applies the diff");
        }
        assert_eq!(
            server.get("HKLM/Soft/App", "theme"),
            Some(RegistryValue::Str("light".into()))
        );
        assert_eq!(
            server.get("HKLM/Soft/App", "lang"),
            Some(RegistryValue::Str("en".into()))
        );
        assert_eq!(
            server.get("HKLM/Soft/App", "volume"),
            None,
            "removed line deletes the value"
        );
    }

    #[test]
    fn table_upserts_and_queries() {
        let world = test_world();
        world
            .install_active_file(
                "/quotes.tbl",
                &SentinelSpec::new("table", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("schema", "sym, price, qty"),
            )
            .expect("install");
        write_active(&world, "/quotes.tbl", b"ACME,110,5\nINIT,90,2\n");
        // Upsert: same primary key replaces the row.
        write_active(&world, "/quotes.tbl", b"ACME,120,7\n");
        let text = String::from_utf8(read_active(&world, "/quotes.tbl")).expect("utf8");
        assert_eq!(text, "sym\tprice\tqty\nACME\t120\t7\nINIT\t90\t2\n");

        use afs_winapi::{Access, Disposition, FileApi};
        let api = world.api();
        let h = api
            .create_file(
                "/quotes.tbl",
                Access::read_write(),
                Disposition::OpenExisting,
            )
            .expect("open");
        // Pragma lane: schema introspection, ad-hoc query, counting.
        let schema = api
            .device_io_control(h, CTL_SQL_SCHEMA, b"")
            .expect("schema");
        assert_eq!(schema, b"sym,price,qty");
        let result = api
            .device_io_control(h, CTL_SQL_QUERY, b"select sym,price where price > 100")
            .expect("query");
        assert_eq!(result, b"sym\tprice\nACME\t120\n");
        let n = api
            .device_io_control(h, CTL_SQL_COUNT, b"qty >= 2")
            .expect("count");
        assert_eq!(n, b"2");
        // The installed query shapes plain reads on this handle too.
        let mut buf = [0u8; 64];
        let read = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..read], b"sym\tprice\nACME\t120\n");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn table_rejects_bad_queries_and_schema_changes() {
        let world = test_world();
        world
            .install_active_file(
                "/t.tbl",
                &SentinelSpec::new("table", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("schema", "k,v"),
            )
            .expect("install");
        write_active(&world, "/t.tbl", b"a,1\n");
        use afs_winapi::{Access, Disposition, FileApi, Win32Error};
        let api = world.api();
        let h = api
            .create_file("/t.tbl", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(
            api.device_io_control(h, CTL_SQL_QUERY, b"drop table students"),
            Err(Win32Error::InvalidParameter),
            "non-select statements are rejected"
        );
        assert_eq!(
            api.device_io_control(h, CTL_SQL_QUERY, b"select nope"),
            Err(Win32Error::InvalidParameter),
            "unknown projection column is rejected"
        );
        assert_eq!(
            api.device_io_control(h, CTL_SQL_SCHEMA, b"a,b,c"),
            Err(Win32Error::InvalidParameter),
            "schema of a non-empty table cannot change"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn table_survives_reopen_durably_with_checkpoint_pragma() {
        use afs_core::CTL_STORE_CHECKPOINT;
        use afs_winapi::{Access, Disposition, FileApi};
        let vfs = Arc::new(afs_vfs::Vfs::new());
        let spec = SentinelSpec::new("table", Strategy::DllOnly)
            .backing(Backing::Disk)
            .with("schema", "host,state")
            .with("durable", "on")
            .with("sync", "commit");
        {
            let world = afs_core::AfsWorld::builder().vfs(Arc::clone(&vfs)).build();
            crate::register_all(world.sentinels());
            world
                .install_active_file("/fleet.tbl", &spec)
                .expect("install");
            write_active(&world, "/fleet.tbl", b"web1,up\nweb2,down\n");
            // Runtime pragma: checkpoint the WAL into the pages area.
            let api = world.api();
            let h = api
                .create_file(
                    "/fleet.tbl",
                    Access::read_write(),
                    Disposition::OpenExisting,
                )
                .expect("open");
            let reply = api
                .device_io_control(h, CTL_STORE_CHECKPOINT, b"")
                .expect("checkpoint");
            let text = String::from_utf8(reply).expect("utf8");
            assert!(text.contains("pages_written="), "{text}");
            api.close_handle(h).expect("close");
        }
        // The world (all sentinels, caches, handles) is gone; only the
        // disk remains. A new world over the same vfs recovers the table.
        let world = afs_core::AfsWorld::builder().vfs(vfs).build();
        crate::register_all(world.sentinels());
        write_active(&world, "/fleet.tbl", b"web2,up\n");
        let text = String::from_utf8(read_active(&world, "/fleet.tbl")).expect("utf8");
        assert_eq!(text, "host\tstate\nweb1\tup\nweb2\tup\n");
    }

    #[test]
    fn aggregators_reject_writes() {
        let world = test_world();
        let server = FileServer::new();
        server.seed("/a", b"x");
        world
            .net()
            .register("files", Arc::clone(&server) as Arc<dyn Service>);
        world
            .install_active_file(
                "/m.af",
                &SentinelSpec::new("merge", Strategy::DllOnly)
                    .backing(Backing::Memory)
                    .with("service", "files")
                    .with("remotes", "/a"),
            )
            .expect("install");
        use afs_winapi::{Access, Disposition, FileApi, Win32Error};
        let api = world.api();
        let h = api
            .create_file("/m.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.write_file(h, b"no"), Err(Win32Error::NotSupported));
        api.close_handle(h).expect("close");
    }
}
