//! The live-query sentinel: the motivating example from §1.
//!
//! "An end application that searches through a collection of distributed
//! databases cannot see changes in these databases … when an intermediary
//! first aggregates data from these databases and presents it to the
//! search application as a file." An active file, in contrast, keeps the
//! view live: [`LiveQuerySentinel`] renders a database prefix scan as a
//! text file and re-checks the database's change feed on every read,
//! refreshing the view when anything under the prefix changed.

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};

/// A consistency-tracking view over a [`DbServer`](afs_remote::DbServer)
/// prefix scan, rendered as `key=value` lines.
///
/// Configuration: `service` (database service name), `prefix` (key
/// prefix; default empty = whole database), `track` (`true` to re-check
/// the change feed on every read, default true — set `false` to get the
/// paper's "decoupled intermediary" behaviour for comparison).
pub struct LiveQuerySentinel {
    view: Vec<u8>,
    seen_seq: u64,
    track: bool,
}

impl LiveQuerySentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        LiveQuerySentinel {
            view: Vec::new(),
            seen_seq: 0,
            track: true,
        }
    }

    fn render(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let service = ctx.require_str("service")?.to_owned();
        let prefix = ctx.config_str("prefix").unwrap_or("").to_owned();
        let client = ctx.db_client(&service);
        let rows = client.scan(&prefix)?;
        let mut rendered = String::new();
        for (k, v) in rows {
            rendered.push_str(&format!("{}={}\n", k, String::from_utf8_lossy(&v)));
        }
        self.view = rendered.into_bytes();
        self.seen_seq = client.seq()?;
        Ok(())
    }

    fn refresh_if_stale(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if !self.track {
            return Ok(());
        }
        let service = ctx.require_str("service")?.to_owned();
        let prefix = ctx.config_str("prefix").unwrap_or("").to_owned();
        let client = ctx.db_client(&service);
        let changes = client.changes_since(self.seen_seq)?;
        if changes.iter().any(|c| c.key.starts_with(&prefix)) {
            self.render(ctx)?;
        } else if let Some(last) = changes.last() {
            // Changes outside our prefix: remember we saw them.
            self.seen_seq = last.seq;
        }
        Ok(())
    }
}

impl Default for LiveQuerySentinel {
    fn default() -> Self {
        LiveQuerySentinel::new()
    }
}

impl SentinelLogic for LiveQuerySentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.track = ctx
            .config_str("track")
            .map(|v| v != "false")
            .unwrap_or(true);
        self.render(ctx)
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        self.refresh_if_stale(ctx)?;
        let start = (offset as usize).min(self.view.len());
        let n = buf.len().min(self.view.len() - start);
        buf[..n].copy_from_slice(&self.view[start..start + n]);
        Ok(n)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }

    fn len(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        self.refresh_if_stale(ctx)?;
        Ok(self.view.len() as u64)
    }
}

/// Registers `live-query`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("live-query", |_| Box::new(LiveQuerySentinel::new()));
}

#[cfg(test)]
mod tests {
    use crate::test_world;
    use afs_core::{SentinelSpec, Strategy};
    use afs_net::Service;
    use afs_remote::DbServer;
    use afs_winapi::{Access, Disposition, FileApi, SeekMethod};
    use std::sync::Arc;

    fn setup(track: bool) -> (afs_core::AfsWorld, Arc<DbServer>) {
        let world = test_world();
        let db = DbServer::new();
        db.put("user:1", b"alice");
        db.put("user:2", b"bob");
        db.put("group:1", b"admins");
        world
            .net()
            .register("db", Arc::clone(&db) as Arc<dyn Service>);
        world
            .install_active_file(
                "/q.af",
                &SentinelSpec::new("live-query", Strategy::DllOnly)
                    .with("service", "db")
                    .with("prefix", "user:")
                    .with("track", if track { "true" } else { "false" }),
            )
            .expect("install");
        (world, db)
    }

    #[test]
    fn renders_prefix_scan_as_text() {
        let (world, _db) = setup(true);
        assert_eq!(
            crate::read_active(&world, "/q.af"),
            b"user:1=alice\nuser:2=bob\n"
        );
    }

    #[test]
    fn sees_database_changes_mid_open() {
        let (world, db) = setup(true);
        let api = world.api();
        let h = api
            .create_file("/q.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut buf = [0u8; 256];
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"user:1=alice\nuser:2=bob\n");
        // The database changes while the file is open.
        db.put("user:3", b"carol");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let n = api.read_file(h, &mut buf).expect("read again");
        assert_eq!(
            &buf[..n],
            b"user:1=alice\nuser:2=bob\nuser:3=carol\n",
            "the active file tracks changes in the original sources (§1)"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn decoupled_mode_reproduces_the_intermediary_weakness() {
        let (world, db) = setup(false);
        let api = world.api();
        let h = api
            .create_file("/q.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        db.put("user:3", b"carol");
        let mut buf = [0u8; 256];
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(
            &buf[..n],
            b"user:1=alice\nuser:2=bob\n",
            "track=false is the paper's static intermediary: stale"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn changes_outside_prefix_do_not_rerender() {
        let (world, db) = setup(true);
        let api = world.api();
        let h = api
            .create_file("/q.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        db.put("group:2", b"users");
        let mut buf = [0u8; 256];
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"user:1=alice\nuser:2=bob\n");
        // Follow-up in-prefix change is still caught.
        db.delete("user:2");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let n = api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf[..n], b"user:1=alice\n");
        api.close_handle(h).expect("close");
    }
}
