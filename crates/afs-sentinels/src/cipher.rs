//! Transparent encryption sentinels.
//!
//! A filtering use the paper's framework admits directly: the stored data
//! part is ciphertext, the application reads and writes plaintext without
//! modification. The cipher is a keyed XOR keystream — **an obfuscation
//! demo, not cryptography** — chosen because it is position-independent
//! (byte `i` depends only on the key and `i`), so random-access reads and
//! writes stay consistent under seeking, unlike a chained cipher.

use afs_core::{SentinelCtx, SentinelLogic, SentinelRegistry, SentinelResult};

/// Derives the keystream byte for position `pos` under `key` (an xorshift
/// mix, deterministic and position-addressable).
fn keystream(key: u64, pos: u64) -> u8 {
    let mut x = key ^ pos.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    (x & 0xFF) as u8
}

/// XOR-keystream cipher over the cache: ciphertext at rest, plaintext in
/// flight.
///
/// Configuration: `key` (u64; default 0 — still obfuscates, but tests
/// should set a key).
pub struct XorCipherSentinel {
    key: u64,
}

impl XorCipherSentinel {
    /// Creates the cipher with `key`.
    pub fn new(key: u64) -> Self {
        XorCipherSentinel { key }
    }

    fn apply(&self, offset: u64, data: &mut [u8]) {
        for (i, b) in data.iter_mut().enumerate() {
            *b ^= keystream(self.key, offset + i as u64);
        }
    }
}

impl SentinelLogic for XorCipherSentinel {
    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let n = ctx.cache().read_at(offset, buf)?;
        self.apply(offset, &mut buf[..n]);
        Ok(n)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let mut enc = data.to_vec();
        self.apply(offset, &mut enc);
        ctx.cache().write_at(offset, &enc)
    }
}

/// Registers `xor-cipher` (config: `key`).
pub fn register(registry: &SentinelRegistry) {
    registry.register("xor-cipher", |spec| {
        let key = spec
            .config()
            .get("key")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Box::new(XorCipherSentinel::new(key))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_vfs::VPath;
    use proptest::prelude::*;

    #[test]
    fn plaintext_in_flight_ciphertext_at_rest() {
        let world = test_world();
        world
            .install_active_file(
                "/sec.af",
                &SentinelSpec::new("xor-cipher", Strategy::DllOnly)
                    .backing(Backing::Disk)
                    .with("key", "123456789"),
            )
            .expect("install");
        write_active(&world, "/sec.af", b"top secret payload");
        assert_eq!(read_active(&world, "/sec.af"), b"top secret payload");
        let stored = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/sec.af").expect("p"))
            .expect("read");
        assert_ne!(stored, b"top secret payload");
        assert_eq!(stored.len(), 18);
    }

    #[test]
    fn random_access_writes_stay_consistent() {
        use afs_winapi::{Access, Disposition, FileApi, SeekMethod};
        let world = test_world();
        world
            .install_active_file(
                "/ra.af",
                &SentinelSpec::new("xor-cipher", Strategy::ProcessControl)
                    .backing(Backing::Memory)
                    .with("key", "42"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/ra.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        api.write_file(h, b"AAAAAAAAAA").expect("write");
        api.set_file_pointer(h, 5, SeekMethod::Begin).expect("seek");
        api.write_file(h, b"zz").expect("patch");
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let mut buf = [0u8; 10];
        api.read_file(h, &mut buf).expect("read");
        assert_eq!(&buf, b"AAAAAzzAAA");
        api.close_handle(h).expect("close");
    }

    #[test]
    fn wrong_key_reads_garbage() {
        let world = test_world();
        world
            .install_active_file(
                "/k.af",
                &SentinelSpec::new("xor-cipher", Strategy::DllOnly)
                    .backing(Backing::Disk)
                    .with("key", "1"),
            )
            .expect("install");
        write_active(&world, "/k.af", b"hello");
        // Re-point the active file at a different key: the "cipher" no
        // longer matches the stored bytes.
        world
            .install_active_file(
                "/k.af",
                &SentinelSpec::new("xor-cipher", Strategy::DllOnly)
                    .backing(Backing::Disk)
                    .with("key", "2"),
            )
            .expect("reinstall");
        assert_ne!(read_active(&world, "/k.af"), b"hello");
    }

    proptest! {
        #[test]
        fn cipher_roundtrips_any_data_and_key(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            key in any::<u64>(),
            offset in 0u64..1024,
        ) {
            let cipher = XorCipherSentinel::new(key);
            let mut buf = data.clone();
            cipher.apply(offset, &mut buf);
            cipher.apply(offset, &mut buf);
            prop_assert_eq!(buf, data);
        }
    }
}
