//! Input/output filtering sentinels (§3).
//!
//! "The sentinel can introduce actions on either all or a subset of the
//! read and write accesses to the active file. This admits a range of
//! uses, from keeping a log of actions to filtering the data read from
//! and written into the data file."
//!
//! Byte-wise filters compose with any backing and any strategy because
//! they are pure functions of `(byte)` — the filtered view is consistent
//! under seeking.

use afs_core::{SentinelCtx, SentinelLogic, SentinelRegistry, SentinelResult};

/// A bytewise transformation applied on the read and write directions.
trait ByteFilter: Send {
    /// Applied to bytes leaving the file towards the application.
    fn outbound(&self, b: u8) -> u8;
    /// Applied to bytes the application writes, before storage.
    fn inbound(&self, b: u8) -> u8;
}

/// Generic filter sentinel over the cache.
struct FilterSentinel<F: ByteFilter> {
    filter: F,
}

impl<F: ByteFilter> SentinelLogic for FilterSentinel<F> {
    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let n = ctx.cache().read_at(offset, buf)?;
        for b in &mut buf[..n] {
            *b = self.filter.outbound(*b);
        }
        Ok(n)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let transformed: Vec<u8> = data.iter().map(|&b| self.filter.inbound(b)).collect();
        ctx.cache().write_at(offset, &transformed)
    }
}

struct Upper;

impl ByteFilter for Upper {
    fn outbound(&self, b: u8) -> u8 {
        b.to_ascii_uppercase()
    }
    fn inbound(&self, b: u8) -> u8 {
        b
    }
}

struct Lower;

impl ByteFilter for Lower {
    fn outbound(&self, b: u8) -> u8 {
        b.to_ascii_lowercase()
    }
    fn inbound(&self, b: u8) -> u8 {
        b
    }
}

struct Rot13;

fn rot13(b: u8) -> u8 {
    match b {
        b'a'..=b'z' => b'a' + (b - b'a' + 13) % 26,
        b'A'..=b'Z' => b'A' + (b - b'A' + 13) % 26,
        other => other,
    }
}

impl ByteFilter for Rot13 {
    fn outbound(&self, b: u8) -> u8 {
        rot13(b)
    }
    fn inbound(&self, b: u8) -> u8 {
        rot13(b)
    }
}

/// Uppercases everything the application reads; writes stored verbatim.
pub struct UppercaseSentinel;

impl UppercaseSentinel {
    /// Creates the boxed logic.
    pub fn boxed() -> Box<dyn SentinelLogic> {
        Box::new(FilterSentinel { filter: Upper })
    }
}

/// Lowercases everything the application reads; writes stored verbatim.
pub struct LowercaseSentinel;

impl LowercaseSentinel {
    /// Creates the boxed logic.
    pub fn boxed() -> Box<dyn SentinelLogic> {
        Box::new(FilterSentinel { filter: Lower })
    }
}

/// ROT13 in both directions: the stored file is obfuscated, the
/// application sees plain text. A self-inverse cipher, so reads and
/// writes use the same transform.
pub struct Rot13Sentinel;

impl Rot13Sentinel {
    /// Creates the boxed logic.
    pub fn boxed() -> Box<dyn SentinelLogic> {
        Box::new(FilterSentinel { filter: Rot13 })
    }
}

/// Converts stored LF line endings to CRLF on the way out and CRLF back
/// to LF on the way in — a classic legacy-application shim. Because the
/// mapping changes lengths, this sentinel presents a *rendered view* and
/// therefore materialises it on open and rewrites on close; it supports
/// whole-stream usage (read-all or replace-all), which is what legacy
/// text viewers do.
pub struct LineEndingSentinel {
    rendered: Vec<u8>,
    dirty: bool,
}

impl LineEndingSentinel {
    /// Creates the sentinel (view populated on open).
    pub fn new() -> Self {
        LineEndingSentinel {
            rendered: Vec::new(),
            dirty: false,
        }
    }
}

impl Default for LineEndingSentinel {
    fn default() -> Self {
        LineEndingSentinel::new()
    }
}

impl SentinelLogic for LineEndingSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let stored = ctx.cache().to_vec()?;
        self.rendered = Vec::with_capacity(stored.len() + 16);
        for &b in &stored {
            if b == b'\n' {
                self.rendered.push(b'\r');
            }
            self.rendered.push(b);
        }
        Ok(())
    }

    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let start = (offset as usize).min(self.rendered.len());
        let n = buf.len().min(self.rendered.len() - start);
        buf[..n].copy_from_slice(&self.rendered[start..start + n]);
        Ok(n)
    }

    fn write(&mut self, _ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset as usize + data.len();
        if self.rendered.len() < end {
            self.rendered.resize(end, 0);
        }
        self.rendered[offset as usize..end].copy_from_slice(data);
        self.dirty = true;
        Ok(data.len())
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.rendered.len() as u64)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.dirty {
            let stored: Vec<u8> = self
                .rendered
                .iter()
                .copied()
                .filter(|&b| b != b'\r')
                .collect();
            ctx.cache().replace(&stored)?;
        }
        Ok(())
    }
}

/// Registers `uppercase`, `lowercase`, `rot13`, and `line-ending`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("uppercase", |_| UppercaseSentinel::boxed());
    registry.register("lowercase", |_| LowercaseSentinel::boxed());
    registry.register("rot13", |_| Rot13Sentinel::boxed());
    registry.register("line-ending", |_| Box::new(LineEndingSentinel::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_vfs::VPath;

    #[test]
    fn uppercase_reads_shout_writes_verbatim() {
        let world = test_world();
        world
            .install_active_file(
                "/u.af",
                &SentinelSpec::new("uppercase", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        write_active(&world, "/u.af", b"Mixed Case");
        assert_eq!(read_active(&world, "/u.af"), b"MIXED CASE");
        // Stored data is untouched.
        assert_eq!(
            world
                .vfs()
                .read_stream_to_end(&VPath::parse("/u.af").expect("p"))
                .expect("read"),
            b"Mixed Case"
        );
    }

    #[test]
    fn rot13_is_transparent_but_obfuscates_storage() {
        let world = test_world();
        world
            .install_active_file(
                "/r.af",
                &SentinelSpec::new("rot13", Strategy::ProcessControl).backing(Backing::Disk),
            )
            .expect("install");
        write_active(&world, "/r.af", b"Attack at dawn!");
        assert_eq!(read_active(&world, "/r.af"), b"Attack at dawn!");
        let stored = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/r.af").expect("p"))
            .expect("read");
        assert_eq!(
            stored, b"Nggnpx ng qnja!",
            "the client application is unaware"
        );
    }

    #[test]
    fn lowercase_filter_works_under_thread_strategy() {
        let world = test_world();
        world
            .install_active_file(
                "/l.af",
                &SentinelSpec::new("lowercase", Strategy::DllThread).backing(Backing::Memory),
            )
            .expect("install");
        write_active(&world, "/l.af", b"LOUD");
        assert_eq!(read_active(&world, "/l.af"), b"loud");
    }

    #[test]
    fn line_endings_rendered_crlf_stored_lf() {
        let world = test_world();
        world
            .install_active_file(
                "/text.af",
                &SentinelSpec::new("line-ending", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        let p = VPath::parse("/text.af").expect("p");
        world
            .vfs()
            .write_stream(&p, 0, b"one\ntwo\n")
            .expect("seed");
        assert_eq!(read_active(&world, "/text.af"), b"one\r\ntwo\r\n");
        // Rewriting the whole document (CreateAlways truncates the data
        // part) with CRLF stores it as LF.
        {
            use afs_winapi::{Access, Disposition, FileApi};
            let api = world.api();
            let h = api
                .create_file("/text.af", Access::read_write(), Disposition::CreateAlways)
                .expect("truncate open");
            api.write_file(h, b"a\r\nb\r\n").expect("write");
            api.close_handle(h).expect("close");
        }
        assert_eq!(world.vfs().read_stream_to_end(&p).expect("read"), b"a\nb\n");
    }

    #[test]
    fn rot13_function_is_self_inverse() {
        for b in 0..=255u8 {
            assert_eq!(rot13(rot13(b)), b);
        }
    }
}
