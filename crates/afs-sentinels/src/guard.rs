//! Guard sentinels: resource-centric policies attached to the file
//! itself.
//!
//! §7: "active files enable resource-centric control: the file itself can
//! specify the kind of access control policies that need be implemented".
//! These sentinels make that concrete beyond simple allow-lists:
//!
//! * [`QuotaSentinel`] — the file enforces its own size budget, whoever
//!   writes to it;
//! * [`ChecksumSentinel`] — the file verifies its own integrity on every
//!   open and maintains the checksum on close, so corruption of the data
//!   part is detected at the file, not by the application.

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};

/// Enforces a maximum data-part size. Writes that would exceed the quota
/// are refused with a policy denial.
///
/// Configuration: `limit` (bytes, required).
pub struct QuotaSentinel {
    limit: u64,
}

impl QuotaSentinel {
    /// Creates the sentinel (limit resolved on open).
    pub fn new() -> Self {
        QuotaSentinel { limit: u64::MAX }
    }
}

impl Default for QuotaSentinel {
    fn default() -> Self {
        QuotaSentinel::new()
    }
}

impl SentinelLogic for QuotaSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        self.limit = ctx
            .config_u64("limit")
            .ok_or_else(|| SentinelError::Other("quota sentinel needs a `limit`".into()))?;
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let end = offset + data.len() as u64;
        if end > self.limit {
            return Err(SentinelError::Denied(format!(
                "write to {end} exceeds quota of {} bytes",
                self.limit
            )));
        }
        ctx.cache().write_at(offset, data)
    }
}

const CHECKSUM_STREAM_SUFFIX: &str = "checksum";

fn fletcher64(data: &[u8]) -> u64 {
    let mut a: u64 = 0;
    let mut b: u64 = 0;
    for chunk in data.chunks(4) {
        let mut word = [0u8; 4];
        word[..chunk.len()].copy_from_slice(chunk);
        a = (a + u32::from_le_bytes(word) as u64) % 0xFFFF_FFFF;
        b = (b + a) % 0xFFFF_FFFF;
    }
    (b << 32) | a
}

/// Verifies the data part against a stored checksum on open and refreshes
/// the checksum on close. A corrupted data part fails the *open* — the
/// application never sees bad bytes.
pub struct ChecksumSentinel {
    dirty: bool,
}

impl ChecksumSentinel {
    /// Creates the sentinel.
    pub fn new() -> Self {
        ChecksumSentinel { dirty: false }
    }

    fn checksum_path(ctx: &SentinelCtx) -> afs_vfs::VPath {
        ctx.path().with_stream(CHECKSUM_STREAM_SUFFIX)
    }
}

impl Default for ChecksumSentinel {
    fn default() -> Self {
        ChecksumSentinel::new()
    }
}

impl SentinelLogic for ChecksumSentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let data = ctx.cache().to_vec()?;
        let path = Self::checksum_path(ctx);
        match ctx.vfs().read_stream_to_end(&path) {
            Ok(stored) if stored.len() == 8 => {
                let tag = u64::from_le_bytes(stored.try_into().expect("8 bytes"));
                if tag != fletcher64(&data) {
                    return Err(SentinelError::Denied("data part failed checksum".into()));
                }
                Ok(())
            }
            // No checksum yet: adopt the current contents.
            _ => {
                let tag = fletcher64(&data);
                ctx.vfs()
                    .write_stream_replace(&path, &tag.to_le_bytes())
                    .map_err(SentinelError::from)
            }
        }
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        ctx.cache().read_at(offset, buf)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        self.dirty = true;
        ctx.cache().write_at(offset, data)
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if self.dirty {
            let data = ctx.cache().to_vec()?;
            let tag = fletcher64(&data);
            let path = Self::checksum_path(ctx);
            ctx.vfs()
                .write_stream_replace(&path, &tag.to_le_bytes())
                .map_err(SentinelError::from)?;
        }
        Ok(())
    }
}

/// Registers `quota` and `checksum`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("quota", |_| Box::new(QuotaSentinel::new()));
    registry.register("checksum", |_| Box::new(ChecksumSentinel::new()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_winapi::{Access, Disposition, FileApi, Win32Error};

    #[test]
    fn quota_blocks_oversize_writes() {
        let world = test_world();
        world
            .install_active_file(
                "/q.af",
                &SentinelSpec::new("quota", Strategy::DllOnly)
                    .backing(Backing::Disk)
                    .with("limit", "10"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/q.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.write_file(h, b"12345").expect("within"), 5);
        assert_eq!(api.write_file(h, b"67890").expect("at limit"), 5);
        assert_eq!(api.write_file(h, b"x"), Err(Win32Error::AccessDenied));
        api.close_handle(h).expect("close");
        assert_eq!(read_active(&world, "/q.af"), b"1234567890");
    }

    #[test]
    fn quota_is_resource_centric_every_opener_is_bound() {
        for user in ["alice", "root"] {
            let world = afs_core::AfsWorld::builder().user(user).build();
            crate::register_all(world.sentinels());
            world
                .install_active_file(
                    "/q.af",
                    &SentinelSpec::new("quota", Strategy::DllThread)
                        .backing(Backing::Memory)
                        .with("limit", "4"),
                )
                .expect("install");
            let api = world.api();
            let h = api
                .create_file("/q.af", Access::write_only(), Disposition::OpenExisting)
                .expect("open");
            api.write_file(h, b"1234").expect("within");
            // Thread-strategy writes are write-behind (§6): the violation
            // parks in the sentinel and surfaces on the close.
            api.write_file(h, b"5")
                .expect("async write itself succeeds");
            assert_eq!(
                api.close_handle(h),
                Err(Win32Error::AccessDenied),
                "{user} is equally bound: the policy lives in the file"
            );
        }
    }

    #[test]
    fn quota_requires_limit_config() {
        let world = test_world();
        world
            .install_active_file(
                "/q.af",
                &SentinelSpec::new("quota", Strategy::DllOnly).backing(Backing::Memory),
            )
            .expect("install");
        let api = world.api();
        assert!(api
            .create_file("/q.af", Access::read_write(), Disposition::OpenExisting)
            .is_err());
    }

    #[test]
    fn checksum_adopts_then_detects_corruption() {
        let world = test_world();
        world
            .install_active_file(
                "/c.af",
                &SentinelSpec::new("checksum", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("install");
        write_active(&world, "/c.af", b"precious data");
        // A clean reopen passes.
        assert_eq!(read_active(&world, "/c.af"), b"precious data");
        // Corrupt the data part behind the sentinel's back.
        world
            .vfs()
            .write_stream(&"/c.af".parse().expect("p"), 0, b"X")
            .expect("corrupt");
        let api = world.api();
        assert_eq!(
            api.create_file("/c.af", Access::read_only(), Disposition::OpenExisting),
            Err(Win32Error::AccessDenied),
            "corruption detected at open"
        );
    }

    #[test]
    fn checksum_updates_after_legitimate_writes() {
        let world = test_world();
        world
            .install_active_file(
                "/c.af",
                &SentinelSpec::new("checksum", Strategy::ProcessControl).backing(Backing::Disk),
            )
            .expect("install");
        write_active(&world, "/c.af", b"v1");
        write_active(&world, "/c.af", b"v2");
        assert_eq!(read_active(&world, "/c.af"), b"v2");
    }

    #[test]
    fn fletcher_is_sensitive_to_order_and_content() {
        assert_ne!(fletcher64(b"ab"), fletcher64(b"ba"));
        assert_ne!(fletcher64(b"a"), fletcher64(b"b"));
        assert_eq!(fletcher64(b""), 0);
    }
}
