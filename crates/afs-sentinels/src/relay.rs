//! The relay sentinel: one active file backed by another file *through
//! the intercepted API* — the composition mechanism of §3 ("larger
//! applications are constructed by composing these actions in different
//! ways").
//!
//! Because the relay opens its target through the world's intercepted
//! API, the target may itself be an active file, stacking behaviours:
//! an uppercase relay over a ROT13 file yields uppercased plaintext over
//! obfuscated storage, with each behaviour owned by its own file.

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};
use afs_winapi::{Access, Disposition, Handle, SeekMethod};

/// Relays reads and writes to a target path opened through the
/// intercepted API.
///
/// Configuration: `target` (path, required); `transform` (optional:
/// `upper` | `lower` applied to bytes read through the relay).
pub struct RelaySentinel {
    handle: Option<Handle>,
    transform: Transform,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transform {
    None,
    Upper,
    Lower,
}

impl RelaySentinel {
    /// Creates the sentinel (target resolved on open).
    pub fn new() -> Self {
        RelaySentinel {
            handle: None,
            transform: Transform::None,
        }
    }

    fn handle(&self) -> SentinelResult<Handle> {
        self.handle
            .ok_or_else(|| SentinelError::Other("relay target not open".into()))
    }
}

impl Default for RelaySentinel {
    fn default() -> Self {
        RelaySentinel::new()
    }
}

impl SentinelLogic for RelaySentinel {
    fn on_open(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        let target = ctx.require_str("target")?.to_owned();
        if target == ctx.path().to_string() {
            return Err(SentinelError::Denied("relay must not target itself".into()));
        }
        self.transform = match ctx.config_str("transform") {
            Some("upper") => Transform::Upper,
            Some("lower") => Transform::Lower,
            _ => Transform::None,
        };
        let api = ctx.api()?;
        let h = api
            .create_file(&target, Access::read_write(), Disposition::OpenAlways)
            .map_err(|e| SentinelError::Other(format!("relay open failed: {e}")))?;
        self.handle = Some(h);
        Ok(())
    }

    fn read(
        &mut self,
        ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let h = self.handle()?;
        let api = ctx.api()?.clone();
        api.set_file_pointer(h, offset as i64, SeekMethod::Begin)
            .map_err(|e| SentinelError::Other(e.to_string()))?;
        let n = api
            .read_file(h, buf)
            .map_err(|e| SentinelError::Other(e.to_string()))?;
        match self.transform {
            Transform::None => {}
            Transform::Upper => buf[..n].make_ascii_uppercase(),
            Transform::Lower => buf[..n].make_ascii_lowercase(),
        }
        Ok(n)
    }

    fn write(&mut self, ctx: &mut SentinelCtx, offset: u64, data: &[u8]) -> SentinelResult<usize> {
        let h = self.handle()?;
        let api = ctx.api()?.clone();
        api.set_file_pointer(h, offset as i64, SeekMethod::Begin)
            .map_err(|e| SentinelError::Other(e.to_string()))?;
        api.write_file(h, data)
            .map_err(|e| SentinelError::Other(e.to_string()))
    }

    fn len(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        let h = self.handle()?;
        ctx.api()?
            .get_file_size(h)
            .map_err(|e| SentinelError::Other(e.to_string()))
    }

    fn on_close(&mut self, ctx: &mut SentinelCtx) -> SentinelResult<()> {
        if let Some(h) = self.handle.take() {
            ctx.api()?
                .close_handle(h)
                .map_err(|e| SentinelError::Other(e.to_string()))?;
        }
        Ok(())
    }
}

/// Registers `relay`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("relay", |_| Box::new(RelaySentinel::new()));
}

#[cfg(test)]
mod tests {
    use crate::{read_active, test_world, write_active};
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_vfs::VPath;

    #[test]
    fn relay_over_a_passive_file() {
        let world = test_world();
        world
            .install_active_file(
                "/view.af",
                &SentinelSpec::new("relay", Strategy::DllOnly).with("target", "/base.txt"),
            )
            .expect("install");
        write_active(&world, "/view.af", b"through the relay");
        assert_eq!(read_active(&world, "/view.af"), b"through the relay");
        assert_eq!(
            world
                .vfs()
                .read_stream_to_end(&VPath::parse("/base.txt").expect("p"))
                .expect("read"),
            b"through the relay"
        );
    }

    #[test]
    fn relay_composes_active_files() {
        // Stack: /stack.af (relay, uppercase on read) over /inner.af
        // (rot13 over disk). Writes go plaintext → rot13 storage; reads
        // come back rot13-decoded then uppercased.
        let world = test_world();
        world
            .install_active_file(
                "/inner.af",
                &SentinelSpec::new("rot13", Strategy::DllOnly).backing(Backing::Disk),
            )
            .expect("inner");
        world
            .install_active_file(
                "/stack.af",
                &SentinelSpec::new("relay", Strategy::DllOnly)
                    .with("target", "/inner.af")
                    .with("transform", "upper"),
            )
            .expect("stack");
        write_active(&world, "/stack.af", b"Attack at dawn");
        // Storage is obfuscated by the inner sentinel…
        let stored = world
            .vfs()
            .read_stream_to_end(&VPath::parse("/inner.af").expect("p"))
            .expect("read");
        assert_eq!(stored, b"Nggnpx ng qnja");
        // …and the stacked view uppercases the decoded text.
        assert_eq!(read_active(&world, "/stack.af"), b"ATTACK AT DAWN");
        // The inner file on its own still reads as plain text.
        assert_eq!(read_active(&world, "/inner.af"), b"Attack at dawn");
    }

    #[test]
    fn relay_refuses_to_target_itself() {
        let world = test_world();
        world
            .install_active_file(
                "/loop.af",
                &SentinelSpec::new("relay", Strategy::DllOnly).with("target", "/loop.af"),
            )
            .expect("install");
        use afs_winapi::{Access, Disposition, FileApi};
        let api = world.api();
        assert!(api
            .create_file("/loop.af", Access::read_only(), Disposition::OpenExisting)
            .is_err());
    }

    #[test]
    fn relay_works_across_process_boundary_strategies() {
        let world = test_world();
        world
            .install_active_file(
                "/inner.af",
                &SentinelSpec::new("uppercase", Strategy::DllThread).backing(Backing::Memory),
            )
            .expect("inner");
        world
            .install_active_file(
                "/outer.af",
                &SentinelSpec::new("relay", Strategy::ProcessControl).with("target", "/inner.af"),
            )
            .expect("outer");
        write_active(&world, "/outer.af", b"deep");
        assert_eq!(read_active(&world, "/outer.af"), b"DEEP");
    }
}
