//! Data-generation sentinels.
//!
//! "The sentinel process can completely obviate the existence of a
//! physical (passive) file … An example of such use is when the sentinel
//! process just contains a random number generator. In this case, the
//! corresponding active file appears to client programs as a data file
//! that contains an infinite stream of random numbers" (§3).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use afs_core::{SentinelCtx, SentinelError, SentinelLogic, SentinelRegistry, SentinelResult};

/// An infinite stream of pseudo-random bytes.
///
/// Configuration: `seed` (u64, default 0). The stream is a deterministic
/// function of `(seed, offset)`, so seeking strategies see a consistent
/// "file".
#[derive(Debug)]
pub struct RandomGenSentinel {
    seed: u64,
}

impl RandomGenSentinel {
    /// Creates the generator with `seed`.
    pub fn new(seed: u64) -> Self {
        RandomGenSentinel { seed }
    }
}

impl SentinelLogic for RandomGenSentinel {
    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        // Byte at `offset` comes from a block RNG keyed by (seed, block):
        // deterministic and O(len) per call.
        const BLOCK: u64 = 64;
        let mut produced = 0;
        while produced < buf.len() {
            let pos = offset + produced as u64;
            let block_index = pos / BLOCK;
            let in_block = (pos % BLOCK) as usize;
            let mut rng = SmallRng::seed_from_u64(
                self.seed ^ block_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut block = [0u8; BLOCK as usize];
            rng.fill_bytes(&mut block);
            let take = (BLOCK as usize - in_block).min(buf.len() - produced);
            buf[produced..produced + take].copy_from_slice(&block[in_block..in_block + take]);
            produced += take;
        }
        Ok(produced)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        // An infinite stream has no meaningful size.
        Err(SentinelError::Unsupported)
    }
}

/// A bounded stream of decimal numbers, one per line: `start..start+count`.
///
/// Configuration: `start` (default 0), `count` (default 100).
#[derive(Debug)]
pub struct SequenceSentinel {
    rendered: Vec<u8>,
}

impl SequenceSentinel {
    /// Creates the sequence `[start, start + count)`.
    pub fn new(start: u64, count: u64) -> Self {
        let mut rendered = Vec::new();
        for i in start..start + count {
            rendered.extend_from_slice(i.to_string().as_bytes());
            rendered.push(b'\n');
        }
        SequenceSentinel { rendered }
    }
}

impl SentinelLogic for SequenceSentinel {
    fn read(
        &mut self,
        _ctx: &mut SentinelCtx,
        offset: u64,
        buf: &mut [u8],
    ) -> SentinelResult<usize> {
        let start = (offset as usize).min(self.rendered.len());
        let n = buf.len().min(self.rendered.len() - start);
        buf[..n].copy_from_slice(&self.rendered[start..start + n]);
        Ok(n)
    }

    fn write(
        &mut self,
        _ctx: &mut SentinelCtx,
        _offset: u64,
        _data: &[u8],
    ) -> SentinelResult<usize> {
        Err(SentinelError::Unsupported)
    }

    fn len(&mut self, _ctx: &mut SentinelCtx) -> SentinelResult<u64> {
        Ok(self.rendered.len() as u64)
    }
}

/// Registers `random` and `sequence`.
pub fn register(registry: &SentinelRegistry) {
    registry.register("random", |spec| {
        let seed = spec
            .config()
            .get("seed")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        Box::new(RandomGenSentinel::new(seed))
    });
    registry.register("sequence", |spec| {
        let start = spec
            .config()
            .get("start")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        let count = spec
            .config()
            .get("count")
            .and_then(|s| s.parse().ok())
            .unwrap_or(100);
        Box::new(SequenceSentinel::new(start, count))
    });
}

// Keep the unused Rng import meaningful for future samplers.
#[allow(dead_code)]
fn sample_range(rng: &mut SmallRng, hi: u64) -> u64 {
    rng.gen_range(0..hi.max(1))
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::*;
    use crate::test_world;
    use afs_core::{Backing, SentinelSpec, Strategy};
    use afs_winapi::{Access, Disposition, FileApi, SeekMethod, Win32Error};

    #[test]
    fn random_stream_is_deterministic_and_offset_consistent() {
        let world = test_world();
        world
            .install_active_file(
                "/rng.af",
                &SentinelSpec::new("random", Strategy::DllOnly).with("seed", "7"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/rng.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        let mut first = [0u8; 100];
        assert_eq!(api.read_file(h, &mut first).expect("read"), 100);
        // Seek back and re-read: same bytes (the stream is a function of
        // offset).
        api.set_file_pointer(h, 0, SeekMethod::Begin).expect("seek");
        let mut again = [0u8; 100];
        api.read_file(h, &mut again).expect("read");
        assert_eq!(first, again);
        // Reading at offset 50 matches the tail of the first read.
        api.set_file_pointer(h, 50, SeekMethod::Begin)
            .expect("seek");
        let mut tail = [0u8; 50];
        api.read_file(h, &mut tail).expect("read");
        assert_eq!(&first[50..], &tail);
        // Writing to a generator is rejected.
        api.close_handle(h).expect("close");
        let h = api
            .create_file("/rng.af", Access::read_write(), Disposition::OpenExisting)
            .expect("open rw");
        assert_eq!(api.write_file(h, b"x"), Err(Win32Error::NotSupported));
        api.close_handle(h).expect("close");
    }

    #[test]
    fn random_stream_never_ends() {
        let world = test_world();
        world
            .install_active_file("/rng.af", &SentinelSpec::new("random", Strategy::DllOnly))
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/rng.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        api.set_file_pointer(h, 1 << 30, SeekMethod::Begin)
            .expect("far seek");
        let mut buf = [0u8; 16];
        assert_eq!(
            api.read_file(h, &mut buf).expect("read"),
            16,
            "no EOF at 1 GiB"
        );
        api.close_handle(h).expect("close");
    }

    #[test]
    fn sequence_renders_numbers() {
        let world = test_world();
        world
            .install_active_file(
                "/seq.af",
                &SentinelSpec::new("sequence", Strategy::ProcessControl)
                    .backing(Backing::Memory)
                    .with("start", "5")
                    .with("count", "3"),
            )
            .expect("install");
        assert_eq!(crate::read_active(&world, "/seq.af"), b"5\n6\n7\n");
    }

    #[test]
    fn sequence_reports_size() {
        let world = test_world();
        world
            .install_active_file(
                "/seq.af",
                &SentinelSpec::new("sequence", Strategy::DllThread).with("count", "2"),
            )
            .expect("install");
        let api = world.api();
        let h = api
            .create_file("/seq.af", Access::read_only(), Disposition::OpenExisting)
            .expect("open");
        assert_eq!(api.get_file_size(h).expect("size"), 4); // "0\n1\n"
        api.close_handle(h).expect("close");
    }

    #[test]
    fn generator_streams_under_simple_process_strategy() {
        let world = test_world();
        world
            .install_active_file(
                "/seq.af",
                &SentinelSpec::new("sequence", Strategy::Process).with("count", "4"),
            )
            .expect("install");
        assert_eq!(crate::read_active(&world, "/seq.af"), b"0\n1\n2\n3\n");
    }
}
